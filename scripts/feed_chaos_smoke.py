#!/usr/bin/env python
"""Chaos-restart feed smoke: SIGKILL the serving process mid-stream,
restart with ``--recover``, and prove the served feeds are byte-identical
to an uninterrupted reference.

The serving subprocess runs with a write-ahead log and a fault plan
(``REPRO_FEED_FAULT_PLAN``) that hard-kills the process (``os._exit``)
from inside a WAL append partway through the ingest stream — the worst
spot: the record is on disk but the client never got its ack. The
"client" here then does what a real client does: retries the in-flight
post with the same idempotency key (which must answer from the dedup
window, not fan out twice) and re-drives the rest of the stream. Every
user's paginated feed must then match an in-process engine replay that
never crashed.

Usage (from the repo root):

    PYTHONPATH=src python scripts/feed_chaos_smoke.py

Exits non-zero with a diagnostic on the first divergence.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.io import post_to_dict, write_graph_json, write_subscriptions_json
from repro.multiuser import SubscriptionTable, make_multiuser

AUTHORS = list(range(1, 13))
EDGES = [(1, 2), (2, 3), (4, 5), (7, 8), (8, 9), (10, 11)]
SUBSCRIPTIONS = {
    100: [1, 2, 3, 6],
    200: [1, 2, 3, 4, 5],
    300: [4, 5, 7, 8, 9],
    400: [7, 8, 9, 10, 11, 12],
    500: [6, 10, 11, 12],
}
THRESHOLDS = Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5)
N_POSTS = 120
KILL_ON_APPEND = 61  # WAL append that pulls the trigger: mid-stream
SEED = 11


def make_posts() -> list[Post]:
    rng = random.Random(SEED)
    posts: list[Post] = []
    now = 0.0
    for i in range(N_POSTS):
        now += rng.random() * 2.0
        if posts and rng.random() < 0.5:
            fingerprint = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(4)):
                fingerprint ^= 1 << rng.randrange(64)
        else:
            fingerprint = rng.getrandbits(64)
        posts.append(
            Post(
                post_id=i,
                author=rng.choice(AUTHORS),
                text=f"post {i}",
                timestamp=now,
                fingerprint=fingerprint,
            )
        )
    return posts


def reference_feeds(posts: list[Post]) -> dict[int, list[int]]:
    """Newest-first accepted post ids per user, from a direct engine run."""
    graph = AuthorGraph(nodes=AUTHORS, edges=EDGES)
    engine = make_multiuser(
        "s_unibin", THRESHOLDS, graph, SubscriptionTable(SUBSCRIPTIONS)
    )
    feeds: dict[int, list[int]] = {user: [] for user in SUBSCRIPTIONS}
    try:
        for post, receivers in zip(posts, engine.offer_batch(posts)):
            for user in receivers:
                feeds[user].append(post.post_id)
    finally:
        getattr(engine, "close", lambda: None)()
    return {user: list(reversed(ids)) for user, ids in feeds.items()}


def start_serve(root: Path, *extra: str, env=None) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(root / "graph.json"),
            "--subscriptions", str(root / "subscriptions.json"),
            "--algorithm", "s_unibin",
            "--port", "0",
            "--lambda-c", "8", "--lambda-t", "60", "--lambda-a", "0.5",
            "--wal-dir", str(root / "wal"),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    if "serving feeds on http://" not in banner:
        proc.kill()
        _, err = proc.communicate(timeout=30)
        raise RuntimeError(f"bad startup banner: {banner!r}\n{err}")
    return proc, "http://" + banner.split("http://")[1].split()[0]


def post_one(url: str, post: Post, key: str) -> dict:
    body = post_to_dict(post)
    body["idempotency_key"] = key
    request = urllib.request.Request(
        url + "/posts",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.load(response)


def paginate(url: str, user: int, limit: int = 9) -> list[int]:
    collected: list[int] = []
    cursor = None
    while True:
        query = f"user={user}&limit={limit}"
        if cursor is not None:
            query += f"&cursor={cursor}"
        with urllib.request.urlopen(f"{url}/feed?{query}", timeout=15) as resp:
            page = json.load(resp)
        collected.extend(entry["post_id"] for entry in page["entries"])
        if page["next_cursor"] is None:
            return collected
        cursor = page["next_cursor"]


def main() -> int:
    posts = make_posts()
    expected = reference_feeds(posts)

    with tempfile.TemporaryDirectory(prefix="feed-chaos-") as tmp:
        root = Path(tmp)
        write_graph_json(AuthorGraph(nodes=AUTHORS, edges=EDGES), root / "graph.json")
        write_subscriptions_json(
            SubscriptionTable(SUBSCRIPTIONS), root / "subscriptions.json"
        )

        # -- phase 1: serve with a murderous fault plan ------------------
        env = dict(os.environ)
        env["REPRO_FEED_FAULT_PLAN"] = json.dumps(
            {"kill_on_append": KILL_ON_APPEND}
        )
        proc, url = start_serve(root, env=env)
        acked = 0
        killed = False
        try:
            for i, post in enumerate(posts):
                try:
                    post_one(url, post, f"chaos-{i}")
                    acked = i + 1
                except (urllib.error.URLError, ConnectionError, OSError):
                    killed = True
                    break
        finally:
            proc.wait(timeout=60)
        if not killed:
            print(
                f"FAIL: fault plan never fired ({acked} posts acked)",
                file=sys.stderr,
            )
            return 1
        if proc.returncode == 0:
            print("FAIL: killed server exited 0", file=sys.stderr)
            return 1
        print(
            f"chaos: SIGKILL from WAL append #{KILL_ON_APPEND} "
            f"after {acked} acked posts (exit {proc.returncode})"
        )

        # -- phase 2: restart with --recover, re-drive as a client would -
        proc, url = start_serve(root, "--recover")
        try:
            # The in-flight post timed out client-side; retry it and every
            # later one. Retrying already-committed work must dedup, never
            # double-fan-out — start one BEFORE the ack horizon on purpose.
            resume = max(0, acked - 1)
            deduped = 0
            for i in range(resume, len(posts)):
                reply = post_one(url, posts[i], f"chaos-{i}")
                deduped += bool(reply["deduplicated"])
            print(
                f"recover: re-drove posts {resume}..{len(posts) - 1}, "
                f"{deduped} answered idempotently"
            )
            if deduped < 1:
                print(
                    "FAIL: retried acked post was not deduplicated",
                    file=sys.stderr,
                )
                return 1

            failures = 0
            for user, want in sorted(expected.items()):
                got = paginate(url, user)
                status = "ok" if got == want else "MISMATCH"
                print(f"feed user={user}: {len(got)} entries {status}")
                if got != want:
                    print(f"  want {want}\n  got  {got}", file=sys.stderr)
                    failures += 1
            if failures:
                print(
                    f"FAIL: {failures} user feeds diverged from the "
                    "uninterrupted reference",
                    file=sys.stderr,
                )
                return 1
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)

        if proc.returncode != 0:
            print(f"FAIL: recovered server exited {proc.returncode}\n{err}",
                  file=sys.stderr)
            return 1
        if "recovered from" not in err:
            print(f"FAIL: no recovery banner on stderr:\n{err}", file=sys.stderr)
            return 1
        if "durability: flushed clean" not in out:
            print(f"FAIL: shutdown summary not durable:\n{out}", file=sys.stderr)
            return 1
        print("shutdown: clean (SIGTERM -> 0, durability flushed)")
        print("feed chaos smoke PASS")
        return 0


if __name__ == "__main__":
    sys.exit(main())
