#!/usr/bin/env python
"""End-to-end feed smoke: boot ``repro serve`` as a real subprocess,
ingest a seeded post stream over HTTP, page every user's feed to
exhaustion, and check the paginated unions against an in-process
reference engine replay. Exercises the whole deployment surface — CLI
parsing, engine construction, fanout, cursor pagination, metrics
exposure and SIGTERM shutdown — in a few seconds.

Usage (from the repo root):

    PYTHONPATH=src python scripts/feed_smoke.py

Exits non-zero with a diagnostic on the first divergence.
"""

from __future__ import annotations

import json
import random
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.io import post_to_dict, write_graph_json, write_subscriptions_json
from repro.multiuser import SubscriptionTable, make_multiuser

AUTHORS = list(range(1, 13))
EDGES = [(1, 2), (2, 3), (4, 5), (7, 8), (8, 9), (10, 11)]
SUBSCRIPTIONS = {
    100: [1, 2, 3, 6],
    200: [1, 2, 3, 4, 5],
    300: [4, 5, 7, 8, 9],
    400: [7, 8, 9, 10, 11, 12],
    500: [6, 10, 11, 12],
}
THRESHOLDS = Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5)
N_POSTS = 150
SEED = 7


def make_posts() -> list[Post]:
    rng = random.Random(SEED)
    posts: list[Post] = []
    now = 0.0
    for i in range(N_POSTS):
        now += rng.random() * 2.0
        if posts and rng.random() < 0.5:
            fingerprint = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(4)):
                fingerprint ^= 1 << rng.randrange(64)
        else:
            fingerprint = rng.getrandbits(64)
        posts.append(
            Post(
                post_id=i,
                author=rng.choice(AUTHORS),
                text=f"post {i}",
                timestamp=now,
                fingerprint=fingerprint,
            )
        )
    return posts


def reference_feeds(posts: list[Post]) -> dict[int, list[int]]:
    """Newest-first accepted post ids per user, from a direct engine run."""
    graph = AuthorGraph(nodes=AUTHORS, edges=EDGES)
    engine = make_multiuser(
        "s_unibin", THRESHOLDS, graph, SubscriptionTable(SUBSCRIPTIONS)
    )
    feeds: dict[int, list[int]] = {user: [] for user in SUBSCRIPTIONS}
    try:
        for post, receivers in zip(posts, engine.offer_batch(posts)):
            for user in receivers:
                feeds[user].append(post.post_id)
    finally:
        getattr(engine, "close", lambda: None)()
    return {user: list(reversed(ids)) for user, ids in feeds.items()}


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=15) as response:
        return json.load(response)


def paginate(url: str, user: int, limit: int = 9) -> list[int]:
    collected: list[int] = []
    cursor = None
    while True:
        query = f"user={user}&limit={limit}"
        if cursor is not None:
            query += f"&cursor={cursor}"
        page = get_json(f"{url}/feed?{query}")
        collected.extend(entry["post_id"] for entry in page["entries"])
        if page["next_cursor"] is None:
            return collected
        cursor = page["next_cursor"]


def main() -> int:
    posts = make_posts()
    expected = reference_feeds(posts)

    with tempfile.TemporaryDirectory(prefix="feed-smoke-") as tmp:
        root = Path(tmp)
        write_graph_json(AuthorGraph(nodes=AUTHORS, edges=EDGES), root / "graph.json")
        write_subscriptions_json(
            SubscriptionTable(SUBSCRIPTIONS), root / "subscriptions.json"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--graph", str(root / "graph.json"),
                "--subscriptions", str(root / "subscriptions.json"),
                "--algorithm", "s_unibin",
                "--port", "0",
                "--lambda-c", "8", "--lambda-t", "60", "--lambda-a", "0.5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            if "serving feeds on http://" not in banner:
                print(f"FAIL: bad startup banner: {banner!r}", file=sys.stderr)
                return 1
            url = "http://" + banner.split("http://")[1].split()[0]
            print(f"serve: up at {url}")

            request = urllib.request.Request(
                url + "/posts",
                data=json.dumps([post_to_dict(p) for p in posts]).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                summary = json.load(response)
            print(
                f"ingest: {summary['accepted']} accepted, "
                f"{summary['shed']} shed, {summary['deliveries']} deliveries"
            )
            if summary["shed"] != 0:
                print("FAIL: smoke stream must not shed", file=sys.stderr)
                return 1

            failures = 0
            for user, want in sorted(expected.items()):
                got = paginate(url, user)
                status = "ok" if got == want else "MISMATCH"
                print(f"feed user={user}: {len(got)} entries {status}")
                if got != want:
                    print(f"  want {want}\n  got  {got}", file=sys.stderr)
                    failures += 1
            if failures:
                print(f"FAIL: {failures} user feeds diverged", file=sys.stderr)
                return 1

            metrics = urllib.request.urlopen(url + "/metrics", timeout=15).read()
            if b"repro_feed_deliveries_total" not in metrics:
                print("FAIL: feed metrics missing from /metrics", file=sys.stderr)
                return 1
            health = urllib.request.urlopen(url + "/healthz", timeout=15).read()
            if health != b"ok\n":
                print(f"FAIL: unhealthy: {health!r}", file=sys.stderr)
                return 1
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)

        if proc.returncode != 0:
            print(f"FAIL: server exited {proc.returncode}\n{err}", file=sys.stderr)
            return 1
        if f"feed: {N_POSTS} posts received" not in out:
            print(f"FAIL: shutdown summary wrong:\n{out}", file=sys.stderr)
            return 1
        print("shutdown: clean (SIGTERM -> 0, faithful summary)")
        print("feed smoke PASS")
        return 0


if __name__ == "__main__":
    sys.exit(main())
