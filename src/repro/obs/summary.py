"""Snapshot digestion: turn a :func:`repro.obs.snapshot` into flat stats.

The experiment harness (:mod:`repro.experiments`) records per-trial
metrics by binding a :class:`~repro.obs.metrics.Registry` onto the engine
under test and snapshotting it when the trial ends. A snapshot is a
faithful but deeply-nested structure; reports want scalars. This module
is the bridge: flatten samples into ``name{label=value}`` keys, sum a
family across its label sets, and summarize histograms (count / sum /
mean / p-ish tail via the highest non-empty bucket).

Kept inside ``repro.obs`` (not the harness) because the mapping depends
only on the exposition schema, which is owned here.
"""

from __future__ import annotations

import math

__all__ = [
    "flatten_snapshot",
    "family_samples",
    "family_total",
    "histogram_summary",
]


def _label_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def family_samples(snap: dict, name: str) -> list[dict]:
    """All samples of family ``name`` (empty list when absent)."""
    for family in snap.get("metrics", ()):
        if family.get("name") == name:
            return list(family.get("samples", ()))
    return []


def flatten_snapshot(snap: dict) -> dict[str, float]:
    """Every sample as a flat ``name{label=value,...}`` → number mapping.

    Counters and gauges map to their value; histograms contribute
    ``<name>_count`` and ``<name>_sum`` entries (buckets are dropped —
    use :func:`histogram_summary` for distribution shape).
    """
    flat: dict[str, float] = {}
    for family in snap.get("metrics", ()):
        name = family["name"]
        for sample in family.get("samples", ()):
            suffix = _label_suffix(sample.get("labels", {}))
            if "buckets" in sample:
                flat[f"{name}_count{suffix}"] = sample["count"]
                flat[f"{name}_sum{suffix}"] = sample["sum"]
            else:
                flat[f"{name}{suffix}"] = sample["value"]
    return flat


def family_total(snap: dict, name: str) -> float:
    """Sum of a counter/gauge family's values across all label sets."""
    return sum(
        sample.get("value", 0.0)
        for sample in family_samples(snap, name)
        if "value" in sample
    )


def histogram_summary(snap: dict, name: str) -> dict[str, float] | None:
    """Aggregate a histogram family across label sets.

    Returns ``{"count", "sum", "mean", "max_bucket"}`` — ``max_bucket``
    is the smallest bucket bound that already holds every observation
    (an upper bound on the maximum, finite unless only ``+Inf`` does) —
    or ``None`` when the family is absent or empty.
    """
    count = 0
    total = 0.0
    merged: dict[float, int] = {}
    for sample in family_samples(snap, name):
        if "buckets" not in sample:
            continue
        count += sample["count"]
        total += sample["sum"]
        for bound_text, cumulative in sample["buckets"].items():
            bound = math.inf if bound_text == "+Inf" else float(bound_text)
            merged[bound] = merged.get(bound, 0) + cumulative
    if count == 0:
        return None
    max_bucket = math.inf
    for bound in sorted(merged):
        if merged[bound] >= count:
            max_bucket = bound
            break
    return {
        "count": float(count),
        "sum": total,
        "mean": total / count,
        "max_bucket": max_bucket,
    }
