"""Instrument bundles: the metric catalog for each subsystem.

Each class wires one subsystem's ground truth into a
:class:`~repro.obs.metrics.Registry` and (where a quantity has no
pre-existing counter) owns the live instruments its hot path updates.
The split per quantity:

* **callback re-exports** — anything :class:`~repro.core.RunStats`,
  :class:`~repro.resilience.ReorderCounters` or a
  :class:`~repro.resilience.Quarantine` already counts exactly is read at
  collection time, never double-counted. Snapshots therefore agree with
  the run's stats to the post, and the hot path pays nothing for them.
* **live histograms/counters** — distributions (decision latency,
  comparisons per arrival) and fan-out counts exist nowhere else, so the
  instrumented slow path records them per event.

These classes only touch the duck-typed surface of their subjects
(``stats``, ``stored_copies()``, …); they import nothing from the rest of
the library, keeping :mod:`repro.obs` dependency-free in both directions.
"""

from __future__ import annotations

from .metrics import COUNT_BUCKETS, LATENCY_BUCKETS, Registry

__all__ = [
    "DynamicInstruments",
    "EngineInstruments",
    "FeedInstruments",
    "MemoryInstruments",
    "MultiUserInstruments",
    "ParallelInstruments",
    "PipelineInstruments",
    "ServiceInstruments",
    "SimhashInstruments",
    "SupervisionInstruments",
]


def _engine_families(registry: Registry):
    """Shared per-engine families (single- and multi-user engines write
    into the same names under their own ``engine`` label)."""
    return {
        "comparisons": registry.counter(
            "repro_comparisons_total",
            "Candidate posts examined across all coverage checks",
            ("engine",),
        ),
        "insertions": registry.counter(
            "repro_insertions_total",
            "Post copies written into bins",
            ("engine",),
        ),
        "evictions": registry.counter(
            "repro_evictions_total",
            "Post copies removed by time-window expiry",
            ("engine",),
        ),
        "offers": registry.counter(
            "repro_offers_total",
            "Posts offered, by decision",
            ("engine", "decision"),
        ),
        "stored": registry.gauge(
            "repro_stored_copies",
            "Post copies currently resident across all bins",
            ("engine",),
        ),
        "peak": registry.gauge(
            "repro_peak_stored_copies",
            "Maximum resident post copies over the run",
            ("engine",),
        ),
    }


class EngineInstruments:
    """Observability bundle for one :class:`~repro.core.StreamDiversifier`.

    Counters re-export the engine's ``RunStats`` via callbacks; the two
    histograms (decision latency, comparisons per arrival) are fed by the
    engine's instrumented offer path through :meth:`observe`.
    """

    __slots__ = ("latency", "scan_width")

    def __init__(self, registry: Registry, engine) -> None:
        name = engine.name
        stats = engine.stats
        families = _engine_families(registry)
        families["comparisons"].labels(engine=name).set_function(
            lambda: stats.comparisons
        )
        families["insertions"].labels(engine=name).set_function(
            lambda: stats.insertions
        )
        families["evictions"].labels(engine=name).set_function(
            lambda: stats.evictions
        )
        families["offers"].labels(engine=name, decision="admitted").set_function(
            lambda: stats.posts_admitted
        )
        families["offers"].labels(engine=name, decision="rejected").set_function(
            lambda: stats.posts_rejected
        )
        families["stored"].labels(engine=name).set_function(engine.stored_copies)
        families["peak"].labels(engine=name).set_function(
            lambda: stats.peak_stored_copies
        )
        registry.gauge(
            "repro_bins",
            "Live bin count of the engine's index structure",
            ("engine",),
        ).labels(engine=name).set_function(engine.bin_count)
        self.latency = registry.histogram(
            "repro_offer_latency_seconds",
            "Arrival-to-decision latency of StreamDiversifier.offer",
            ("engine",),
            buckets=LATENCY_BUCKETS,
        ).labels(engine=name)
        self.scan_width = registry.histogram(
            "repro_offer_comparisons",
            "Coverage-scan comparisons performed per arriving post",
            ("engine",),
            buckets=COUNT_BUCKETS,
        ).labels(engine=name)

    def observe(self, latency_s: float, comparisons: int) -> None:
        """One offer decision from the engine's instrumented hot path."""
        self.latency.observe(latency_s)
        self.scan_width.observe(comparisons)


class SimhashInstruments:
    """Fingerprint-path bundle: volume and latency of SimHash computation."""

    __slots__ = ("fingerprints", "latency")

    def __init__(self, registry: Registry) -> None:
        self.fingerprints = registry.counter(
            "repro_simhash_fingerprints_total",
            "SimHash fingerprints computed",
        ).labels()
        self.latency = registry.histogram(
            "repro_simhash_latency_seconds",
            "Wall-clock time per SimHash fingerprint",
            buckets=LATENCY_BUCKETS,
        ).labels()

    def observe(self, latency_s: float) -> None:
        self.fingerprints.inc()
        self.latency.observe(latency_s)


class MultiUserInstruments:
    """Bundle for an M-SPSD engine (M_* or S_*).

    The live counters quantify the paper's §5 sharing argument directly:
    ``instance_offers`` is the single-user offers actually executed per
    stream post — per-user for M_*, per *distinct component* for S_* —
    so the M/S ratio of that counter is the shared work eliminated.
    Aggregate cost counters re-export ``aggregate_stats()`` under the
    multi-user engine's name.
    """

    __slots__ = ("posts", "instance_offers", "deliveries", "_per_user", "_engine_name")

    def __init__(self, registry: Registry, engine, *, per_user: bool = False) -> None:
        name = engine.name
        self.posts = registry.counter(
            "repro_multiuser_posts_total",
            "Stream posts offered to the multi-user engine",
            ("engine",),
        ).labels(engine=name)
        self.instance_offers = registry.counter(
            "repro_multiuser_instance_offers_total",
            "Single-user offer calls executed (shared-work measure: "
            "per-user for M_*, per distinct component for S_*)",
            ("engine",),
        ).labels(engine=name)
        self.deliveries = registry.counter(
            "repro_multiuser_deliveries_total",
            "Post deliveries across all user timelines",
            ("engine",),
        ).labels(engine=name)
        registry.gauge(
            "repro_multiuser_instances",
            "Independent SPSD instances the engine maintains",
            ("engine",),
        ).labels(engine=name).set_function(engine.instance_count)
        if hasattr(engine, "sharing_ratio"):
            registry.gauge(
                "repro_multiuser_sharing_ratio",
                "Fraction of per-user component work removed by sharing",
                ("engine",),
            ).labels(engine=name).set_function(engine.sharing_ratio)
        families = _engine_families(registry)
        for key, attr in (
            ("comparisons", "comparisons"),
            ("insertions", "insertions"),
            ("evictions", "evictions"),
        ):
            families[key].labels(engine=name).set_function(
                lambda attr=attr, engine=engine: getattr(
                    engine.aggregate_stats(), attr
                )
            )
        families["stored"].labels(engine=name).set_function(engine.stored_copies)
        self._engine_name = name
        self._per_user = None
        if per_user:
            self._per_user = registry.counter(
                "repro_user_deliveries_total",
                "Post deliveries per user timeline",
                ("engine", "user"),
            )

    def record(self, consulted: int, receivers) -> None:
        """One stream post routed to ``consulted`` instances, delivered to
        ``receivers`` users."""
        self.posts.inc()
        self.instance_offers.inc(consulted)
        self.deliveries.inc(len(receivers))
        if self._per_user is not None:
            for user in receivers:
                self._per_user.labels(engine=self._engine_name, user=user).inc()


class SupervisionInstruments:
    """Bundle for a :class:`~repro.supervise.ShardSupervisor`.

    Counters and gauges are callback re-exports of the supervisor's own
    exact accounting (restarts, degradations, checkpoints, heartbeats,
    replayed commands; per-shard liveness/degraded/restart labels). The
    two histograms are live: crash-to-recovered wall-clock latency and
    the write-ahead journal depth at each commit — together the empirical
    recovery cost model. Binding an engine with ``bind_metrics`` attaches
    this bundle automatically whenever a supervisor is present.
    """

    __slots__ = ("recovery_latency", "journal_depth")

    def __init__(self, registry: Registry, name: str, supervisor) -> None:
        for metric, help_, attr in (
            ("repro_supervision_restarts_total", "Worker respawns executed by the supervisor", "restarts_total"),
            ("repro_supervision_degradations_total", "Poison shards degraded to in-parent serial engines", "degradations"),
            ("repro_supervision_checkpoints_total", "Rolling per-shard checkpoints taken", "checkpoints_taken"),
            ("repro_supervision_heartbeats_total", "Liveness pings sent to idle shards", "heartbeats_sent"),
            ("repro_supervision_missed_heartbeats_total", "Heartbeats that found a dead or hung worker", "heartbeats_missed"),
            ("repro_supervision_replayed_commands_total", "Journalled commands replayed during recoveries", "replayed_commands"),
        ):
            registry.counter(metric, help_, ("engine",)).labels(
                engine=name
            ).set_function(
                lambda attr=attr: getattr(supervisor, attr)
            )
        liveness = registry.gauge(
            "repro_shard_live",
            "1 while the shard's worker process is alive (0: dead or degraded)",
            ("engine", "shard"),
        )
        degraded = registry.gauge(
            "repro_shard_degraded",
            "1 once the shard is quarantined and served in-parent",
            ("engine", "shard"),
        )
        restarts = registry.counter(
            "repro_shard_restarts_total",
            "Respawns of one shard's worker process",
            ("engine", "shard"),
        )
        for shard in range(supervisor.shard_count):
            liveness.labels(engine=name, shard=shard).set_function(
                lambda shard=shard: 1 if supervisor.is_live(shard) else 0
            )
            degraded.labels(engine=name, shard=shard).set_function(
                lambda shard=shard: 1 if supervisor.is_degraded(shard) else 0
            )
            restarts.labels(engine=name, shard=shard).set_function(
                lambda shard=shard: supervisor.restarts_of(shard)
            )
        self.recovery_latency = registry.histogram(
            "repro_supervision_recovery_seconds",
            "Wall-clock latency from failure detection to healed shard",
            ("engine",),
            buckets=LATENCY_BUCKETS,
        ).labels(engine=name)
        self.journal_depth = registry.histogram(
            "repro_supervision_journal_depth",
            "Write-ahead journal depth at each acknowledged mutating command",
            ("engine",),
            buckets=COUNT_BUCKETS,
        ).labels(engine=name)
        supervisor.instruments = self

    def observe_recovery(self, latency_s: float) -> None:
        """One completed recovery from the supervisor's healing path."""
        self.recovery_latency.observe(latency_s)

    def observe_journal_depth(self, depth: int) -> None:
        """Journal depth after one acknowledged mutating command."""
        self.journal_depth.observe(depth)


class ParallelInstruments(MultiUserInstruments):
    """Bundle for the sharded :class:`~repro.parallel.ParallelSharedMultiUser`.

    Everything the serial multi-user bundle exports (the aggregate view is
    shard-transparent — its counters agree with the serial engine's to the
    post), plus the execution-layer picture: shard count, the planned
    cost imbalance ``(max − mean)/mean``, and per-shard labelled counters
    so a dashboard can see which shard runs hot. Per-shard callbacks read
    :meth:`shard_stats` at collection time — one IPC round-trip per shard
    per collected family, nothing on the offer path.
    """

    __slots__ = ()

    def __init__(self, registry: Registry, engine, *, per_user: bool = False) -> None:
        super().__init__(registry, engine, per_user=per_user)
        name = engine.name
        registry.gauge(
            "repro_parallel_shards",
            "Worker shards the parallel engine runs",
            ("engine",),
        ).labels(engine=name).set_function(engine.shard_count)
        registry.gauge(
            "repro_parallel_shard_imbalance",
            "Planned shard cost imbalance, (max - mean) / mean over shards",
            ("engine",),
        ).labels(engine=name).set_function(engine.shard_imbalance)
        shard_families = {
            "posts": registry.counter(
                "repro_shard_posts_total",
                "Posts processed by one shard's component engines",
                ("engine", "shard"),
            ),
            "comparisons": registry.counter(
                "repro_shard_comparisons_total",
                "Candidate posts examined by one shard",
                ("engine", "shard"),
            ),
            "stored": registry.gauge(
                "repro_shard_stored_copies",
                "Post copies resident in one shard's bins",
                ("engine", "shard"),
            ),
        }
        for shard in range(engine.shard_count()):
            for key, attr in (
                ("posts", "posts_processed"),
                ("comparisons", "comparisons"),
                ("stored", "stored_copies"),
            ):
                shard_families[key].labels(engine=name, shard=shard).set_function(
                    lambda shard=shard, attr=attr: getattr(
                        engine.shard_stats()[shard], attr
                    )
                )
        supervisor = getattr(engine, "supervisor", None)
        if supervisor is not None:
            SupervisionInstruments(registry, name, supervisor)


class DynamicInstruments(MultiUserInstruments):
    """Bundle for the :class:`~repro.dynamic.DynamicMultiUser` engine.

    Everything the multi-user bundle exports, plus the topology-churn
    picture: the current graph version and live-instance/migration
    counters as gauges (callbacks on the engine's own accounting), a
    per-event-type counter over the mixed stream, and a live
    migration-latency histogram fed by the engine's churn path — the
    empirical side of the migration cost model.
    """

    __slots__ = ("migration_latency",)

    def __init__(self, registry: Registry, engine, *, per_user: bool = False) -> None:
        super().__init__(registry, engine, per_user=per_user)
        name = engine.name
        registry.gauge(
            "repro_dynamic_graph_version",
            "Current author-graph version (effective topology deltas applied)",
            ("engine",),
        ).labels(engine=name).set_function(lambda: engine.graph_version)
        registry.gauge(
            "repro_dynamic_migrations",
            "Instance migrations executed (one per effective delta)",
            ("engine",),
        ).labels(engine=name).set_function(lambda: engine.migrations)
        events = registry.counter(
            "repro_dynamic_events_total",
            "Mixed-stream records consumed, by event type",
            ("engine", "type"),
        )
        for kind in ("post", "follow", "unfollow"):
            events.labels(engine=name, type=kind).set_function(
                lambda kind=kind: engine.event_counts[kind]
            )
        self.migration_latency = registry.histogram(
            "repro_dynamic_migration_latency_seconds",
            "Wall-clock time to migrate live state across one graph version",
            ("engine",),
            buckets=LATENCY_BUCKETS,
        ).labels(engine=name)
        supervisor = getattr(engine, "supervisor", None)
        if supervisor is not None:
            SupervisionInstruments(registry, name, supervisor)

    def observe_migration(self, latency_s: float) -> None:
        """One completed migration from the engine's churn path."""
        self.migration_latency.observe(latency_s)


class PipelineInstruments:
    """Bundle for :class:`~repro.resilience.ResilientIngest`.

    Entirely callback-based — the pipeline's own counters are the ground
    truth — so binding a pipeline adds zero work to its ingest path.
    """

    __slots__ = ()

    def __init__(self, registry: Registry, pipeline) -> None:
        # Read through ``reorder.counters`` on every collection: the buffer
        # replaces its counters object on checkpoint restore.
        reorder = pipeline.reorder
        registry.gauge(
            "repro_reorder_buffer_depth",
            "Posts currently held by the reorder buffer",
        ).labels().set_function(lambda: len(reorder))
        registry.gauge(
            "repro_reorder_peak_buffered",
            "Peak reorder-buffer depth over the run",
        ).labels().set_function(lambda: reorder.counters.peak_buffered)
        for metric, help_, attr in (
            ("repro_reorder_received_total", "Posts accepted by the reorder buffer", "received"),
            ("repro_reorder_released_total", "Posts released in timestamp order", "released"),
            ("repro_reorder_reordered_total", "Released posts that had been overtaken", "reordered"),
            ("repro_reorder_late_dropped_total", "Late posts dropped beyond max_skew", "late_dropped"),
            ("repro_reorder_late_clamped_total", "Late posts clamped to the release floor", "late_clamped"),
            ("repro_reorder_forced_releases_total", "Posts force-released by the max_buffered cap", "forced_releases"),
        ):
            registry.counter(metric, help_).labels().set_function(
                lambda attr=attr: getattr(reorder.counters, attr)
            )
        quarantine = pipeline.quarantine
        registry.counter(
            "repro_quarantined_total",
            "Inputs refused into the dead-letter sink",
        ).labels().set_function(lambda: quarantine.total)


class ServiceInstruments:
    """Bundle for :class:`~repro.service.DiversificationService`.

    Latency quantiles come from the service's existing reservoir (exact
    count/mean/max, sampled percentiles); shed counters re-export the
    overload controller's accounting when one is attached.
    """

    __slots__ = ()

    def __init__(self, registry: Registry, service) -> None:
        latency = service.latency
        registry.counter(
            "repro_service_decisions_total",
            "Posts the service timed through the engine",
        ).labels().set_function(lambda: latency.count)
        quantiles = registry.gauge(
            "repro_service_latency_seconds",
            "Decision latency from the service's reservoir",
            ("quantile",),
        )
        for q in (0.5, 0.95, 0.99):
            quantiles.labels(quantile=q).set_function(
                lambda q=q: latency.percentile(q * 100)
            )
        registry.gauge(
            "repro_service_mean_latency_seconds",
            "Exact mean decision latency",
        ).labels().set_function(lambda: latency.mean)
        registry.gauge(
            "repro_service_max_latency_seconds",
            "Exact maximum decision latency",
        ).labels().set_function(lambda: latency.max)
        overload = service.overload
        if overload is not None:
            counters = overload.counters
            for metric, help_, attr in (
                ("repro_shed_dropped_total", "Posts shed by dropping", "shed_dropped"),
                ("repro_shed_passthrough_total", "Posts shed by passthrough", "shed_passthrough"),
                ("repro_shed_episodes_total", "Contiguous shedding episodes", "episodes"),
                ("repro_overload_processed_total", "Posts processed under overload control", "processed"),
            ):
                registry.counter(metric, help_).labels().set_function(
                    lambda attr=attr: getattr(counters, attr)
                )


class MemoryInstruments:
    """Bundle for a :class:`~repro.resilience.MemoryGovernor`.

    Everything is a callback re-export of the governor's own accounting:
    per-family accounted bytes (``window``, ``index``, ``journal``, …)
    from the last tick, the total against the configured budget, the
    current ladder rung as a numeric level, and the exact
    escalation/release transition counters.
    """

    __slots__ = ()

    def __init__(self, registry: Registry, governor) -> None:
        family_bytes = registry.gauge(
            "repro_memory_bytes",
            "Accounted bytes by family at the governor's last tick",
            ("family",),
        )
        for family in ("window", "index", "journal", "mailbox"):
            family_bytes.labels(family=family).set_function(
                lambda family=family: governor.last_usage.get(family, 0)
            )
        registry.gauge(
            "repro_memory_total_bytes",
            "Total accounted bytes at the governor's last tick",
        ).labels().set_function(lambda: sum(governor.last_usage.values()))
        registry.gauge(
            "repro_memory_budget_bytes",
            "Configured accounted-byte budget",
        ).labels().set_function(lambda: governor.config.budget_bytes)
        registry.gauge(
            "repro_memory_governor_level",
            "Degradation ladder rung (0 normal, 1 spill, 2 probe, 3 shed)",
        ).labels().set_function(lambda: governor.level)
        registry.counter(
            "repro_memory_escalations_total",
            "Ladder escalations (one rung each)",
        ).labels().set_function(lambda: governor.escalations)
        registry.counter(
            "repro_memory_releases_total",
            "Ladder releases (one rung each)",
        ).labels().set_function(lambda: governor.releases)
        registry.counter(
            "repro_memory_governor_ticks_total",
            "Governor control-loop evaluations",
        ).labels().set_function(lambda: governor.ticks)


class FeedInstruments:
    """Bundle for a :class:`~repro.feed.FeedService`.

    Counters are callback re-exports of the service's and mailbox store's
    exact accounting (``posts received == processed + shed`` holds on the
    scrape, not just in tests); the fanout histograms are fed live from
    the write path.
    """

    __slots__ = ("fanout_latency", "fanout_receivers")

    def __init__(self, registry: Registry, feed) -> None:
        store = feed.store
        posts = registry.counter(
            "repro_feed_posts_total",
            "Posts offered to the feed write path, by outcome",
            ("status",),
        )
        posts.labels(status="accepted").set_function(lambda: feed.posts_processed)
        posts.labels(status="shed").set_function(lambda: feed.posts_shed)
        posts.labels(status="deduplicated").set_function(
            lambda: feed.posts_deduped
        )
        registry.counter(
            "repro_feed_deadline_exceeded_total",
            "Requests answered 504 for overrunning the per-request deadline",
        ).labels().set_function(lambda: feed.deadlines_exceeded)
        registry.counter(
            "repro_feed_deliveries_total",
            "Mailbox deliveries (fanout amplification numerator)",
        ).labels().set_function(lambda: store.deliveries)
        evictions = registry.counter(
            "repro_feed_mailbox_evictions_total",
            "Mailbox entries evicted, by reason",
            ("reason",),
        )
        evictions.labels(reason="capacity").set_function(
            lambda: store.evicted_capacity
        )
        evictions.labels(reason="expired").set_function(
            lambda: store.evicted_expired
        )
        registry.counter(
            "repro_feed_impressions_total",
            "Impression records accepted into seen sets",
        ).labels().set_function(lambda: store.impressions)
        registry.counter(
            "repro_feed_reads_total",
            "Feed pages served",
        ).labels().set_function(lambda: feed.reads)
        registry.counter(
            "repro_feed_entries_served_total",
            "Entries returned across all feed pages",
        ).labels().set_function(lambda: feed.entries_served)
        registry.counter(
            "repro_feed_entries_filtered_total",
            "Entries suppressed by the impression filter",
        ).labels().set_function(lambda: feed.entries_filtered)
        registry.gauge(
            "repro_feed_mailbox_depth",
            "Live entries across all mailboxes",
        ).labels().set_function(lambda: store.total_entries)
        registry.gauge(
            "repro_feed_mailboxes",
            "Materialized per-user mailboxes",
        ).labels().set_function(lambda: store.mailbox_count)
        registry.gauge(
            "repro_feed_mailbox_bytes",
            "Accounted bytes of the mailbox store (governor family)",
        ).labels().set_function(store.approx_bytes)
        registry.gauge(
            "repro_feed_backlog_seconds",
            "Virtual ingest backlog behind wall-clock arrivals",
        ).labels().set_function(feed.backlog_delay)
        self.fanout_latency = registry.histogram(
            "repro_feed_fanout_latency_seconds",
            "Engine decision + mailbox fanout time per accepted post",
            buckets=LATENCY_BUCKETS,
        ).labels()
        self.fanout_receivers = registry.histogram(
            "repro_feed_fanout_receivers",
            "Receivers per accepted post (fanout amplification)",
            buckets=COUNT_BUCKETS,
        ).labels()

    def observe_fanout(self, latency_s: float, receivers: int) -> None:
        """One accepted post from the write path."""
        self.fanout_latency.observe(latency_s)
        self.fanout_receivers.observe(receivers)


class DurabilityInstruments:
    """Bundle for a :class:`~repro.feed.durable.DurableFeedLog`.

    Two families: ``repro_feed_wal_*`` tracks the write-ahead log's exact
    append/fsync/segment accounting (persisted inside snapshots, so the
    counters survive restarts), ``repro_feed_recovery_*`` describes the
    most recent crash recovery — what snapshot it used, how much WAL it
    replayed, how long it took.
    """

    __slots__ = ()

    def __init__(self, registry: Registry, durable) -> None:
        wal = durable.wal
        records = registry.counter(
            "repro_feed_wal_records_total",
            "WAL records appended, by record type",
            ("type",),
        )
        for kind in ("post", "impressions", "expire"):
            records.labels(type=kind).set_function(
                lambda kind=kind: wal.records_by_type.get(kind, 0)
            )
        registry.counter(
            "repro_feed_wal_bytes_total",
            "Framed bytes appended to the WAL",
        ).labels().set_function(lambda: wal.bytes_total)
        registry.counter(
            "repro_feed_wal_fsyncs_total",
            "fsync(2) calls issued by the WAL (group commit batches)",
        ).labels().set_function(lambda: wal.fsyncs_total)
        registry.counter(
            "repro_feed_wal_rotations_total",
            "Segment rotations (one per snapshot, plus recovery's)",
        ).labels().set_function(lambda: wal.rotations_total)
        registry.gauge(
            "repro_feed_wal_segment",
            "Index of the WAL segment currently appended to",
        ).labels().set_function(lambda: wal.segment)
        registry.gauge(
            "repro_feed_wal_segments_on_disk",
            "WAL segment files currently retained",
        ).labels().set_function(wal.segments_on_disk)
        snapshots = registry.counter(
            "repro_feed_wal_snapshots_total",
            "Rolling feed snapshots, by outcome",
            ("status",),
        )
        snapshots.labels(status="written").set_function(
            lambda: durable.snapshots_taken
        )
        snapshots.labels(status="failed").set_function(
            lambda: durable.snapshot_failures
        )
        dedup = registry.counter(
            "repro_feed_wal_dedup_total",
            "Idempotency-window activity (hits answer retries; evictions "
            "age keys past the window)",
            ("event",),
        )
        dedup.labels(event="hit").set_function(lambda: durable.dedup_hits)
        dedup.labels(event="evicted").set_function(lambda: durable.dedup_evicted)

        def recovery(field, default=0):
            report = durable.last_recovery
            return getattr(report, field) if report is not None else default

        registry.gauge(
            "repro_feed_recovery_records_replayed",
            "WAL records replayed by the most recent recovery",
        ).labels().set_function(lambda: recovery("records_total"))
        registry.gauge(
            "repro_feed_recovery_segments_replayed",
            "WAL segments read by the most recent recovery",
        ).labels().set_function(lambda: recovery("segments_replayed"))
        registry.gauge(
            "repro_feed_recovery_torn_bytes",
            "Torn tail bytes truncated by the most recent recovery",
        ).labels().set_function(lambda: recovery("torn_bytes"))
        registry.gauge(
            "repro_feed_recovery_duration_seconds",
            "Wall-clock time of the most recent recovery",
        ).labels().set_function(lambda: recovery("duration_seconds", 0.0))
        registry.gauge(
            "repro_feed_recovery_snapshots_skipped",
            "Corrupt/torn snapshots skipped before one validated "
            "(nonzero means the fallback path ran)",
        ).labels().set_function(lambda: len(recovery("snapshots_skipped", ())))
