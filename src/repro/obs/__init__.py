"""repro.obs — dependency-free observability: metrics, exposition, tracing.

The paper's cost model (comparisons, insertions, stored copies per
arrival; §4.4) becomes *operable* here: a :class:`Registry` of Prometheus-
model metrics, instrument bundles that bind the registry onto the hot
paths (engines, SimHash, multi-user routers, the resilient pipeline, the
service), two exposition formats (Prometheus text and JSON snapshots) and
a sampled per-post span log.

Quickstart::

    from repro.obs import Registry, render_prometheus

    registry = Registry()
    engine = UniBin(thresholds, graph)
    engine.bind_metrics(registry)
    for post in stream:
        engine.offer(post)
    print(render_prometheus(registry))

Everything is zero-cost when disabled: engines that are never bound (or
bound to :data:`NULL_REGISTRY`) run the exact uninstrumented code path.
See ``docs/observability.md`` for the metric catalog.
"""

from .exposition import render_prometheus, snapshot, write_json_snapshot
from .summary import (
    family_samples,
    family_total,
    flatten_snapshot,
    histogram_summary,
)
from .metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    NullRegistry,
    Registry,
    Timer,
    log_buckets,
)
from .trace import OfferTracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "NULL_REGISTRY",
    "NullRegistry",
    "OfferTracer",
    "Registry",
    "family_samples",
    "family_total",
    "flatten_snapshot",
    "histogram_summary",
    "Timer",
    "log_buckets",
    "render_prometheus",
    "snapshot",
    "write_json_snapshot",
]
