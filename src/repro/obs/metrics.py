"""Dependency-free metrics primitives: counters, gauges, histograms.

The paper's whole empirical argument (§4.4, Table 2, Figures 11–16) is a
cost trade-off — comparisons vs insertions vs stored copies per arrival —
so the runtime must be able to *show* those costs live, not just total
them into a :class:`~repro.core.RunStats` at the end of a run. This module
is the substrate: a :class:`Registry` of named metric families in the
Prometheus data model (counter / gauge / histogram with fixed log-spaced
buckets), labeled by engine name, user id, or whatever the instrumentation
site needs.

Design constraints, in priority order:

* **Zero-cost when disabled.** Instrumentation sites bind against a
  registry explicitly; unbound engines run the exact pre-observability
  code path. :class:`NullRegistry` exists for call sites that want a
  registry-shaped object unconditionally — every instrument it hands out
  is a shared no-op.
* **Exact.** Wherever a quantity already has a ground-truth counter
  (``RunStats``, ``ReorderCounters``, ``Quarantine``), the metric reads it
  through a *callback* at collection time instead of double-counting on
  the hot path. Snapshots therefore always agree with the run's stats, to
  the post.
* **No dependencies.** Pure stdlib; exposition formats live in
  :mod:`repro.obs.exposition`.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections.abc import Callable, Sequence

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "NULL_REGISTRY",
    "NullRegistry",
    "Registry",
    "Timer",
    "log_buckets",
]


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced bucket upper bounds: start, start·factor, …

    >>> log_buckets(1.0, 2.0, 4)
    (1.0, 2.0, 4.0, 8.0)
    """
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Latency buckets: 1 µs … ~4 s, factor 2. Covers the sub-10 µs UniBin
#: decisions as well as pathological multi-second stalls.
LATENCY_BUCKETS = log_buckets(1e-6, 2.0, 22)

#: Work-per-arrival buckets (comparisons, candidates): 1 … 32768.
COUNT_BUCKETS = log_buckets(1.0, 2.0, 16)


class Counter:
    """Monotonically increasing value.

    A counter either accumulates via :meth:`inc` or reads a live source
    through :meth:`set_function` (collection-time callback); mixing both
    on one instrument is a usage error the value property makes obvious
    (the callback wins).
    """

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self._value += amount

    def set_function(self, fn: Callable[[], float]) -> "Counter":
        """Read the value from ``fn()`` at collection time (exact re-export
        of an existing ground-truth counter)."""
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge:
    """Value that can go up and down (or track a live callback)."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> "Gauge":
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Fixed-bucket histogram (log-spaced by default) with sum and count.

    Buckets store *non-cumulative* per-bucket counts internally; the
    cumulative Prometheus view (``le``-labelled, ``+Inf``-terminated) is
    produced at collection time by :meth:`cumulative_buckets`.
    """

    __slots__ = ("bounds", "counts", "overflow", "sum", "count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        idx = bisect_left(self.bounds, value)
        if idx == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[idx] += 1

    def time(self) -> "Timer":
        """Context manager observing elapsed wall-clock seconds."""
        return Timer(self)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus view: ``(upper_bound, cumulative_count)`` pairs
        terminated by ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.overflow))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        containing the q-th observation); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= target:
                return bound
        return float("inf")


class Timer:
    """``with histogram.time(): ...`` — observes the elapsed seconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more label dimensions.

    Children (one instrument per distinct label-value combination) are
    created lazily by :meth:`labels`. An unlabeled family has exactly one
    child, keyed by the empty tuple.
    """

    __slots__ = ("name", "help", "type", "labelnames", "_children", "_buckets")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float] | None = None,
    ):
        if type_ not in _TYPES:
            raise ValueError(f"unknown metric type {type_!r}")
        self.name = name
        self.help = help_
        self.type = type_
        self.labelnames = labelnames
        self._buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labelvalues: object):
        """The child instrument for one label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if self.type == "histogram":
                child = Histogram(
                    self._buckets if self._buckets is not None else LATENCY_BUCKETS
                )
            else:
                child = _TYPES[self.type]()
            self._children[key] = child
        return child

    def samples(self):
        """``(label_values_tuple, instrument)`` pairs, creation order."""
        return self._children.items()


class Registry:
    """Named collection of metric families.

    Registering the same name twice returns the existing family (and
    validates that type and labels agree), so independent components can
    share families — e.g. every engine writes into
    ``repro_comparisons_total`` under its own ``engine`` label.
    """

    #: NullRegistry flips this; instrumentation sites treat a no-op
    #: registry exactly like no registry at all.
    is_noop = False

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        type_: str,
        help_: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.type != type_ or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.type} "
                    f"with labels {family.labelnames}; cannot re-register as "
                    f"{type_} with labels {tuple(labelnames)}"
                )
            return family
        family = MetricFamily(name, type_, help_, tuple(labelnames), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help_, tuple(labelnames))

    def gauge(
        self, name: str, help_: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help_, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help_: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._register(name, "histogram", help_, tuple(labelnames), buckets)

    def collect(self):
        """All families, registration order."""
        return self._families.values()

    def value(self, name: str, **labelvalues: object) -> float:
        """Current value of one counter/gauge sample (test convenience)."""
        family = self._families[name]
        key = tuple(str(labelvalues[n]) for n in family.labelnames)
        instrument = family._children[key]
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name} is a histogram; read .sum/.count instead")
        return instrument.value


class _NullInstrument:
    """Absorbs the full instrument API, does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> "_NullInstrument":
        return self

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullTimer":
        return _NULL_TIMER

    def labels(self, **labelvalues: object) -> "_NullInstrument":
        return self

    @property
    def value(self) -> float:
        return 0.0


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_TIMER = _NullTimer()


class NullRegistry(Registry):
    """Registry-shaped no-op: every family/instrument it returns discards
    writes. Binding an engine to it is defined to be equivalent to not
    binding at all — instrumentation sites check :attr:`is_noop` and skip
    their slow path entirely."""

    is_noop = True

    def __init__(self) -> None:
        super().__init__()

    def _register(self, name, type_, help_, labelnames, buckets=None):  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def collect(self):
        return ()

    def value(self, name: str, **labelvalues: object) -> float:
        return 0.0


#: Shared process-wide no-op registry.
NULL_REGISTRY = NullRegistry()
