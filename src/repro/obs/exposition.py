"""Exposition: Prometheus text format and JSON snapshots of a Registry.

Two consumers, two formats:

* a scraper (``GET /metrics`` on :class:`repro.service.MetricsServer`)
  gets the `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ 0.0.4;
* a replay run (``--metrics-out``) gets a JSON snapshot — the same
  samples as plain data, suitable for diffing against ``RunStats`` in
  tests and for archiving next to benchmark output.

Both render from live instruments at call time, so callback-backed
metrics (the exact ``RunStats``/``ReorderCounters`` re-exports) are read
at their current ground-truth values.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .metrics import Histogram, Registry

__all__ = [
    "render_prometheus",
    "snapshot",
    "write_json_snapshot",
]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _merge_labels(
    names: tuple[str, ...], values: tuple[str, ...], extra: tuple[tuple[str, str], ...]
) -> str:
    merged_names = names + tuple(name for name, _ in extra)
    merged_values = values + tuple(value for _, value in extra)
    return _format_labels(merged_names, merged_values)


def render_prometheus(registry: Registry) -> str:
    """The registry's current state in Prometheus text format 0.0.4."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for values, instrument in family.samples():
            if isinstance(instrument, Histogram):
                for bound, cumulative in instrument.cumulative_buckets():
                    labels = _merge_labels(
                        family.labelnames, values, (("le", _format_value(bound)),)
                    )
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                labels = _format_labels(family.labelnames, values)
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(instrument.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {instrument.count}")
            else:
                labels = _format_labels(family.labelnames, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n"


def snapshot(registry: Registry) -> dict[str, object]:
    """JSON-able snapshot of every sample in the registry.

    Shape::

        {"metrics": [
            {"name": ..., "type": ..., "help": ..., "labelnames": [...],
             "samples": [
                 {"labels": {...}, "value": ...}                 # counter/gauge
                 {"labels": {...}, "count": ..., "sum": ...,
                  "buckets": {"1e-06": 0, ..., "+Inf": n}}       # histogram
             ]}]}
    """
    metrics: list[dict[str, object]] = []
    for family in registry.collect():
        samples: list[dict[str, object]] = []
        for values, instrument in family.samples():
            labels = dict(zip(family.labelnames, values))
            if isinstance(instrument, Histogram):
                samples.append(
                    {
                        "labels": labels,
                        "count": instrument.count,
                        "sum": instrument.sum,
                        "buckets": {
                            _format_value(bound): cumulative
                            for bound, cumulative in instrument.cumulative_buckets()
                        },
                    }
                )
            else:
                samples.append({"labels": labels, "value": instrument.value})
        metrics.append(
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        )
    return {"metrics": metrics}


def write_json_snapshot(registry: Registry, path: str | Path) -> dict[str, object]:
    """Dump :func:`snapshot` to ``path``; returns the snapshot written."""
    snap = snapshot(registry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snap, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snap
