"""Offer-path tracing: a sampled JSONL span log of per-post decisions.

Aggregate metrics answer "how expensive is the stream"; traces answer
"why was *this* post pruned and what did the decision cost". Each span is
one line of JSON — post identity, engine, verdict, decision latency and
the comparisons the coverage scan performed — cheap enough to tail and
grep, structured enough to load into any analysis tool.

Sampling is seeded and deterministic: the same stream with the same
``sample``/``seed`` traces the same posts, so traces are reproducible
artifacts like everything else in this repository. ``sample=1.0``
(default) records every span.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import IO

__all__ = ["OfferTracer"]


class OfferTracer:
    """Writes sampled offer spans as JSONL.

    Args:
        sink: output path (opened/owned by the tracer) or a writable
            text handle (borrowed; :meth:`close` leaves it open).
        sample: probability of recording any given span, in (0, 1].
        seed: sampling RNG seed.
    """

    def __init__(self, sink: str | Path | IO[str], *, sample: float = 1.0, seed: int = 0):
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.sample = sample
        self._rng = random.Random(seed)
        if isinstance(sink, (str, Path)):
            self._handle: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self.spans_seen = 0
        self.spans_written = 0

    def record(
        self,
        *,
        engine: str,
        post,
        admitted: bool,
        latency_s: float,
        comparisons: int,
    ) -> None:
        """Record one offer decision (subject to sampling)."""
        self.spans_seen += 1
        if self.sample < 1.0 and self._rng.random() >= self.sample:
            return
        self.spans_written += 1
        self._handle.write(
            json.dumps(
                {
                    "post_id": post.post_id,
                    "author": post.author,
                    "timestamp": post.timestamp,
                    "engine": engine,
                    "admitted": admitted,
                    "latency_us": round(latency_s * 1e6, 3),
                    "comparisons": comparisons,
                },
                sort_keys=True,
            )
        )
        self._handle.write("\n")

    def close(self) -> None:
        """Flush and (for path sinks) close the underlying file."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "OfferTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
