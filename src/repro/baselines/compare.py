"""Quantitative comparison of SPSD against the §7 baseline models.

For each method the harness measures, against the stream generator's
ground truth and Definition-1 coverage:

* **shown** — posts the user sees (pushed / representatives / ever
  selected).
* **good prunes** — hidden posts that the generator created as true
  near-duplicates of an earlier post.
* **collateral prunes** — hidden posts that were *not* ground-truth
  redundant (diverse content the user lost).
* **coverage violations** — hidden posts with no shown post covering them
  under the full three-dimensional Definition 1 (the guarantee SPSD makes
  and the baselines cannot).

The expected outcome (and what the benchmark asserts) is the paper's §7
argument made concrete: SPSD has zero violations; MaxMin-k violates
coverage wholesale (it keeps only k posts); leader clustering over-prunes
across the author and time dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..authors import AuthorGraph
from ..core import CoverageChecker, Post, Thresholds, UniBin
from ..eval.metrics import find_uncovered
from ..social import PostStream
from .leader import LeaderClusterSummarizer
from .maxmin import MaxMinKDiversity


@dataclass(frozen=True, slots=True)
class BaselineOutcome:
    """One method's measured behaviour on a stream."""

    method: str
    shown: int
    hidden: int
    good_prunes: int
    collateral_prunes: int
    coverage_violations: int

    def as_row(self) -> dict[str, int | str]:
        return {
            "method": self.method,
            "shown": self.shown,
            "hidden": self.hidden,
            "good_prunes": self.good_prunes,
            "collateral_prunes": self.collateral_prunes,
            "coverage_violations": self.coverage_violations,
        }


def _outcome(
    method: str,
    stream: PostStream,
    shown_ids: set[int],
    checker: CoverageChecker,
) -> BaselineOutcome:
    redundant_ids = {
        pid for pid, prov in stream.provenance.items() if prov.redundant
    }
    hidden = [p for p in stream.posts if p.post_id not in shown_ids]
    good = sum(1 for p in hidden if p.post_id in redundant_ids)
    violations = find_uncovered(stream.posts, frozenset(shown_ids), checker)
    return BaselineOutcome(
        method=method,
        shown=len(shown_ids),
        hidden=len(hidden),
        good_prunes=good,
        collateral_prunes=len(hidden) - good,
        coverage_violations=len(violations),
    )


def compare_baselines(
    stream: PostStream,
    graph: AuthorGraph,
    thresholds: Thresholds,
    *,
    maxmin_k: int = 50,
) -> list[BaselineOutcome]:
    """Run SPSD (UniBin) and both baselines over ``stream``; measure all
    four quantities for each under the same Definition-1 checker."""
    checker = CoverageChecker(thresholds, graph)
    posts = stream.posts

    spsd = UniBin(thresholds, graph)
    spsd_ids = {p.post_id for p in posts if spsd.offer(p)}

    maxmin = MaxMinKDiversity(k=maxmin_k, lambda_t=thresholds.lambda_t)
    for post in posts:
        maxmin.offer(post)

    leader = LeaderClusterSummarizer(
        lambda_c=thresholds.lambda_c, expiry=thresholds.lambda_t
    )
    leader_ids = {p.post_id for p in posts if leader.offer(p)}

    return [
        _outcome("spsd_unibin", stream, spsd_ids, checker),
        _outcome("maxmin_top_k", stream, set(maxmin.ever_selected), checker),
        _outcome("leader_clustering", stream, leader_ids, checker),
    ]
