"""Related-work baseline models (paper §7), implemented for comparison.

The paper argues in prose that prior diversity/summarisation models cannot
express SPSD's guarantees; this package makes those arguments measurable:

* :class:`MaxMinKDiversity` — sliding-window top-k diversity (Drosou &
  Pitoura style): budgeted selection, single metric, revocable picks.
* :class:`LeaderClusterSummarizer` — single-pass stream clustering
  (Sumblr style): content-only collapsing, no author/time semantics.
* :func:`compare_baselines` — runs SPSD and both baselines on the same
  stream and reports good prunes, collateral prunes and Definition-1
  coverage violations for each.
"""

from .compare import BaselineOutcome, compare_baselines
from .leader import Cluster, LeaderClusterSummarizer
from .maxmin import MaxMinKDiversity, content_distance

__all__ = [
    "BaselineOutcome",
    "Cluster",
    "LeaderClusterSummarizer",
    "MaxMinKDiversity",
    "compare_baselines",
    "content_distance",
]
