"""Sliding-window MaxMin top-k diversity (the [7]-style baseline, §7).

Drosou & Pitoura maintain the k most diverse results in a sliding window
under MaxMin semantics (maximise the minimum pairwise distance of the
selected set). The paper's §7 argues this model cannot express SPSD's
needs: it keeps a *budgeted* k-subset rather than guaranteeing that every
arriving post is covered, and its single metric cannot demand simultaneous
similarity in content, time *and* author.

We implement a faithful streaming variant of the model so the difference is
measurable (``repro.baselines.compare``): a λt window of live selections,
greedy insertion while under budget, and a swap step that takes a new post
whenever replacing some selected post raises the selection's MaxMin score.

The swap evaluation is O(k) amortised per arrival: the selection's pairwise
distance matrix is maintained incrementally, the global minimum pair gives
``min-excluding-i`` for every i not on that pair in O(1), and only the two
endpoints of the minimum pair need an O(k²) masked re-scan.

The selection distance is the normalised SimHash distance (content only) —
exactly the mono-dimensional lens the paper criticises.
"""

from __future__ import annotations

import numpy as np

from ..core import Post
from ..errors import ConfigurationError
from ..simhash import hamming_bulk


def content_distance(a: Post, b: Post) -> float:
    """Normalised content distance in [0, 1]."""
    return (a.fingerprint ^ b.fingerprint).bit_count() / 64.0


class MaxMinKDiversity:
    """Streaming MaxMin top-k selection over a λt sliding window.

    ``offer`` ingests a post and returns True iff the post is *currently*
    selected; the live selection is :attr:`selection`. Unlike an SPSD
    algorithm, a True can later be revoked (the post may be swapped out or
    expire) — which is precisely the semantic gap to SPSD's push-once
    model that :mod:`repro.baselines.compare` quantifies.
    """

    def __init__(self, k: int, lambda_t: float):
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if lambda_t <= 0:
            raise ConfigurationError(f"lambda_t must be positive, got {lambda_t}")
        self.k = k
        self.lambda_t = lambda_t
        self._selected: list[Post] = []
        self._fps = np.zeros(0, dtype=np.uint64)
        # Pairwise normalised distances; +inf on the diagonal so .min()
        # ranges over real pairs only.
        self._matrix = np.zeros((0, 0), dtype=np.float64)
        #: Posts that were ever selected (what a user would have seen).
        self.ever_selected: set[int] = set()

    @property
    def selection(self) -> list[Post]:
        """The current k-diverse set (a copy)."""
        return list(self._selected)

    def maxmin_score(self) -> float:
        """Minimum pairwise distance of the current selection (1.0 when
        fewer than two posts are selected)."""
        if len(self._selected) < 2:
            return 1.0
        return float(self._matrix.min())

    # -- internals ----------------------------------------------------------

    def _distances_to_selection(self, post: Post) -> np.ndarray:
        if not self._selected:
            return np.zeros(0, dtype=np.float64)
        fp = np.full(len(self._selected), post.fingerprint, dtype=np.uint64)
        return hamming_bulk(self._fps, fp).astype(np.float64) / 64.0

    def _drop_indices(self, indices: list[int]) -> None:
        keep = [i for i in range(len(self._selected)) if i not in set(indices)]
        self._selected = [self._selected[i] for i in keep]
        self._fps = self._fps[keep]
        self._matrix = self._matrix[np.ix_(keep, keep)]

    def _append(self, post: Post, distances: np.ndarray) -> None:
        n = len(self._selected)
        grown = np.full((n + 1, n + 1), np.inf, dtype=np.float64)
        grown[:n, :n] = self._matrix
        grown[n, :n] = distances
        grown[:n, n] = distances
        self._matrix = grown
        self._selected.append(post)
        self._fps = np.append(self._fps, np.uint64(post.fingerprint))

    def _expire(self, now: float) -> None:
        cutoff = now - self.lambda_t
        expired = [
            i for i, p in enumerate(self._selected) if p.timestamp < cutoff
        ]
        if expired:
            self._drop_indices(expired)

    def offer(self, post: Post) -> bool:
        """Ingest ``post``; True iff it enters the current selection."""
        self._expire(post.timestamp)

        if len(self._selected) < self.k:
            self._append(post, self._distances_to_selection(post))
            self.ever_selected.add(post.post_id)
            return True

        distances = self._distances_to_selection(post)
        k = len(self._selected)
        current = self.maxmin_score()

        # min of `distances` excluding index i, for every i, in O(k).
        order = np.argsort(distances)
        d_min_idx = int(order[0])
        d_min = distances[d_min_idx]
        d_second = distances[int(order[1])] if k > 1 else np.inf
        min_d_excl = np.full(k, d_min)
        min_d_excl[d_min_idx] = d_second

        # min of the pair matrix excluding row/col i, for every i: equal to
        # the global min unless i sits on the minimising pair.
        if k < 2:
            min_m_excl = np.full(k, np.inf)
        else:
            flat = int(np.argmin(self._matrix))
            a, b = divmod(flat, k)
            global_min = self._matrix[a, b]
            min_m_excl = np.full(k, global_min)
            for endpoint in (a, b):
                masked = np.delete(
                    np.delete(self._matrix, endpoint, axis=0), endpoint, axis=1
                )
                min_m_excl[endpoint] = masked.min() if masked.size else np.inf

        # Candidate sets with fewer than two members score a vacuous 1.0
        # (the k = 1 case); distances never exceed 1, so clamping is exact.
        scores = np.minimum(np.minimum(min_m_excl, min_d_excl), 1.0)
        best = int(np.argmax(scores))
        if scores[best] > current:
            # Replace element `best` with the newcomer.
            self._selected[best] = post
            self._fps[best] = np.uint64(post.fingerprint)
            row = distances.copy()
            row[best] = np.inf
            self._matrix[best, :] = row
            self._matrix[:, best] = row
            self.ever_selected.add(post.post_id)
            return True
        return False
