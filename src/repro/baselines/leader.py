"""Leader-based online stream clustering (the [18]/Sumblr-style baseline).

The summarisation line of work (§7) clusters arriving tweets by content
similarity and emits one representative per cluster. We implement the
classic single-pass *leader* algorithm: an arriving post joins the first
live cluster whose leader is within the content threshold, otherwise it
founds a new cluster and is emitted as that cluster's representative.

This looks superficially like UniBin but differs in exactly the ways the
paper cares about: there is **no author dimension and no time dimension**
beyond cluster expiry — two posts with similar text are collapsed even when
they come from unrelated authors or far apart in time, so diverse content
the user wanted is over-pruned. ``repro.baselines.compare`` measures that
collateral damage against the generator's ground truth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core import Post
from ..errors import ConfigurationError


@dataclass(slots=True)
class Cluster:
    """A live cluster: its leader (representative) and member count."""

    leader: Post
    members: int = 1
    last_update: float = field(default=0.0)


class LeaderClusterSummarizer:
    """Single-pass leader clustering with cluster expiry.

    ``offer`` returns True iff the post founded a new cluster (i.e. it is
    emitted as a representative — the summary the user sees).
    """

    def __init__(self, lambda_c: int, expiry: float):
        if not 0 <= lambda_c <= 64:
            raise ConfigurationError(f"lambda_c must be in [0, 64], got {lambda_c}")
        if expiry <= 0:
            raise ConfigurationError(f"expiry must be positive, got {expiry}")
        self.lambda_c = lambda_c
        self.expiry = expiry
        self._clusters: deque[Cluster] = deque()
        self.comparisons = 0

    def __len__(self) -> int:
        return len(self._clusters)

    def _expire(self, now: float) -> None:
        cutoff = now - self.expiry
        # Clusters go stale when unrefreshed; drop from the front lazily.
        self._clusters = deque(
            c for c in self._clusters if c.last_update >= cutoff
        )

    def offer(self, post: Post) -> bool:
        """Ingest ``post``; True iff it becomes a cluster representative."""
        self._expire(post.timestamp)
        for cluster in self._clusters:
            self.comparisons += 1
            distance = (cluster.leader.fingerprint ^ post.fingerprint).bit_count()
            if distance <= self.lambda_c:
                cluster.members += 1
                cluster.last_update = post.timestamp
                return False
        self._clusters.append(
            Cluster(leader=post, members=1, last_update=post.timestamp)
        )
        return True

    def cluster_sizes(self) -> list[int]:
        """Member counts of the live clusters (largest first)."""
        return sorted((c.members for c in self._clusters), reverse=True)
