"""Crash-safe feed state: WAL + rolling snapshots + recovery.

The serving layer's contract is *exactly-once, byte-identical*: kill the
process at any instant — mid-fanout, mid-fsync, mid-snapshot — restart
with ``--recover``, and every mailbox, seen set and cursor position is
the one an uninterrupted run would hold. Three pieces deliver it:

**The write-ahead log** (:mod:`repro.feed.wal`). Every accepted post
(with a digest of the engine's receiver verdict — see
:func:`receivers_digest` — and the assigned sequence number), every
impression batch and every window-expiry sweep is appended —
CRC-framed, fsync'd per policy — *before* the in-memory mutation. The
engine decision itself is deliberately **not** logged as state: recovery
re-offers the logged posts to an engine restored from the snapshot, so
an engine mutation whose post never reached the WAL simply vanishes —
the client was never acked and retries (idempotently).

**Rolling snapshots** (:class:`SnapshotStore`). Every
``snapshot_every`` logged records, the WAL rotates to a fresh segment
and the complete feed state — mailbox store, engine checkpoint
(:func:`~repro.resilience.snapshot_engine`), dedup window, every
counter — is written through the same atomic CRC-framed path the
supervisor's checkpoints use (:mod:`repro.storage.framing`). Old
snapshots and the WAL segments they obsolete are pruned
(``keep_snapshots`` deep), so disk use is bounded by snapshot size plus
one snapshot interval of WAL.

**Recovery** (:meth:`DurableFeedLog.recover`). Load the newest snapshot
that passes its CRC (a torn or bit-rotted snapshot is *skipped*, falling
back to the previous one and a longer replay — that is what
``keep_snapshots >= 2`` buys), restore mailboxes and engine, then replay
the WAL tail: re-offer each logged post and cross-check the engine
reproduces the recorded receiver digest and the store assigns the
recorded sequence number — any mismatch is a determinism violation and fails loud
rather than serving silently-wrong feeds. A torn final frame (the append
the crash interrupted) is truncated; torn bytes anywhere *earlier* mean
damage at rest and raise. While recovery runs the service stays up in
degraded mode: reads serve the restored-so-far state flagged
``stale: true`` and ``/healthz`` reports the replay.

**Exactly-once ingestion.** ``POST /posts`` may carry an
``idempotency_key``; the key rides in the post's WAL record (replay
rebuilds the key → (seq, receivers) window from the re-offered posts)
and the window itself rides in snapshots, bounded to the
``dedup_window`` most recent keys. A client retrying an acked post gets the original
verdict back without touching the engine; a client retrying an *unacked*
post (crash before the WAL append) is a genuinely new ingest. Either
way: one fanout.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..core import Post
from ..errors import CheckpointError, ConfigurationError
from ..io import post_from_dict, post_to_dict
from ..resilience.checkpoint import load_engine_state, snapshot_engine
from ..storage.framing import read_framed, write_framed
from .wal import WriteAheadLog, list_segments, segment_index

__all__ = [
    "DurabilityConfig",
    "DurableFeedLog",
    "FEED_SNAPSHOT_VERSION",
    "RecoveryReport",
    "SnapshotStore",
    "receivers_digest",
]

_DIGEST_MASK = (1 << 64) - 1


def receivers_digest(receivers) -> list[int]:
    """Order-insensitive O(1)-size fingerprint of a receiver set: count
    and 64-bit sum.

    A post's WAL record carries this instead of the receiver list itself:
    the list is O(fanout) bytes per record (it dominated the log's write
    cost at real amplification), while recovery only needs enough to
    cross-check that re-offering the post reproduces the same set. Count
    plus sum catches any single-receiver divergence and every realistic
    engine-nondeterminism failure (both components run at C speed; a
    per-element fold costs ~20us/post at amplification 400, a third of
    the whole WAL budget). Byte-exact equivalence is enforced separately
    by the snapshot CRCs and the differential recovery harness.
    """
    return [len(receivers), sum(receivers) & _DIGEST_MASK]

#: Bumped on incompatible feed-snapshot layout changes.
FEED_SNAPSHOT_VERSION = 1

SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".ckpt"


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs for the durable feed log (CLI: ``repro serve --wal-dir ...``).

    Attributes:
        wal_dir: directory holding WAL segments and snapshots.
        snapshot_every: logged records between rolling snapshots (also
            the WAL-replay bound a recovery pays).
        fsync: WAL fsync policy — ``always`` / ``interval`` / ``never``
            (see :mod:`repro.feed.wal` for the durability tiers).
        fsync_interval: appends per group commit under ``interval``.
        keep_snapshots: rolling snapshots retained; >= 2 lets recovery
            fall back past a corrupt newest snapshot.
        dedup_window: most-recent idempotency keys remembered.
        fault_plan: optional :class:`~repro.resilience.FeedFaultPlan`
            chaos injectors (tests / the chaos smoke harness).
    """

    wal_dir: str | Path
    snapshot_every: int = 1024
    fsync: str = "interval"
    fsync_interval: int = 64
    keep_snapshots: int = 2
    dedup_window: int = 1024
    fault_plan: object | None = None

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.keep_snapshots < 1:
            raise ConfigurationError(
                f"keep_snapshots must be >= 1, got {self.keep_snapshots}"
            )
        if self.dedup_window < 1:
            raise ConfigurationError(
                f"dedup_window must be >= 1, got {self.dedup_window}"
            )


def snapshot_path(directory: str | Path, index: int) -> Path:
    return Path(directory) / f"{SNAPSHOT_PREFIX}{index:06d}{SNAPSHOT_SUFFIX}"


def snapshot_file_index(path: str | Path) -> int:
    name = Path(path).name
    return int(name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)])


class SnapshotStore:
    """Rolling, CRC-validated feed snapshots in the WAL directory.

    Files are ``snapshot-NNNNNN.ckpt``, written through
    :func:`~repro.storage.framing.write_framed` (temp + fsync + rename
    under a length+CRC header) — a crash mid-save leaves the previous
    snapshot intact, and a snapshot damaged at rest fails its CRC on
    load instead of restoring garbage.
    """

    def __init__(self, directory: str | Path, *, keep: int = 2, fault_plan=None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.fault_plan = fault_plan

    def list(self) -> list[Path]:
        """Snapshot files ascending by index."""
        found = [
            p
            for p in self.directory.glob(f"{SNAPSHOT_PREFIX}*{SNAPSHOT_SUFFIX}")
            if p.is_file()
        ]
        return sorted(found, key=snapshot_file_index)

    def next_index(self) -> int:
        existing = self.list()
        return snapshot_file_index(existing[-1]) + 1 if existing else 1

    def save(self, payload: dict) -> Path:
        """Write ``payload`` as the next snapshot and prune to ``keep``.

        Raises ``OSError`` if the write fails (full disk — injected or
        real); the previous snapshots are untouched either way.
        """
        if self.fault_plan is not None:
            self.fault_plan.on_snapshot()
        path = snapshot_path(self.directory, self.next_index())
        write_framed(path, payload)
        for old in self.list()[: -self.keep]:
            old.unlink()
        return path

    def load_best(self) -> tuple[dict | None, Path | None, list[tuple[str, str]]]:
        """Newest snapshot that passes validation.

        Returns ``(payload, path, skipped)`` where ``skipped`` lists
        ``(filename, reason)`` for every newer snapshot that failed its
        CRC or shape check — the fallback trail recovery reports.
        ``(None, None, skipped)`` when no snapshot is loadable.
        """
        skipped: list[tuple[str, str]] = []
        for path in reversed(self.list()):
            try:
                payload = read_framed(path)
            except CheckpointError as error:
                skipped.append((path.name, str(error)))
                continue
            if (
                not isinstance(payload, dict)
                or payload.get("version") != FEED_SNAPSHOT_VERSION
            ):
                skipped.append(
                    (path.name, f"unsupported feed snapshot: {type(payload)}")
                )
                continue
            return payload, path, skipped
        return None, None, skipped


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`DurableFeedLog.recover` run did."""

    used_snapshot: str | None
    snapshots_skipped: tuple[tuple[str, str], ...]
    start_segment: int
    final_segment: int
    segments_replayed: int
    records_replayed: dict[str, int] = field(default_factory=dict)
    torn_bytes: int = 0
    duration_seconds: float = 0.0

    @property
    def records_total(self) -> int:
        return sum(self.records_replayed.values())

    def to_dict(self) -> dict[str, object]:
        return {
            "used_snapshot": self.used_snapshot,
            "snapshots_skipped": [list(pair) for pair in self.snapshots_skipped],
            "start_segment": self.start_segment,
            "final_segment": self.final_segment,
            "segments_replayed": self.segments_replayed,
            "records_replayed": dict(self.records_replayed),
            "records_total": self.records_total,
            "torn_bytes": self.torn_bytes,
            "duration_seconds": self.duration_seconds,
        }


class DurableFeedLog:
    """The durability engine behind a :class:`~repro.feed.FeedService`.

    Owns the WAL, the snapshot store and the idempotency window; the
    feed service calls ``log_*`` before each mutation (under its write
    lock) and :meth:`maybe_snapshot` after. Not thread-safe on its own —
    it lives entirely inside the service's write critical section.
    """

    def __init__(self, config: DurabilityConfig):
        self.config = config
        self.wal = WriteAheadLog(
            config.wal_dir,
            fsync=config.fsync,
            fsync_interval=config.fsync_interval,
            fault_plan=config.fault_plan,
        )
        self.snapshots = SnapshotStore(
            config.wal_dir, keep=config.keep_snapshots, fault_plan=config.fault_plan
        )
        #: idempotency key -> {"seq": int, "receivers": frozenset[int]}
        self._dedup: OrderedDict[str, dict] = OrderedDict()
        self.dedup_hits = 0
        self.dedup_evicted = 0
        self._since_snapshot = 0
        self.snapshots_taken = 0
        self.snapshot_failures = 0
        self.last_snapshot_seconds = 0.0
        self.last_recovery: RecoveryReport | None = None

    # -- idempotency window ------------------------------------------------

    def dedup_lookup(self, key: str) -> dict | None:
        hit = self._dedup.get(key)
        if hit is not None:
            self.dedup_hits += 1
        return hit

    def dedup_record(self, key: str, seq: int, receivers) -> None:
        # The frozenset is stored as-is — the write path is per-post hot,
        # so ordering is deferred to snapshot capture.
        self._dedup[key] = {"seq": seq, "receivers": frozenset(receivers)}
        while len(self._dedup) > self.config.dedup_window:
            self._dedup.popitem(last=False)
            self.dedup_evicted += 1

    # -- the log_* write path ----------------------------------------------

    def log_post(self, post: Post, receivers, seq: int, idem: str | None) -> None:
        """WAL a processed post *before* its fanout is applied."""
        self.wal.append(
            {
                "t": "post",
                "post": post_to_dict(post),
                "recv": receivers_digest(receivers),
                "seq": seq,
                "idem": idem,
            }
        )
        if idem is not None:
            self.dedup_record(idem, seq, receivers)
        self._since_snapshot += 1

    def log_impressions(self, user: int, seqs) -> None:
        self.wal.append({"t": "impressions", "user": user, "seqs": sorted(seqs)})
        self._since_snapshot += 1

    def log_expire(self, now: float) -> None:
        """WAL a window-expiry sweep (prescriptive: replay runs expiry
        exactly where the live run did, no cadence re-derivation)."""
        self.wal.append({"t": "expire", "now": now})
        self._since_snapshot += 1

    # -- snapshots ---------------------------------------------------------

    def capture(self, feed) -> dict[str, object]:
        """The complete JSON-able feed state at this instant."""
        return {
            "version": FEED_SNAPSHOT_VERSION,
            "wal_segment": self.wal.segment,
            "mailbox": feed.store.state_dict(),
            "engine": snapshot_engine(feed.service.engine),
            "dedup": [
                [key, entry["seq"], sorted(entry["receivers"])]
                for key, entry in self._dedup.items()
            ],
            "wal_counters": self.wal.snapshot_counters(),
            "counters": {
                "posts_received": feed.posts_received,
                "posts_processed": feed.posts_processed,
                "posts_shed": feed.posts_shed,
                "posts_deduped": feed.posts_deduped,
                "since_expire": feed._since_expire,
                "since_purge": feed.service._since_purge,
                "dedup_hits": self.dedup_hits,
                "dedup_evicted": self.dedup_evicted,
                "snapshots_taken": self.snapshots_taken,
                "snapshot_failures": self.snapshot_failures,
            },
        }

    def snapshot(self, feed, *, must_succeed: bool = False) -> Path | None:
        """Rotate the WAL and persist a full snapshot; prune what the
        retained snapshots no longer need.

        A failed save (full disk) is *absorbed* by default — the service
        keeps running on the previous snapshot plus a longer WAL, and
        ``snapshot_failures`` counts the miss; ``must_succeed`` (the
        shutdown flush) re-raises instead.
        """
        start = time.perf_counter()
        self.wal.rotate()
        payload = self.capture(feed)
        try:
            path = self.snapshots.save(payload)
        except OSError:
            self.snapshot_failures += 1
            self._since_snapshot = 0
            if must_succeed:
                raise
            return None
        self.snapshots_taken += 1
        self._since_snapshot = 0
        self.last_snapshot_seconds = time.perf_counter() - start
        retained = self.snapshots.list()
        if retained:
            floors = []
            for snap in retained:
                try:
                    floors.append(int(read_framed(snap).get("wal_segment", 1)))
                except CheckpointError:
                    floors.append(1)  # unreadable snapshot: prune nothing past it
            self.wal.prune_segments(min(floors))
        return path

    def maybe_snapshot(self, feed) -> Path | None:
        if self._since_snapshot >= self.config.snapshot_every:
            return self.snapshot(feed)
        return None

    # -- recovery ----------------------------------------------------------

    def recover(self, feed, *, snapshot_after: bool = True) -> RecoveryReport:
        """Rebuild ``feed``'s state from disk; leaves the WAL open for
        appending where the crashed run left off.

        While this runs ``feed.stale`` is True: reads are served from the
        restored-so-far state and flagged, and ``/healthz`` degrades.
        """
        start = time.perf_counter()
        feed.stale = True
        try:
            payload, used_path, skipped = self.snapshots.load_best()
            start_segment = 1
            if payload is not None:
                feed.store.load_state(payload["mailbox"])
                load_engine_state(feed.service.engine, payload["engine"])
                self._dedup = OrderedDict(
                    (
                        key,
                        {
                            "seq": int(seq),
                            "receivers": frozenset(int(r) for r in recv),
                        },
                    )
                    for key, seq, recv in payload.get("dedup", [])
                )
                counters = payload.get("counters", {})
                feed.posts_received = int(counters.get("posts_received", 0))
                feed.posts_processed = int(counters.get("posts_processed", 0))
                feed.posts_shed = int(counters.get("posts_shed", 0))
                feed.posts_deduped = int(counters.get("posts_deduped", 0))
                feed._since_expire = int(counters.get("since_expire", 0))
                feed.service._since_purge = int(counters.get("since_purge", 0))
                self.dedup_hits = int(counters.get("dedup_hits", 0))
                self.dedup_evicted = int(counters.get("dedup_evicted", 0))
                self.snapshots_taken = int(counters.get("snapshots_taken", 0))
                self.snapshot_failures = int(counters.get("snapshot_failures", 0))
                self.wal.load_counters(payload.get("wal_counters", {}))
                start_segment = int(payload.get("wal_segment", 1))
            else:
                segments = list_segments(self.wal.directory)
                if segments and segment_index(segments[0]) > 1:
                    raise CheckpointError(
                        "no loadable snapshot, but the WAL starts at segment "
                        f"{segment_index(segments[0])} — earlier segments were "
                        "pruned against snapshots that are now unreadable; "
                        "state cannot be reconstructed"
                    )

            segments = [
                p
                for p in list_segments(self.wal.directory)
                if segment_index(p) >= start_segment
            ]
            replayed: dict[str, int] = {}
            torn_total = 0
            last_index = segment_index(segments[-1]) if segments else start_segment
            for seg_path in segments:
                index = segment_index(seg_path)
                records, torn = self.wal.read_segment(index)
                if torn and index != last_index:
                    raise CheckpointError(
                        f"{seg_path}: {torn} torn bytes in a non-final WAL "
                        "segment — segments are only ever torn at the crash "
                        "point; this file is damaged at rest"
                    )
                torn_total += torn
                for record in records:
                    self._replay_record(feed, record, source=str(seg_path))
                    kind = str(record["t"])
                    replayed[kind] = replayed.get(kind, 0) + 1
                    self.wal.records_total += 1
                    self.wal.records_by_type[kind] = (
                        self.wal.records_by_type.get(kind, 0) + 1
                    )

            # Continue appending where the crash happened (torn tail cut).
            self.wal.open_segment(last_index, truncate_torn=True)
            self._since_snapshot = sum(replayed.values())
            report = RecoveryReport(
                used_snapshot=used_path.name if used_path else None,
                snapshots_skipped=tuple(skipped),
                start_segment=start_segment,
                final_segment=last_index,
                segments_replayed=len(segments),
                records_replayed=replayed,
                torn_bytes=torn_total,
                duration_seconds=time.perf_counter() - start,
            )
            self.last_recovery = report
        finally:
            feed.stale = False
        if snapshot_after and report.records_total:
            # Fold the replayed tail into a fresh snapshot so the *next*
            # restart replays only what arrives after this one.
            self.snapshot(feed)
        return report

    def _replay_record(self, feed, record: dict, *, source: str) -> None:
        kind = record.get("t")
        if kind == "post":
            post = post_from_dict(record["post"])
            recorded = [int(v) for v in record["recv"]]
            receivers = frozenset(feed.service.ingest(post))
            if receivers_digest(receivers) != recorded:
                raise CheckpointError(
                    f"{source}: replaying post {post.post_id} produced a "
                    f"receiver set with digest {receivers_digest(receivers)} "
                    f"but the WAL recorded {recorded} — engine is not "
                    "deterministic against this log (wrong algorithm/graph/"
                    "thresholds?)"
                )
            seq, _ = feed.store.fanout(post, sorted(receivers))
            if seq != int(record["seq"]):
                raise CheckpointError(
                    f"{source}: replaying post {post.post_id} assigned "
                    f"seq {seq}, WAL recorded {record['seq']} — mailbox "
                    "state does not line up with this log"
                )
            idem = record.get("idem")
            if idem is not None:
                self.dedup_record(idem, seq, receivers)
            feed.posts_received += 1
            feed.posts_processed += 1
            feed._since_expire += 1
        elif kind == "impressions":
            feed.store.record_impressions(
                int(record["user"]), [int(s) for s in record["seqs"]]
            )
        elif kind == "expire":
            feed.store.expire(float(record["now"]))
            feed._since_expire = 0
        else:
            raise CheckpointError(
                f"{source}: unknown WAL record type {kind!r}"
            )

    def close(self) -> None:
        self.wal.close()

    # -- reporting ---------------------------------------------------------

    def status(self) -> dict[str, object]:
        """JSON-able durability section for ``/feed/stats``."""
        report = self.last_recovery
        return {
            "wal_dir": str(self.config.wal_dir),
            "fsync": self.config.fsync,
            "wal": {
                **self.wal.snapshot_counters(),
                "segment": self.wal.segment,
                "segments_on_disk": self.wal.segments_on_disk(),
                "records_since_snapshot": self._since_snapshot,
            },
            "snapshots": {
                "taken": self.snapshots_taken,
                "failures": self.snapshot_failures,
                "on_disk": len(self.snapshots.list()),
                "keep": self.config.keep_snapshots,
                "last_seconds": self.last_snapshot_seconds,
            },
            "dedup": {
                "window": self.config.dedup_window,
                "keys": len(self._dedup),
                "hits": self.dedup_hits,
                "evicted": self.dedup_evicted,
            },
            "recovery": report.to_dict() if report is not None else None,
        }
