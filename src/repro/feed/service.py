"""The feed service: fanout-on-write over a diversification engine.

Write path: :meth:`FeedService.ingest` runs one post through the wrapped
:class:`~repro.service.DiversificationService` (any M-SPSD engine —
serial, shared-component, sharded, supervised), takes the engine's
receiver set, and fans the post out into the per-user
:class:`~repro.feed.mailbox.MailboxStore`. Read path:
:meth:`FeedService.read` serves one cursor page from a mailbox, filtered
by the user's recorded impressions.

Backpressure is real-time, not replay-time: the service tracks a virtual
single-server backlog over wall-clock arrivals (the online analogue of
:meth:`DiversificationService._replay_shedding`) and, when an
:class:`~repro.resilience.OverloadController` says to shed, raises
:class:`~repro.errors.FeedOverloadError` carrying the backlog — the HTTP
front end turns that into ``429`` + ``Retry-After``. The accounting is
exactly balanced: every post received is either processed or shed.

Memory: the mailbox store registers as the governor's ``mailbox`` byte
family, so feed depth participates in the same budget/ladder as the
engine windows, indexes and journals.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterable
from threading import RLock

from ..core import Post
from ..errors import ConfigurationError, FeedOverloadError
from ..obs.instruments import FeedInstruments
from ..service import DiversificationService
from .durable import DurabilityConfig, DurableFeedLog, RecoveryReport
from .mailbox import FeedPage, MailboxConfig, MailboxStore


class FeedService:
    """Write-path/read-path split over a multi-user diversification service.

    Args:
        service: a :class:`DiversificationService` wrapping a *multi-user*
            engine (its ``ingest`` must return receiver sets).
        mailboxes: mailbox bounds; receivers default to every user the
            engine's subscription table knows.
        expire_every: run mailbox window expiry every N ingested posts
            (stream-time cadence, like the engine's own ``purge_every``).
        durability: a :class:`~repro.feed.durable.DurabilityConfig` turns
            on the WAL + snapshot + recovery machinery; every mutation is
            logged before it applies and ``recover()`` rebuilds state
            after a crash. ``None`` (default) keeps the feed in-memory.
        retry_jitter: fraction of jitter spread onto 429 ``Retry-After``
            values (0.25 → up to +25%), breaking retry stampedes after a
            shed; 0 disables.
        jitter_seed: seed for the jitter RNG — a fixed seed makes the
            jittered values reproducible (tests, differential runs).
    """

    def __init__(
        self,
        service: DiversificationService,
        *,
        users: Iterable[int] | None = None,
        mailboxes: MailboxConfig | None = None,
        expire_every: int = 256,
        durability: DurabilityConfig | None = None,
        retry_jitter: float = 0.0,
        jitter_seed: int | None = None,
    ):
        if not service.is_multiuser:
            raise ConfigurationError(
                "FeedService needs a multi-user engine (receiver sets); "
                "wrap a make_multiuser(...) engine, not a single-user one"
            )
        if expire_every < 1:
            raise ConfigurationError(
                f"expire_every must be >= 1, got {expire_every}"
            )
        if retry_jitter < 0:
            raise ConfigurationError(
                f"retry_jitter must be >= 0, got {retry_jitter}"
            )
        if users is None:
            table = getattr(service.engine, "subscriptions", None)
            if table is None:
                raise ConfigurationError(
                    "this engine does not expose its subscription table; "
                    "pass users= explicitly"
                )
            users = table.users
        self.service = service
        self.store = MailboxStore(users, mailboxes)
        self._expire_every = expire_every
        self._since_expire = 0
        # One lock serializes the whole write path: engine decision, WAL
        # append, mailbox fanout — so the log order IS the apply order.
        self._write_lock = RLock()
        self.durable = DurableFeedLog(durability) if durability is not None else None
        #: True while recovery replays the WAL; reads are flagged stale.
        self.stale = False
        self.retry_jitter = retry_jitter
        self._jitter_rng = random.Random(jitter_seed)
        # Virtual single-server backlog over wall-clock time: the moment
        # the engine will have drained everything accepted so far.
        self._server_free: float | None = None
        self.posts_received = 0
        self.posts_processed = 0
        self.posts_shed = 0
        self.posts_deduped = 0
        self.reads = 0
        self.entries_served = 0
        self.entries_filtered = 0
        self.deadlines_exceeded = 0
        self._instruments: FeedInstruments | None = None
        if service.registry is not None:
            self.bind_metrics()

    @property
    def overload(self):
        return self.service.overload

    @property
    def registry(self):
        return self.service.registry

    def bind_metrics(self) -> None:
        """Register the ``repro_feed_*`` families on the wrapped service's
        registry (binding one there first if needed) and hook the mailbox
        byte family into the governor."""
        if self.service.registry is None:
            from ..obs import Registry

            self.service.bind_metrics(Registry())
        if self._instruments is None:
            self._instruments = FeedInstruments(self.service.registry, self)
            if self.durable is not None:
                from ..obs.instruments import DurabilityInstruments

                DurabilityInstruments(self.service.registry, self.durable)
        if self.service.governor is not None:
            self.service.governor.add_source("mailbox", self.store.approx_bytes)

    # -- write path --------------------------------------------------------

    def backlog_delay(self, now: float | None = None) -> float:
        """Current virtual backlog in seconds (0 when idle)."""
        if self._server_free is None:
            return 0.0
        if now is None:
            now = time.monotonic()
        return max(0.0, self._server_free - now)

    def _jittered(self, retry_after: float) -> float:
        """Spread ``Retry-After`` by up to ``retry_jitter`` so a cohort of
        shed clients does not retry in lockstep (seeded → reproducible)."""
        if self.retry_jitter <= 0:
            return retry_after
        return retry_after * (1.0 + self._jitter_rng.uniform(0.0, self.retry_jitter))

    def ingest(self, post: Post, *, idempotency_key: str | None = None) -> frozenset[int]:
        """Run ``post`` through the engine and fan it out; returns the
        receiver set. Raises :class:`FeedOverloadError` when shed."""
        receivers, _ = self.ingest_detailed(post, idempotency_key=idempotency_key)
        return receivers

    def ingest_detailed(
        self, post: Post, *, idempotency_key: str | None = None
    ) -> tuple[frozenset[int], bool]:
        """:meth:`ingest` plus whether the idempotency window answered.

        With durability on, a retried ``idempotency_key`` returns the
        original receiver set without touching the engine or mailboxes —
        and the dedup check runs *before* the shedding gate, so a retry
        of already-committed work is never 429'd into a retry storm.
        """
        with self._write_lock:
            self.posts_received += 1
            durable = self.durable
            if durable is not None and idempotency_key is not None:
                hit = durable.dedup_lookup(idempotency_key)
                if hit is not None:
                    self.posts_deduped += 1
                    return frozenset(hit["receivers"]), True
            now = time.monotonic()
            backlog = self.backlog_delay(now)
            controller = self.service.overload
            if controller is not None and controller.should_shed(backlog):
                controller.record_shed()
                self.posts_shed += 1
                if self.service.governor is not None:
                    self.service.governor.observe()
                raise FeedOverloadError(
                    f"ingestion shedding: backlog {backlog:.3f}s over budget",
                    retry_after=self._jittered(
                        max(backlog - controller.resume_delay, 0.001)
                    ),
                )
            start = time.perf_counter()
            receivers = self.service.ingest(post)
            if durable is not None:
                # WAL before apply: the record (receivers + the seq the
                # store is about to assign) hits the log first, so a
                # crash between here and the fanout replays the fanout.
                durable.log_post(
                    post, receivers, self.store.peek_next_seq(), idempotency_key
                )
            seq, delivered = self.store.fanout(post, receivers)
            elapsed = time.perf_counter() - start
            free_from = now if self._server_free is None else max(now, self._server_free)
            self._server_free = free_from + elapsed
            if controller is not None:
                controller.record_processed()
            self.posts_processed += 1
            self._since_expire += 1
            if self._since_expire >= self._expire_every:
                if durable is not None:
                    durable.log_expire(post.timestamp)
                self.store.expire(post.timestamp)
                self._since_expire = 0
            if durable is not None:
                durable.maybe_snapshot(self)
            if self._instruments is not None:
                self._instruments.observe_fanout(elapsed, delivered)
            return receivers, False

    def replay(self, posts: Iterable[Post]) -> dict[str, int]:
        """Bulk-ingest a recorded stream; sheds are counted, not raised."""
        accepted = shed = deliveries_before = 0
        deliveries_before = self.store.deliveries
        for post in posts:
            try:
                self.ingest(post)
                accepted += 1
            except FeedOverloadError:
                shed += 1
        return {
            "accepted": accepted,
            "shed": shed,
            "deliveries": self.store.deliveries - deliveries_before,
        }

    # -- read path ---------------------------------------------------------

    def read(self, user: int, cursor: int | None = None, limit: int = 20) -> FeedPage:
        """One impression-filtered page of ``user``'s feed."""
        page = self.store.read(user, cursor, limit)
        self.reads += 1
        self.entries_served += len(page.entries)
        self.entries_filtered += page.filtered
        return page

    def record_impressions(self, user: int, seqs: Iterable[int]) -> tuple[int, int]:
        """Mark rendered entries seen; returns ``(recorded, ignored)``."""
        seqs = list(seqs)
        with self._write_lock:
            if self.durable is not None:
                # Validate the user first so a 404 never reaches the WAL.
                if user not in self.store:
                    return self.store.record_impressions(user, seqs)
                self.durable.log_impressions(user, seqs)
                recorded, ignored = self.store.record_impressions(user, seqs)
                self.durable.maybe_snapshot(self)
                return recorded, ignored
            return self.store.record_impressions(user, seqs)

    # -- reporting ---------------------------------------------------------

    def recover(self, **kwargs) -> RecoveryReport:
        """Rebuild state from the WAL directory (``repro serve --recover``);
        see :meth:`~repro.feed.durable.DurableFeedLog.recover`."""
        if self.durable is None:
            raise ConfigurationError(
                "recovery needs durability: construct the FeedService with "
                "a DurabilityConfig (CLI: --wal-dir)"
            )
        with self._write_lock:
            return self.durable.recover(self, **kwargs)

    def degradation_report(self) -> dict[str, object]:
        """The wrapped service's health report plus feed-level state:
        a recovery in flight (stale reads) degrades ``/healthz``."""
        report = self.service.degradation_report()
        reasons = report["reasons"]
        if self.stale:
            reasons.append("feed recovery replaying the WAL; reads are stale")
            report["status"] = "degraded"
        if self.durable is not None:
            report["durability"] = self.durable.status()
        return report

    def _health_probe(self) -> str:
        report = self.degradation_report()
        if report["status"] == "ok":
            return "ok\n"
        return "degraded: " + "; ".join(report["reasons"]) + "\n"

    def stats(self) -> dict[str, object]:
        """One JSON-able summary (the ``/feed/stats`` body)."""
        store = self.store
        return {
            "posts": {
                "received": self.posts_received,
                "processed": self.posts_processed,
                "shed": self.posts_shed,
                "deduped": self.posts_deduped,
            },
            "stale": self.stale,
            "durability": self.durable.status() if self.durable else None,
            "deliveries": store.deliveries,
            "mailboxes": {
                "materialized": store.mailbox_count,
                "users": len(store.users),
                "entries": store.total_entries,
                "seen": store.total_seen,
                "evicted_capacity": store.evicted_capacity,
                "evicted_expired": store.evicted_expired,
                "approx_bytes": store.approx_bytes(),
            },
            "reads": {
                "count": self.reads,
                "entries_served": self.entries_served,
                "entries_filtered": self.entries_filtered,
                "impressions": store.impressions,
            },
            "backlog_delay": self.backlog_delay(),
        }

    def serve(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_deadline: float | None = None,
    ):
        """Start the HTTP front end (metrics + feed routes) on a daemon
        thread; returns the running :class:`~repro.feed.http.FeedServer`."""
        from .http import FeedServer

        self.bind_metrics()
        server = FeedServer(
            self, host=host, port=port, request_deadline=request_deadline
        )
        server.start()
        return server

    def flush(self) -> None:
        """Force a final snapshot + WAL fsync (the SIGTERM path).

        Unlike the rolling snapshots, a failure here *raises* — shutdown
        must not report a durable state it could not write.
        """
        if self.durable is not None:
            with self._write_lock:
                self.durable.snapshot(self, must_succeed=True)

    def close(self) -> None:
        """Flush durable state, then close the wrapped engine (worker
        pools, spill files). A failed final flush propagates — callers
        (the CLI's SIGTERM handler) exit nonzero on it."""
        try:
            if self.durable is not None:
                with self._write_lock:
                    try:
                        self.flush()
                    finally:
                        self.durable.close()
        finally:
            close = getattr(self.service.engine, "close", None)
            if callable(close):
                close()
