"""End-to-end feed serving: fanout-on-write mailboxes + paginated reads.

The paper's engines decide *who receives which post*; this package turns
that decision into a servable product surface. The write path runs every
arriving post through a multi-user diversification engine and fans the
receiver set out into bounded per-user :class:`Mailbox` rings; the read
path serves stable cursor pages from those mailboxes, filtered by
per-user impression state. :class:`FeedServer` exposes both over the same
threaded HTTP endpoint that already serves metrics and health.

With a :class:`DurabilityConfig` the deployment is crash-safe: every
mutation is written ahead to a CRC-framed, fsync'd log
(:mod:`repro.feed.wal`), rolling snapshots bound replay
(:mod:`repro.feed.durable`), ingestion is exactly-once under client
retries (``idempotency_key``), and ``FeedService.recover()`` rebuilds the
mailboxes byte-identical after a kill at any instant.

Typical wiring (the ``repro serve`` CLI does exactly this)::

    engine = make_multiuser("s_unibin", thresholds, graph, subs)
    service = DiversificationService(engine, overload=..., governor=...)
    feed = FeedService(
        service,
        mailboxes=MailboxConfig(capacity=512),
        durability=DurabilityConfig(wal_dir="var/feed"),
    )
    feed.recover()  # replay snapshot + WAL tail after a crash
    with feed.serve(port=8080) as server:
        ...
"""

from .durable import (
    DurabilityConfig,
    DurableFeedLog,
    RecoveryReport,
    SnapshotStore,
)
from .mailbox import FeedEntry, FeedPage, Mailbox, MailboxConfig, MailboxStore
from .service import FeedService
from .http import FeedServer
from .wal import WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "DurableFeedLog",
    "FeedEntry",
    "FeedPage",
    "FeedServer",
    "FeedService",
    "Mailbox",
    "MailboxConfig",
    "MailboxStore",
    "RecoveryReport",
    "SnapshotStore",
    "WriteAheadLog",
]
