"""The feed write-ahead log: CRC-framed, fsync'd, segment-rotated.

Every state mutation of the serving layer — an accepted post's fanout, an
impression batch, a window expiry sweep — is appended here *before* it is
applied to the :class:`~repro.feed.mailbox.MailboxStore`, so a crash at
any instant can be replayed back to the exact pre-crash state
(:mod:`repro.feed.durable` owns snapshots and recovery; this module owns
the log itself).

On-disk layout: one directory of numbered segment files
(``wal-000001.log``, …). A segment is a sequence of frames, each
``<u64 length><u32 crc32><payload>`` (the same header as the CRC-framed
checkpoints in :mod:`repro.storage.framing`); payloads are sorted-key
JSON, so a WAL is greppable with ``strings`` during an incident. A torn
tail — the partial frame a crash mid-write leaves — is detected by the
length/CRC check, reported, and truncated on reopen; corruption *before*
the tail means the file was damaged at rest and raises
:class:`~repro.errors.CheckpointError` rather than replaying a hole.

Durability is tiered by ``fsync`` policy:

* ``"always"`` — fsync after every append: an acknowledged write survives
  power loss. The strictest (and slowest) setting.
* ``"interval"`` — group commit: fsync every ``fsync_interval`` appends
  and at every snapshot/rotate/close. Survives process crashes and kills
  outright (the page cache persists); at most one interval of
  acknowledged records is exposed to a whole-machine power failure.
  The default, matching the <15% overhead budget of
  ``benchmarks/bench_feed_durability.py``.
* ``"never"`` — flush to the OS on every append but never force the
  platter; for tests and throwaway replays.

Record shapes (field ``t`` discriminates):

* ``{"t": "post", "post": {...}, "recv": [n, sum], "seq": N,
  "idem": key|None}`` — one processed post. ``recv`` is the
  :func:`~repro.feed.durable.receivers_digest` of the engine's receiver
  verdict (the set may be empty; the store assigns a sequence number
  either way) — replay re-derives the set and cross-checks the digest.
* ``{"t": "impressions", "user": U, "seqs": [...]}``
* ``{"t": "expire", "now": T}`` — a window-expiry sweep at stream time T
  (explicit, so replay never has to re-derive the cadence).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from ..errors import CheckpointError, ConfigurationError
from ..storage.framing import FRAME_HEADER

__all__ = [
    "FSYNC_POLICIES",
    "SEGMENT_PREFIX",
    "WriteAheadLog",
    "decode_frames",
    "encode_record",
    "segment_path",
]

#: Accepted ``fsync`` policies (see module docstring).
FSYNC_POLICIES = ("always", "interval", "never")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


def segment_path(directory: str | Path, index: int) -> Path:
    return Path(directory) / f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"


def segment_index(path: str | Path) -> int:
    name = Path(path).name
    return int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])


def list_segments(directory: str | Path) -> list[Path]:
    """Segment files in ``directory``, ascending by index."""
    directory = Path(directory)
    found = [
        p
        for p in directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
        if p.is_file()
    ]
    return sorted(found, key=segment_index)


def encode_record(record: dict) -> bytes:
    """One CRC-framed WAL frame for ``record`` (sorted-key JSON payload)."""
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(raw: bytes, *, source: str = "<wal>") -> tuple[list[dict], int]:
    """Decode a segment's bytes into ``(records, torn_bytes)``.

    Stops at the first frame that does not check out; the remaining bytes
    are the torn tail a crash mid-append leaves. A frame that *parses*
    (length fits, CRC matches) but is not a JSON object means damage at
    rest, not a torn write — that raises :class:`CheckpointError`.
    """
    records: list[dict] = []
    offset = 0
    size = len(raw)
    header = FRAME_HEADER.size
    while offset + header <= size:
        length, crc = FRAME_HEADER.unpack_from(raw, offset)
        start = offset + header
        end = start + length
        if end > size:
            break  # torn tail: payload cut short by the crash
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn tail: partial overwrite of the last frame
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{source}: frame at byte {offset} passes its CRC but is "
                f"not JSON ({exc}) — damaged at rest, refusing to replay"
            ) from exc
        if not isinstance(record, dict) or "t" not in record:
            raise CheckpointError(
                f"{source}: frame at byte {offset} is not a WAL record "
                f"(got {record!r}) — damaged at rest, refusing to replay"
            )
        records.append(record)
        offset = end
    return records, size - offset


class WriteAheadLog:
    """Append-only, segment-rotated record log for one feed deployment.

    Not thread-safe by itself: the feed service serializes its write path
    (one lock covers engine decision, WAL append and mailbox apply), and
    the WAL lives entirely inside that critical section.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval: int = 64,
        fault_plan=None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval < 1:
            raise ConfigurationError(
                f"fsync_interval must be >= 1, got {fsync_interval}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.fault_plan = fault_plan
        self._fh = None
        self._segment = 0
        #: records in the *current* segment
        self.segment_records = 0
        self._unsynced = 0
        # -- exact counters (exported as repro_feed_wal_*) ------------------
        self.records_total = 0
        self.records_by_type: dict[str, int] = {}
        self.bytes_total = 0
        self.fsyncs_total = 0
        self.rotations_total = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def segment(self) -> int:
        """Index of the segment currently appended to (0 before open)."""
        return self._segment

    def open_segment(
        self, index: int, *, start_records: int = 0, truncate_torn: bool = False
    ) -> int:
        """Start appending to segment ``index``.

        A fresh segment is created empty; an existing one is opened for
        append with ``start_records`` already inside it. With
        ``truncate_torn`` the file is first scanned and any torn tail cut
        off — the reopen-after-crash path. Returns the torn bytes removed.
        """
        self.close_segment()
        path = segment_path(self.directory, index)
        torn = 0
        if truncate_torn and path.exists():
            raw = path.read_bytes()
            records, torn = decode_frames(raw, source=str(path))
            if torn:
                with open(path, "r+b") as fh:
                    fh.truncate(len(raw) - torn)
                    fh.flush()
                    os.fsync(fh.fileno())
            start_records = len(records)
        self._fh = open(path, "ab")
        self._segment = index
        self.segment_records = start_records
        self._unsynced = 0
        return torn

    def close_segment(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        self.close_segment()

    def rotate(self) -> int:
        """Fsync + close the current segment and open the next; returns
        the new segment index."""
        nxt = self._segment + 1
        self.open_segment(nxt)
        self.rotations_total += 1
        return nxt

    def prune_segments(self, keep_from: int) -> list[Path]:
        """Unlink segments with index < ``keep_from`` (WAL truncation
        after a snapshot); returns the removed paths."""
        removed = []
        for path in list_segments(self.directory):
            if segment_index(path) < keep_from:
                path.unlink()
                removed.append(path)
        return removed

    def segments_on_disk(self) -> int:
        return len(list_segments(self.directory))

    # -- appends -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Frame ``record`` and append it to the current segment, fsyncing
        per policy. The record is on its way to disk when this returns —
        apply the mutation to in-memory state only after."""
        if self._fh is None:
            self.open_segment(self._segment if self._segment else 1)
        frame = encode_record(record)
        plan = self.fault_plan
        if plan is None or not plan.on_append(frame, self._fh):
            self._fh.write(frame)
        self.segment_records += 1
        self.records_total += 1
        kind = str(record.get("t"))
        self.records_by_type[kind] = self.records_by_type.get(kind, 0) + 1
        self.bytes_total += len(frame)
        self._unsynced += 1
        if self.fsync_policy == "always":
            self.sync()
        elif self.fsync_policy == "interval":
            if self._unsynced >= self.fsync_interval:
                self.sync()
            else:
                self._fh.flush()
        else:
            self._fh.flush()

    def sync(self) -> None:
        """Flush and (policy permitting) fsync the current segment."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync_policy != "never":
            if self.fault_plan is not None:
                self.fault_plan.on_fsync()
            os.fsync(self._fh.fileno())
            self.fsyncs_total += 1
        self._unsynced = 0

    # -- reads (recovery) --------------------------------------------------

    def read_segment(self, index: int) -> tuple[list[dict], int]:
        """All intact records of segment ``index`` plus its torn-tail
        byte count (0 for a cleanly closed segment)."""
        path = segment_path(self.directory, index)
        if not path.exists():
            return [], 0
        return decode_frames(path.read_bytes(), source=str(path))

    def snapshot_counters(self) -> dict[str, object]:
        """JSON-able counter block (persisted inside snapshots so the
        ``repro_feed_wal_*`` families survive restarts)."""
        return {
            "records_total": self.records_total,
            "records_by_type": dict(self.records_by_type),
            "bytes_total": self.bytes_total,
            "fsyncs_total": self.fsyncs_total,
            "rotations_total": self.rotations_total,
        }

    def load_counters(self, counters: dict[str, object]) -> None:
        self.records_total = int(counters.get("records_total", 0))
        self.records_by_type = {
            str(k): int(v)
            for k, v in dict(counters.get("records_by_type", {})).items()
        }
        self.bytes_total = int(counters.get("bytes_total", 0))
        self.fsyncs_total = int(counters.get("fsyncs_total", 0))
        self.rotations_total = int(counters.get("rotations_total", 0))
