"""Per-user mailboxes: the materialized feeds behind fanout-on-write.

The diversification engines answer *who should receive this post*; this
module stores the answer so reads are cheap. Every accepted post is fanned
out into one bounded :class:`Mailbox` per receiver — a ring of
:class:`FeedEntry` stubs ordered by a store-global sequence number — and a
``GET /feed`` read is then a pure mailbox scan: no engine work, no graph
walk, no re-ranking.

Bounding is two-dimensional, mirroring the engines' own windows:

* **capacity** — each mailbox keeps at most ``capacity`` entries; the
  oldest fall off the left (a reader that far behind has lost them, which
  is the classic feed contract);
* **window** — entries older than ``window`` in *stream time* expire,
  exactly like the λt window of the engines, so a mailbox never serves
  posts the diversifier itself would consider stale.

Pagination is cursor-based and stable: a cursor is "the next page serves
entries with sequence strictly below N". Sequence numbers are assigned
once per post at fanout and never reused, so concurrent ingestion only
*prepends* — a reader paging through their feed sees a consistent
snapshot no matter how many posts land mid-pagination.

The impression filter is per-user server-side state: clients POST the
sequence numbers they have rendered, and subsequent pages skip them — a
refresh never re-serves what the user has already seen.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass
from itertools import count
from threading import RLock

from ..core.post import Post
from ..errors import ConfigurationError, UnknownUserError
from ..storage.accounting import estimate_mailbox_bytes


@dataclass(frozen=True, slots=True)
class FeedEntry:
    """One delivered post in a mailbox (a stub, not the post payload)."""

    seq: int
    post_id: int
    author: int
    timestamp: float

    def to_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "post_id": self.post_id,
            "author": self.author,
            "timestamp": self.timestamp,
        }


@dataclass(frozen=True)
class MailboxConfig:
    """Bounds for every mailbox in a store.

    Attributes:
        capacity: max entries per mailbox (oldest evicted past it).
        window: stream-time seconds an entry stays servable; ``inf``
            disables expiry (capacity still bounds memory).
    """

    capacity: int = 1024
    window: float = math.inf

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"mailbox capacity must be >= 1, got {self.capacity}"
            )
        if not self.window > 0:
            raise ConfigurationError(
                f"mailbox window must be > 0 (or inf), got {self.window}"
            )


@dataclass(frozen=True, slots=True)
class FeedPage:
    """One page of a mailbox read."""

    entries: tuple[FeedEntry, ...]
    next_cursor: int | None
    filtered: int

    def to_dict(self) -> dict[str, object]:
        return {
            "entries": [entry.to_dict() for entry in self.entries],
            "next_cursor": self.next_cursor,
            "filtered": self.filtered,
        }


class Mailbox:
    """One user's bounded feed: entries ascending by seq, plus the seen set."""

    __slots__ = ("entries", "seen", "evicted_capacity", "evicted_expired")

    def __init__(self) -> None:
        self.entries: deque[FeedEntry] = deque()
        self.seen: set[int] = set()
        self.evicted_capacity = 0
        self.evicted_expired = 0

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, entry: FeedEntry, capacity: int) -> tuple[int, int]:
        """Deliver ``entry``; returns ``(entries_evicted, seen_pruned)``."""
        self.entries.append(entry)
        evicted = pruned = 0
        while len(self.entries) > capacity:
            old = self.entries.popleft()
            evicted += 1
            if old.seq in self.seen:
                self.seen.discard(old.seq)
                pruned += 1
        self.evicted_capacity += evicted
        return evicted, pruned

    def expire(self, now: float, window: float) -> tuple[int, int]:
        """Drop entries older than ``now - window`` (stream time)."""
        cutoff = now - window
        evicted = pruned = 0
        entries = self.entries
        while entries and entries[0].timestamp < cutoff:
            old = entries.popleft()
            evicted += 1
            if old.seq in self.seen:
                self.seen.discard(old.seq)
                pruned += 1
        self.evicted_expired += evicted
        return evicted, pruned

    def page(self, cursor: int | None, limit: int) -> FeedPage:
        """Serve up to ``limit`` unseen entries newest-first below ``cursor``.

        ``next_cursor`` is the seq of the last entry *scanned* (served or
        filtered); pass it back to continue, ``None`` means exhausted.
        """
        served: list[FeedEntry] = []
        filtered = 0
        scanned_to: int | None = None
        exhausted = True
        for entry in reversed(self.entries):
            if cursor is not None and entry.seq >= cursor:
                continue
            if len(served) >= limit:
                exhausted = False
                break
            scanned_to = entry.seq
            if entry.seq in self.seen:
                filtered += 1
            else:
                served.append(entry)
        next_cursor = scanned_to if not exhausted else None
        return FeedPage(tuple(served), next_cursor, filtered)

    def record_impressions(self, seqs: Iterable[int]) -> tuple[int, int]:
        """Mark live seqs as seen; returns ``(recorded, ignored)``.

        Seqs not currently in the mailbox (already evicted, or never
        delivered here) are ignored — the seen set only ever holds live
        entries, so it is bounded by ``capacity`` too.
        """
        live = {entry.seq for entry in self.entries}
        recorded = ignored = 0
        for seq in seqs:
            if seq in live and seq not in self.seen:
                self.seen.add(seq)
                recorded += 1
            elif seq not in live:
                ignored += 1
        return recorded, ignored

    def state_dict(self) -> dict[str, object]:
        """JSON-able snapshot of this mailbox (entries in seq order)."""
        return {
            "entries": [
                [e.seq, e.post_id, e.author, e.timestamp] for e in self.entries
            ],
            "seen": sorted(self.seen),
            "evicted_capacity": self.evicted_capacity,
            "evicted_expired": self.evicted_expired,
        }

    @classmethod
    def from_state(cls, state: dict[str, object]) -> "Mailbox":
        box = cls()
        for seq, post_id, author, timestamp in state["entries"]:
            box.entries.append(
                FeedEntry(int(seq), int(post_id), int(author), float(timestamp))
            )
        box.seen = {int(s) for s in state["seen"]}
        box.evicted_capacity = int(state.get("evicted_capacity", 0))
        box.evicted_expired = int(state.get("evicted_expired", 0))
        return box


class MailboxStore:
    """All mailboxes of a feed deployment, behind one lock.

    Mailboxes materialize lazily on first delivery or read — a store over
    10⁵ subscribers costs only its user set until posts start flowing.
    Entry/seen/box counts are tracked incrementally so
    :meth:`approx_bytes` (the governor's ``mailbox`` family) is O(1).

    Thread-safe: the HTTP front end serves reads from the
    ``ThreadingHTTPServer`` pool while the write path fans out.
    """

    def __init__(self, users: Iterable[int], config: MailboxConfig | None = None):
        self.config = config or MailboxConfig()
        self._users = frozenset(users)
        if not self._users:
            raise ConfigurationError("a MailboxStore needs at least one user")
        self._boxes: dict[int, Mailbox] = {}
        self._lock = RLock()
        self._seq = count(1)
        self._entries = 0
        self._seen = 0
        self.deliveries = 0
        self.evicted_capacity = 0
        self.evicted_expired = 0
        self.impressions = 0

    @property
    def users(self) -> frozenset[int]:
        return self._users

    def __contains__(self, user: int) -> bool:
        return user in self._users

    def _box(self, user: int) -> Mailbox:
        if user not in self._users:
            raise UnknownUserError(f"user {user} has no mailbox (not subscribed)")
        box = self._boxes.get(user)
        if box is None:
            box = self._boxes[user] = Mailbox()
        return box

    def peek_next_seq(self) -> int:
        """The sequence number the next :meth:`fanout` will assign (the
        WAL records it *before* the fanout applies)."""
        with self._lock:
            nxt = next(self._seq)
            self._seq = count(nxt)  # peeking consumed one; re-arm
            return nxt

    def fanout(self, post: Post, receivers: Iterable[int]) -> tuple[int, int]:
        """Deliver ``post`` to every receiver mailbox under one sequence
        number; returns ``(seq, deliveries)``."""
        with self._lock:
            seq = next(self._seq)
            entry = FeedEntry(seq, post.post_id, post.author, post.timestamp)
            capacity = self.config.capacity
            delivered = 0
            for user in receivers:
                evicted, pruned = self._box(user).append(entry, capacity)
                delivered += 1
                self._entries += 1 - evicted
                self._seen -= pruned
                self.evicted_capacity += evicted
            self.deliveries += delivered
            return seq, delivered

    def expire(self, now: float) -> int:
        """Expire window-stale entries across all materialized mailboxes
        (stream time ``now``); returns how many were dropped."""
        if math.isinf(self.config.window):
            return 0
        with self._lock:
            dropped = 0
            for box in self._boxes.values():
                evicted, pruned = box.expire(now, self.config.window)
                dropped += evicted
                self._entries -= evicted
                self._seen -= pruned
            self.evicted_expired += dropped
            return dropped

    def read(self, user: int, cursor: int | None, limit: int) -> FeedPage:
        """One page of ``user``'s feed (see :meth:`Mailbox.page`)."""
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        if cursor is not None and cursor < 1:
            raise ConfigurationError(f"cursor must be >= 1, got {cursor}")
        with self._lock:
            return self._box(user).page(cursor, limit)

    def read_all(self, user: int, *, page_size: int = 64) -> list[FeedEntry]:
        """Page through ``user``'s whole feed (test/differential helper)."""
        entries: list[FeedEntry] = []
        cursor: int | None = None
        while True:
            page = self.read(user, cursor, page_size)
            entries.extend(page.entries)
            if page.next_cursor is None:
                return entries
            cursor = page.next_cursor

    def record_impressions(self, user: int, seqs: Iterable[int]) -> tuple[int, int]:
        """Mark ``seqs`` seen for ``user``; returns ``(recorded, ignored)``."""
        with self._lock:
            recorded, ignored = self._box(user).record_impressions(seqs)
            self._seen += recorded
            self.impressions += recorded
            return recorded, ignored

    # -- accounting --------------------------------------------------------

    @property
    def mailbox_count(self) -> int:
        """Materialized (non-lazy) mailboxes."""
        return len(self._boxes)

    @property
    def total_entries(self) -> int:
        """Live entries across all mailboxes (total feed depth)."""
        return self._entries

    @property
    def total_seen(self) -> int:
        """Live impression records across all mailboxes."""
        return self._seen

    def approx_bytes(self) -> int:
        """Accounted bytes for the governor's ``mailbox`` family."""
        return estimate_mailbox_bytes(len(self._boxes), self._entries, self._seen)

    def depth_of(self, user: int) -> int:
        with self._lock:
            box = self._boxes.get(user)
            return len(box) if box is not None else 0

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """JSON-able snapshot of the whole store, including the next
        sequence number — :meth:`load_state` restores it byte-identically
        (the durability differential harness compares exactly this)."""
        with self._lock:
            next_seq = next(self._seq)
            self._seq = count(next_seq)  # peeking consumed one; re-arm
            return {
                "next_seq": next_seq,
                "boxes": {
                    str(user): box.state_dict()
                    for user, box in sorted(self._boxes.items())
                },
                "deliveries": self.deliveries,
                "evicted_capacity": self.evicted_capacity,
                "evicted_expired": self.evicted_expired,
                "impressions": self.impressions,
            }

    def load_state(self, state: dict[str, object]) -> None:
        """Replace all mailbox contents with ``state`` (from
        :meth:`state_dict`). The user set and config are *not* part of the
        state — they come from the deployment, and a snapshot naming a
        user outside it is rejected."""
        with self._lock:
            boxes: dict[int, Mailbox] = {}
            entries = seen = 0
            for user_key, box_state in state["boxes"].items():
                user = int(user_key)
                if user not in self._users:
                    raise UnknownUserError(
                        f"snapshot names user {user}, who is not subscribed "
                        "in this deployment"
                    )
                box = Mailbox.from_state(box_state)
                boxes[user] = box
                entries += len(box.entries)
                seen += len(box.seen)
            self._boxes = boxes
            self._entries = entries
            self._seen = seen
            self._seq = count(int(state["next_seq"]))
            self.deliveries = int(state.get("deliveries", 0))
            self.evicted_capacity = int(state.get("evicted_capacity", 0))
            self.evicted_expired = int(state.get("evicted_expired", 0))
            self.impressions = int(state.get("impressions", 0))
