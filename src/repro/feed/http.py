"""HTTP front end for the feed service.

:class:`FeedServer` extends the metrics endpoint's route table
(:class:`~repro.service.MetricsServer`) with the feed API, so one port
serves ingestion, reads, impressions, Prometheus scrapes and health:

* ``POST /posts`` — ingest. A JSON object is one post (strict: a shed
  answers ``429`` with ``Retry-After``); a JSON array is a bulk replay
  (sheds are counted in the summary, not errored — a recorded stream has
  no client to back off). An ``idempotency_key`` field makes the request
  retryable exactly-once: a durable feed answers a retried key with the
  original verdict (``"deduplicated": true``) instead of fanning out
  twice.
* ``GET /feed?user=&cursor=&limit=`` — one impression-filtered page,
  newest first; ``next_cursor`` continues, ``null`` means exhausted.
  While crash recovery replays the WAL the page carries
  ``"stale": true`` — served from the restored-so-far state.
* ``POST /impressions`` — ``{"user": u, "seqs": [...]}`` marks rendered
  entries seen.
* ``GET /feed/stats`` — the service's structured summary.
* plus everything the metrics server already routes (``/metrics``,
  ``/metrics.json``, ``/healthz``, ``/healthz.json``) — ``/healthz``
  reports the wrapped engine's degradations (quarantined shards, memory
  ladder, shedding).

Errors are uniform JSON ``{"error": ...}``: 400 malformed input, 404
unknown user/route, 429 shed ingestion.
"""

from __future__ import annotations

import json

from ..errors import (
    ConfigurationError,
    DatasetError,
    FeedOverloadError,
    UnknownUserError,
)
from ..io import post_from_dict
from ..service.server import MetricsServer, RouteError
from .service import FeedService

#: Page-size ceiling for one ``GET /feed`` request.
MAX_PAGE_LIMIT = 500


def _json_body(body: bytes | None):
    if not body:
        raise RouteError(400, "request body must be JSON")
    try:
        return json.loads(body)
    except json.JSONDecodeError as error:
        raise RouteError(400, f"malformed JSON body: {error}") from error


def _int_param(query: dict, name: str, default=None):
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[-1])
    except ValueError:
        raise RouteError(400, f"query parameter {name!r} must be an integer")


class FeedServer(MetricsServer):
    """The feed API plus the metrics endpoint on one threaded server."""

    thread_name = "repro-feed-server"

    def __init__(
        self,
        feed: FeedService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_deadline: float | None = None,
    ):
        feed.bind_metrics()
        assert feed.registry is not None
        super().__init__(
            feed.registry,
            host=host,
            port=port,
            health=feed._health_probe,
            health_json=feed.degradation_report,
            request_deadline=request_deadline,
        )
        self.feed = feed

    def _deadline_exceeded(self, method: str, path: str, elapsed: float) -> None:
        self.feed.deadlines_exceeded += 1

    def routes(self):
        table = super().routes()
        table[("POST", "/posts")] = self._route_posts
        table[("GET", "/feed")] = self._route_feed
        table[("POST", "/impressions")] = self._route_impressions
        table[("GET", "/feed/stats")] = self._route_stats
        return table

    # -- write path --------------------------------------------------------

    def _route_posts(self, query: dict, body: bytes | None) -> tuple:
        payload = _json_body(body)
        if isinstance(payload, list):
            return self._ingest_bulk(payload)
        return self._ingest_one(payload)

    def _ingest_one(self, record) -> tuple:
        idempotency_key = None
        if isinstance(record, dict) and "idempotency_key" in record:
            record = dict(record)
            idempotency_key = record.pop("idempotency_key")
            if idempotency_key is not None and not isinstance(idempotency_key, str):
                raise RouteError(400, "idempotency_key must be a string")
        try:
            post = post_from_dict(record)
        except DatasetError as error:
            raise RouteError(400, str(error)) from error
        try:
            receivers, deduped = self.feed.ingest_detailed(
                post, idempotency_key=idempotency_key
            )
        except FeedOverloadError as error:
            raise RouteError(
                429,
                str(error),
                headers=(("Retry-After", f"{max(error.retry_after, 0.001):.3f}"),),
            ) from error
        body = json.dumps(
            {
                "accepted": 1,
                "post_id": post.post_id,
                "receivers": sorted(receivers),
                "deliveries": len(receivers),
                "deduplicated": deduped,
            }
        ).encode("utf-8")
        return 200, "application/json", body

    def _ingest_bulk(self, records: list) -> tuple:
        try:
            posts = [post_from_dict(record) for record in records]
        except DatasetError as error:
            raise RouteError(400, str(error)) from error
        summary = self.feed.replay(posts)
        return 200, "application/json", json.dumps(summary).encode("utf-8")

    # -- read path ---------------------------------------------------------

    def _route_feed(self, query: dict, body: bytes | None) -> tuple:
        user = _int_param(query, "user")
        if user is None:
            raise RouteError(400, "query parameter 'user' is required")
        cursor = _int_param(query, "cursor")
        limit = _int_param(query, "limit", 20)
        if not 1 <= limit <= MAX_PAGE_LIMIT:
            raise RouteError(
                400, f"limit must be in [1, {MAX_PAGE_LIMIT}], got {limit}"
            )
        try:
            page = self.feed.read(user, cursor, limit)
        except UnknownUserError as error:
            raise RouteError(404, str(error)) from error
        except ConfigurationError as error:
            raise RouteError(400, str(error)) from error
        record = {"user": user, **page.to_dict(), "stale": self.feed.stale}
        return 200, "application/json", json.dumps(record).encode("utf-8")

    def _route_impressions(self, query: dict, body: bytes | None) -> tuple:
        payload = _json_body(body)
        if not isinstance(payload, dict):
            raise RouteError(400, "impression body must be a JSON object")
        try:
            user = int(payload["user"])
            seqs = [int(seq) for seq in payload["seqs"]]
        except (KeyError, TypeError, ValueError) as error:
            raise RouteError(
                400, 'impression body needs {"user": int, "seqs": [int, ...]}'
            ) from error
        try:
            recorded, ignored = self.feed.record_impressions(user, seqs)
        except UnknownUserError as error:
            raise RouteError(404, str(error)) from error
        body_bytes = json.dumps(
            {"user": user, "recorded": recorded, "ignored": ignored}
        ).encode("utf-8")
        return 200, "application/json", body_bytes

    def _route_stats(self, query: dict, body: bytes | None) -> tuple:
        return (
            200,
            "application/json",
            json.dumps(self.feed.stats(), sort_keys=True).encode("utf-8"),
        )
