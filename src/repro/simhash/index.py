"""Pigeonhole SimHash index in the spirit of Manku et al. (WWW'07).

The paper (§3, end) notes that the classic permuted-table SimHash index is
only practical for *small* Hamming thresholds — the number of tables grows
quickly with λc, and at the λc = 18 the tweet study calls for, the index
degenerates — which is why the SPSD algorithms fall back to linear scans
pruned by the time and author dimensions. We implement the index anyway, as
an ablation: it lets the benchmarks *measure* the regime where indexing wins
(λc ≤ ~6) and where it collapses (large λc), substantiating the paper's
design decision.

Construction: to find all stored fingerprints within Hamming distance ``k``
of a query, split the 64 bits into ``k + 1`` contiguous blocks. Two
fingerprints within distance ``k`` must agree exactly on at least one block
(pigeonhole), so one hash table per block keyed by that block's bits finds a
candidate superset, verified with a full Hamming check.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterator

import numpy as np

from .hamming import hamming, popcount64

#: Bucket size from which :meth:`SimHashIndex.iter_within` switches from
#: per-entry ``int.bit_count`` to one batched XOR + SWAR popcount over the
#: whole bucket. Below this the ~10µs fixed numpy call overhead outweighs
#: the win — measured breakeven against the scalar loop sits near 90
#: entries, so 64 leaves margin for slower per-entry consumers.
VECTOR_BUCKET_MIN = 64


def block_bounds(total_bits: int, blocks: int) -> list[tuple[int, int]]:
    """Split ``total_bits`` into ``blocks`` contiguous (offset, width) spans,
    widths differing by at most one bit.

    >>> block_bounds(64, 4)
    [(0, 16), (16, 16), (32, 16), (48, 16)]
    """
    if not 1 <= blocks <= total_bits:
        raise ValueError(f"need 1 <= blocks <= {total_bits}, got {blocks}")
    base, extra = divmod(total_bits, blocks)
    bounds = []
    offset = 0
    for i in range(blocks):
        width = base + (1 if i < extra else 0)
        bounds.append((offset, width))
        offset += width
    return bounds


class SimHashIndex:
    """Near-neighbour index over 64-bit fingerprints for a fixed radius.

    Items are (fingerprint, key) pairs; ``key`` is any hashable identifier
    (e.g. a post id) so entries can be removed when they fall out of the
    time window. Duplicate fingerprints are fine.
    """

    def __init__(self, radius: int, *, total_bits: int = 64):
        if radius < 0 or radius >= total_bits:
            raise ValueError(f"need 0 <= radius < {total_bits}, got {radius}")
        self.radius = radius
        self.total_bits = total_bits
        self._bounds = block_bounds(total_bits, radius + 1)
        self._masks = [((1 << width) - 1) << offset for offset, width in self._bounds]
        # One table per block: block-bits -> {key -> fingerprint}.
        self._tables: list[dict[int, dict[Hashable, int]]] = [
            defaultdict(dict) for _ in self._bounds
        ]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def table_count(self) -> int:
        """Number of hash tables, i.e. radius + 1."""
        return len(self._tables)

    def _block_keys(self, fingerprint: int) -> Iterator[tuple[int, int]]:
        for table_idx, mask in enumerate(self._masks):
            yield table_idx, fingerprint & mask

    def add(self, fingerprint: int, key: Hashable) -> None:
        """Insert ``fingerprint`` under ``key`` (replacing a same-key entry)."""
        for table_idx, block in self._block_keys(fingerprint):
            self._tables[table_idx][block][key] = fingerprint
        self._size += 1

    def remove(self, fingerprint: int, key: Hashable) -> None:
        """Remove the entry added under (fingerprint, key); no-op if absent."""
        removed = False
        for table_idx, block in self._block_keys(fingerprint):
            bucket = self._tables[table_idx].get(block)
            if bucket is not None and bucket.pop(key, None) is not None:
                removed = True
                if not bucket:
                    del self._tables[table_idx][block]
        if removed:
            self._size -= 1

    def iter_within(self, fingerprint: int) -> Iterator[tuple[Hashable, int]]:
        """Lazily yield (key, distance) pairs within ``radius``.

        Same candidates, same order and same deduplication as
        :meth:`query`, but produced one at a time — a consumer that stops
        at its first acceptable match never pays for the rest of the
        candidate set (the :class:`~repro.core.IndexedUniBin` hot path).

        Buckets of at least :data:`VECTOR_BUCKET_MIN` entries are
        distance-filtered with one vectorized popcount instead of a
        Python loop; keys, order and the seen-set dedup (every inspected
        key is marked seen, in or out of radius) are identical either
        way. Fingerprints that do not fit ``uint64`` stay on the scalar
        path.
        """
        seen: set[Hashable] = set()
        radius = self.radius
        query = None
        if self.total_bits <= 64 and 0 <= fingerprint < 1 << 64:
            query = np.uint64(fingerprint)
        for table_idx, block in self._block_keys(fingerprint):
            bucket = self._tables[table_idx].get(block)
            if not bucket:
                continue
            if query is not None and len(bucket) >= VECTOR_BUCKET_MIN:
                keys = [key for key in bucket if key not in seen]
                if not keys:
                    continue
                seen.update(keys)
                try:
                    candidates = np.fromiter(
                        (bucket[key] for key in keys),
                        dtype=np.uint64,
                        count=len(keys),
                    )
                except (OverflowError, ValueError):
                    # A stored fingerprint outside uint64: filter this
                    # bucket entry-by-entry instead.
                    for key in keys:
                        distance = hamming(fingerprint, bucket[key])
                        if distance <= radius:
                            yield key, distance
                    continue
                distances = popcount64(candidates ^ query).tolist()
                for key, distance in zip(keys, distances):
                    if distance <= radius:
                        yield key, distance
                continue
            for key, candidate in bucket.items():
                if key in seen:
                    continue
                seen.add(key)
                distance = hamming(fingerprint, candidate)
                if distance <= radius:
                    yield key, distance

    def query(self, fingerprint: int) -> list[tuple[Hashable, int]]:
        """All (key, distance) pairs within ``radius`` of ``fingerprint``."""
        return list(self.iter_within(fingerprint))

    def first_match(self, fingerprint: int, accept=None) -> Hashable | None:
        """Key of the first stored fingerprint within ``radius``, or None.

        ``accept`` optionally filters candidates: a callable receiving each
        in-radius key (in :meth:`query` order) that returns True to accept
        it. The scan short-circuits at the first accepted key, so callers
        verifying extra dimensions per candidate (time, author) stop as
        soon as one passes instead of materializing every candidate.
        """
        for key, _distance in self.iter_within(fingerprint):
            if accept is None or accept(key):
                return key
        return None

    def any_within(self, fingerprint: int) -> bool:
        """True iff any stored fingerprint is within ``radius``."""
        for table_idx, block in self._block_keys(fingerprint):
            bucket = self._tables[table_idx].get(block)
            if not bucket:
                continue
            for candidate in bucket.values():
                if hamming(fingerprint, candidate) <= self.radius:
                    return True
        return False

    def candidate_count(self, fingerprint: int) -> int:
        """Number of candidate entries inspected for this query — the cost
        metric the ablation benchmark reports (distinct keys touched)."""
        seen: set[Hashable] = set()
        for table_idx, block in self._block_keys(fingerprint):
            bucket = self._tables[table_idx].get(block)
            if bucket:
                seen.update(bucket.keys())
        return len(seen)
