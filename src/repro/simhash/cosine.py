"""Cosine-similarity content baseline (paper §3, effectiveness comparison).

The paper compares SimHash against plain TF cosine similarity for detecting
near-duplicate tweets and finds the two equally effective (precision/recall
cross at cosine ≈ 0.7, matching SimHash at λc = 18) with SimHash being far
cheaper per comparison. We implement the same baseline both to reproduce
that finding and to serve as the reference measure SimHash is validated
against in tests.
"""

from __future__ import annotations

import math
from collections import Counter

from .normalize import normalize
from .tokenize import feature_counts


class TfVector:
    """Sparse term-frequency vector with a precomputed norm.

    Instances are immutable in practice; build once per text, compare many
    times.
    """

    __slots__ = ("counts", "norm")

    def __init__(self, counts: Counter[str]):
        self.counts = counts
        self.norm = math.sqrt(sum(c * c for c in counts.values()))

    @classmethod
    def from_text(
        cls, text: str, *, normalized: bool = True, shingle_width: int = 1
    ) -> "TfVector":
        """Build a TF vector; by default plain bag-of-words over normalised
        text, matching the paper's cosine baseline."""
        if normalized:
            text = normalize(text)
        return cls(feature_counts(text, shingle_width))

    def cosine(self, other: "TfVector") -> float:
        """Cosine similarity in [0, 1]; empty vectors have similarity 0
        against everything (including other empty vectors)."""
        if self.norm == 0.0 or other.norm == 0.0:
            return 0.0
        small, large = self.counts, other.counts
        if len(small) > len(large):
            small, large = large, small
        dot = sum(c * large[t] for t, c in small.items() if t in large)
        return dot / (self.norm * other.norm)


def cosine_similarity(text_a: str, text_b: str, *, normalized: bool = True) -> float:
    """One-shot cosine similarity of two texts.

    >>> cosine_similarity("big news today", "big news today")
    1.0
    """
    return TfVector.from_text(text_a, normalized=normalized).cosine(
        TfVector.from_text(text_b, normalized=normalized)
    )


def cosine_distance(text_a: str, text_b: str, *, normalized: bool = True) -> float:
    """``1 - cosine_similarity`` as a distance in [0, 1]."""
    return 1.0 - cosine_similarity(text_a, text_b, normalized=normalized)
