"""Optional text-preprocessing variants for SimHash (paper §3).

Beyond the plain normalisation that became the default, the paper "also
tried other methods of text preprocessing such as expanding shortened URLs
…, varying the weights of user mentions and hashtags (by creating
artificial copies), and expanding abbreviations. However, these methods had
no significant impact to the precision and recall."

This module implements those variants so the claim can be re-measured
(``repro.eval.ablations.ablation_preprocessing``):

* URL canonicalisation — drop the per-tweet short-URL slug (equivalently,
  map every re-shortening of the same link to one token).
* Mention/hashtag re-weighting — multiply the SimHash weight of ``@user``
  and ``#tag`` tokens (weight 0 strips them).
* Abbreviation expansion — rewrite common microblog shorthand
  (``u`` → ``you`` etc.) before fingerprinting.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fingerprint import simhash_from_features
from .normalize import normalize, strip_short_urls
from .tokenize import feature_counts, words

#: Common microblog shorthand, as the paper's abbreviation-expansion trial.
ABBREVIATIONS: dict[str, str] = {
    "u": "you",
    "ur": "your",
    "r": "are",
    "b4": "before",
    "gr8": "great",
    "l8r": "later",
    "thx": "thanks",
    "pls": "please",
    "plz": "please",
    "ppl": "people",
    "msg": "message",
    "btw": "by the way",
    "idk": "i do not know",
    "imo": "in my opinion",
    "omw": "on my way",
    "tmrw": "tomorrow",
    "2day": "today",
    "2nite": "tonight",
    "w/": "with",
    "b/c": "because",
    "govt": "government",
    "intl": "international",
}


@dataclass(frozen=True, slots=True)
class PreprocessOptions:
    """Configuration of one preprocessing variant.

    Attributes:
        normalized: apply the §3 normalisation (the Figure-4 default).
        canonicalize_urls: strip short-URL slugs before fingerprinting
            (the "expand shortened URLs" trial — two re-shortenings of the
            same link stop disagreeing).
        hashtag_weight: multiplier for ``#tag`` token weights (1 = default,
            0 strips hashtags, >1 emphasises them).
        mention_weight: multiplier for ``@user`` token weights.
        expand_abbreviations: rewrite :data:`ABBREVIATIONS` before
            fingerprinting.
        shingle_width: word-shingle width for the feature set.
    """

    normalized: bool = True
    canonicalize_urls: bool = False
    hashtag_weight: float = 1.0
    mention_weight: float = 1.0
    expand_abbreviations: bool = False
    shingle_width: int = 2

    def __post_init__(self) -> None:
        if self.hashtag_weight < 0 or self.mention_weight < 0:
            raise ValueError("token weights must be non-negative")


def expand_abbreviations(text: str) -> str:
    """Replace known shorthand tokens with their expansions.

    Matching is done on lowercase tokens stripped of trailing punctuation,
    so ``Thx!`` expands like ``thx``.

    >>> expand_abbreviations("thx 4 the update pls")
    'thanks 4 the update please'
    """
    out = []
    for token in words(text):
        stripped = token.lower().rstrip(".,!?;:")
        expansion = ABBREVIATIONS.get(stripped)
        if expansion is None:
            out.append(token)
        else:
            out.append(expansion + token[len(stripped):])
    return " ".join(out)


def preprocess_text(text: str, options: PreprocessOptions) -> str:
    """Apply the text-level stages of ``options`` (weights come later)."""
    if options.canonicalize_urls:
        text = strip_short_urls(text)
    if options.expand_abbreviations:
        text = expand_abbreviations(text)
    if options.normalized:
        text = normalize(text)
    return text


def weighted_features(text: str, options: PreprocessOptions) -> dict[str, float]:
    """Feature → weight map with mention/hashtag re-weighting applied.

    Re-weighting runs on the *raw* token stream (normalisation strips the
    ``#``/``@`` sigils), mirroring the paper's "artificial copies" trick,
    then the preprocessed text contributes the base features.
    """
    features: dict[str, float] = dict(
        feature_counts(preprocess_text(text, options), options.shingle_width)
    )
    if options.hashtag_weight != 1.0 or options.mention_weight != 1.0:
        for token in words(text):
            if token.startswith("#"):
                multiplier = options.hashtag_weight
            elif token.startswith("@"):
                multiplier = options.mention_weight
            else:
                continue
            bare = token[1:].lower() if options.normalized else token[1:]
            if not bare:
                continue
            base = features.pop(bare, 1.0)
            weighted = base * multiplier
            if weighted > 0:
                features[bare] = weighted
    return features


def simhash_preprocessed(text: str, options: PreprocessOptions) -> int:
    """64-bit SimHash under a preprocessing variant.

    ``PreprocessOptions()`` reproduces the library default
    (:func:`repro.simhash.simhash` with ``normalized=True``).
    """
    return simhash_from_features(weighted_features(text, options))
