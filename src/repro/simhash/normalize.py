"""Text normalisation for microblog posts (paper §3).

The paper found that SimHash precision/recall on tweets improves after a
light normalisation pass: (a) lowercase everything, (b) collapse runs of
whitespace, and (c) strip non-alphanumeric characters. The paper also tried
expanding shortened URLs, re-weighting mentions/hashtags and expanding
abbreviations and found *no significant impact*, so those are deliberately
not part of the default pipeline (URL expansion is available separately for
the user-study reproduction, where labelling sees the expanded form).
"""

from __future__ import annotations

import re

_NON_ALNUM = re.compile(r"[^0-9a-z\s]+")
_WHITESPACE = re.compile(r"\s+")

# Twitter-style shortened URLs, e.g. http://t.co/9w2JrurhKm — matched so the
# user-study harness can swap in the expanded target before labelling.
SHORT_URL = re.compile(r"https?://t\.co/\w+")


def normalize(text: str) -> str:
    """Apply the paper's normalisation: lowercase, strip punctuation,
    collapse whitespace.

    >>> normalize("Over 300 people MISSING -- ferry sinks!  (Reuters)")
    'over 300 people missing ferry sinks reuters'
    """
    lowered = text.lower()
    stripped = _NON_ALNUM.sub(" ", lowered)
    return _WHITESPACE.sub(" ", stripped).strip()


def expand_short_urls(text: str, url_table: dict[str, str]) -> str:
    """Replace shortened URLs with their expanded targets.

    ``url_table`` maps short URL -> expanded URL; unknown short URLs are kept
    verbatim. This mirrors the paper's user study, which displayed expanded
    URLs to the human labellers.
    """
    return SHORT_URL.sub(lambda m: url_table.get(m.group(0), m.group(0)), text)


def strip_short_urls(text: str) -> str:
    """Remove shortened URLs entirely (ablation helper)."""
    return _WHITESPACE.sub(" ", SHORT_URL.sub(" ", text)).strip()
