"""Vectorised batch SimHash fingerprinting.

Fingerprinting dominates dataset construction (every synthetic post is
hashed once) and any bulk re-indexing job. The scalar
:func:`~repro.simhash.simhash` spends its time in the 64-iteration
per-feature bit loop; this module replaces that with one numpy
matrix–vector product per text over cached per-token ±1 rows.

Bit-exact with the scalar implementation (asserted by the test suite):
same features, same weights, same sign rule.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .fingerprint import EMPTY_FINGERPRINT, FINGERPRINT_BITS
from .hashing import hash_token
from .normalize import normalize
from .tokenize import feature_counts

# token -> int8 row of ±1 per fingerprint bit. Bounded like the token-hash
# memo; at 64 bytes per row the default cap costs at most ~64 MiB.
_ROW_CACHE_LIMIT = 1 << 20
_row_cache: dict[str, np.ndarray] = {}

_BIT_POSITIONS = np.arange(FINGERPRINT_BITS, dtype=np.uint64)
_BIT_VALUES = (np.uint64(1) << _BIT_POSITIONS)


def _token_row(token: str) -> np.ndarray:
    row = _row_cache.get(token)
    if row is None:
        h = np.uint64(hash_token(token))
        bits = ((h >> _BIT_POSITIONS) & np.uint64(1)).astype(np.int8)
        row = (bits * 2 - 1).astype(np.int8)
        if len(_row_cache) < _ROW_CACHE_LIMIT:
            _row_cache[token] = row
    return row


def clear_row_cache() -> None:
    """Drop the per-token row cache."""
    _row_cache.clear()


def simhash_one(text: str, *, normalized: bool = True, shingle_width: int = 2) -> int:
    """Vectorised fingerprint of a single text (bit-exact with
    :func:`repro.simhash.simhash`)."""
    if normalized:
        text = normalize(text)
    counts = feature_counts(text, shingle_width)
    if not counts:
        return EMPTY_FINGERPRINT
    rows = np.stack([_token_row(token) for token in counts])
    weights = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
    acc = weights @ rows
    return int(_BIT_VALUES[acc > 0].sum())


def simhash_batch(
    texts: Iterable[str], *, normalized: bool = True, shingle_width: int = 2
) -> np.ndarray:
    """Fingerprints for many texts, as a uint64 array."""
    return np.fromiter(
        (
            simhash_one(text, normalized=normalized, shingle_width=shingle_width)
            for text in texts
        ),
        dtype=np.uint64,
    )
