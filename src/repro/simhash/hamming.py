"""Hamming distance over 64-bit fingerprints.

This is the hot inner loop of every diversifier: each incoming post's
fingerprint is compared against every candidate in the scanned bins, so the
scalar path must be as cheap as Python allows (a single XOR plus
``int.bit_count``). A vectorised bulk path over numpy arrays is provided for
the distribution studies, which compare hundreds of thousands of pairs.
"""

from __future__ import annotations

import numpy as np


def hamming(a: int, b: int) -> int:
    """Number of differing bits between two 64-bit fingerprints.

    >>> hamming(0b1010, 0b0110)
    2
    >>> hamming(123456789, 123456789)
    0
    """
    return (a ^ b).bit_count()


def popcount64(x: np.ndarray) -> np.ndarray:
    """Per-element bit count of a uint64 array (classic SWAR popcount).

    The shared primitive of every batched Hamming path: the distribution
    studies, the vectorized coverage kernel
    (:mod:`repro.simhash.coverage`) and the pigeonhole index's bucket
    filter all XOR their candidates against a probe and feed the result
    here, so one popcount implementation serves them all.
    """
    x = x.astype(np.uint64, copy=False)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return ((x * h01) >> np.uint64(56)).astype(np.int64)


def hamming_bulk(fingerprints_a: np.ndarray, fingerprints_b: np.ndarray) -> np.ndarray:
    """Element-wise Hamming distances of two equal-length uint64 arrays.

    Uses the classic SWAR popcount so the whole batch stays inside numpy.
    """
    return popcount64(
        fingerprints_a.astype(np.uint64) ^ fingerprints_b.astype(np.uint64)
    )


def within(a: int, b: int, threshold: int) -> bool:
    """True iff the fingerprints differ in at most ``threshold`` bits."""
    return (a ^ b).bit_count() <= threshold
