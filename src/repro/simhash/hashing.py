"""Stable 64-bit token hashing.

SimHash fingerprints must be reproducible across processes and machines, so
we cannot use Python's builtin ``hash`` (randomised by ``PYTHONHASHSEED``).
We use blake2b with an 8-byte digest, which is fast, stdlib-only and has
excellent avalanche behaviour, plus a tiny per-call memo because streams hash
the same (Zipf-distributed) tokens over and over.
"""

from __future__ import annotations

from hashlib import blake2b

MASK64 = (1 << 64) - 1

# Token-hash memo shared by all fingerprinting calls. Vocabulary in a
# microblog stream is small relative to the number of token occurrences, so
# this cache has a very high hit rate; it is capped to keep long-running
# processes bounded.
_MEMO_LIMIT = 1 << 20
_memo: dict[str, int] = {}


def hash_token(token: str) -> int:
    """Return a stable unsigned 64-bit hash of ``token``.

    >>> hash_token("hello") == hash_token("hello")
    True
    >>> 0 <= hash_token("hello") < 2 ** 64
    True
    """
    cached = _memo.get(token)
    if cached is not None:
        return cached
    value = int.from_bytes(
        blake2b(token.encode("utf-8"), digest_size=8).digest(), "big"
    )
    if len(_memo) < _MEMO_LIMIT:
        _memo[token] = value
    return value


def clear_token_cache() -> None:
    """Drop the token-hash memo (useful in memory-sensitive tests)."""
    _memo.clear()


def token_cache_size() -> int:
    """Number of tokens currently memoised."""
    return len(_memo)
