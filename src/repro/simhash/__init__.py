"""Content-distance substrate: SimHash fingerprints for short social posts.

Public surface:

* :func:`simhash` / :func:`simhash_from_features` — 64-bit fingerprints.
* :func:`hamming` / :func:`hamming_bulk` / :func:`within` — bit distances.
* :func:`normalize` — the paper's §3 text normalisation.
* :class:`TfVector`, :func:`cosine_similarity` — the cosine baseline.
* :class:`SimHashIndex` — pigeonhole near-neighbour index (ablation).
* :class:`CoverageKernel` — vectorized newest-first window probe.
"""

from .batch import clear_row_cache, simhash_batch, simhash_one
from .cosine import TfVector, cosine_distance, cosine_similarity
from .coverage import (
    CoverageKernel,
    kernel_enabled,
    set_kernel_enabled,
)
from .fingerprint import (
    EMPTY_FINGERPRINT,
    FINGERPRINT_BITS,
    disable_metrics,
    enable_metrics,
    simhash,
    simhash_from_features,
)
from .hamming import hamming, hamming_bulk, popcount64, within
from .hashing import clear_token_cache, hash_token, token_cache_size
from .index import SimHashIndex, block_bounds
from .normalize import expand_short_urls, normalize, strip_short_urls
from .preprocess import (
    ABBREVIATIONS,
    PreprocessOptions,
    expand_abbreviations,
    preprocess_text,
    simhash_preprocessed,
    weighted_features,
)
from .tokenize import feature_counts, shingles, words

__all__ = [
    "ABBREVIATIONS",
    "CoverageKernel",
    "EMPTY_FINGERPRINT",
    "FINGERPRINT_BITS",
    "PreprocessOptions",
    "SimHashIndex",
    "TfVector",
    "expand_abbreviations",
    "preprocess_text",
    "simhash_preprocessed",
    "weighted_features",
    "block_bounds",
    "clear_row_cache",
    "clear_token_cache",
    "cosine_distance",
    "cosine_similarity",
    "disable_metrics",
    "enable_metrics",
    "expand_short_urls",
    "feature_counts",
    "hamming",
    "hamming_bulk",
    "hash_token",
    "kernel_enabled",
    "normalize",
    "popcount64",
    "set_kernel_enabled",
    "shingles",
    "simhash",
    "simhash_batch",
    "simhash_from_features",
    "simhash_one",
    "strip_short_urls",
    "token_cache_size",
    "within",
    "words",
]
