"""64-bit SimHash fingerprints (Charikar; as used by the paper, §3).

The fingerprint of a text is computed in the classic way: every weighted
feature (word or word shingle) contributes its 64-bit token hash to a vector
of 64 signed accumulators — ``+weight`` where the hash bit is 1, ``-weight``
where it is 0 — and the fingerprint's *i*-th bit is 1 iff accumulator *i* is
positive. Texts sharing most features agree on most bits, so the Hamming
distance of two fingerprints tracks the cosine distance of the texts.

The paper fingerprints both raw and normalised tweet text (its Figures 3 and
4); :func:`simhash` exposes the same switch.
"""

from __future__ import annotations

import time

from .hashing import MASK64, hash_token
from .normalize import normalize
from .tokenize import feature_counts

FINGERPRINT_BITS = 64

#: Module-level instrumentation hook (see :func:`enable_metrics`); ``None``
#: keeps :func:`simhash` on the exact uninstrumented path.
_METRICS = None


def enable_metrics(registry) -> None:
    """Count and time every :func:`simhash` call into ``registry``
    (``repro_simhash_fingerprints_total`` / ``repro_simhash_latency_seconds``).

    Pass ``None`` or a no-op registry to disable again. The hook is
    module-level because fingerprinting is a free function on the ingest
    hot path, not a method of any engine.
    """
    global _METRICS
    if registry is None or getattr(registry, "is_noop", False):
        _METRICS = None
        return
    from ..obs.instruments import SimhashInstruments

    _METRICS = SimhashInstruments(registry)


def disable_metrics() -> None:
    """Detach the fingerprint-path instrumentation."""
    global _METRICS
    _METRICS = None

#: Fingerprint assigned to texts with no features at all (empty string).
#: Two empty texts are trivially near-duplicates; distance to anything else
#: is whatever the bit pattern gives.
EMPTY_FINGERPRINT = 0


def simhash_from_features(weighted_features: dict[str, int] | dict[str, float]) -> int:
    """SimHash of an explicit ``feature -> weight`` mapping.

    Exposed separately so callers with custom feature extraction (e.g. the
    hashtag-reweighting ablation) can reuse the bit-accumulation core.
    """
    if not weighted_features:
        return EMPTY_FINGERPRINT
    acc = [0.0] * FINGERPRINT_BITS
    for feature, weight in weighted_features.items():
        h = hash_token(feature)
        for bit in range(FINGERPRINT_BITS):
            if (h >> bit) & 1:
                acc[bit] += weight
            else:
                acc[bit] -= weight
    fingerprint = 0
    for bit in range(FINGERPRINT_BITS):
        if acc[bit] > 0:
            fingerprint |= 1 << bit
    return fingerprint & MASK64


def simhash(text: str, *, normalized: bool = True, shingle_width: int = 2) -> int:
    """64-bit SimHash fingerprint of ``text``.

    ``normalized=True`` (the library default, matching the paper's final
    configuration from Figure 4) lowercases and strips punctuation first;
    ``normalized=False`` reproduces the raw-text setting of Figure 3.

    >>> simhash("hello world") == simhash("hello world")
    True
    >>> simhash("") == EMPTY_FINGERPRINT
    True
    """
    metrics = _METRICS
    if metrics is None:
        if normalized:
            text = normalize(text)
        return simhash_from_features(feature_counts(text, shingle_width))
    start = time.perf_counter()
    if normalized:
        text = normalize(text)
    fingerprint = simhash_from_features(feature_counts(text, shingle_width))
    metrics.observe(time.perf_counter() - start)
    return fingerprint
