"""Vectorized coverage probing for window scans (the parallel hot path).

UniBin's per-arrival cost is a newest-first scan over every in-window
admitted post, applying the three-dimensional coverage predicate one
candidate at a time in the interpreter. This module replaces that loop
with batch arithmetic: a :class:`CoverageKernel` mirrors the window bin
in columnar numpy arrays (fingerprints as ``uint64``, timestamps as
``float64``, author ids as ``int64``) and answers each probe with a
chunked XOR → SWAR-popcount sweep, newest first, so the content test for
a whole block of candidates costs one vector expression instead of a
block of Python iterations.

Bit-exactness contract (asserted by ``tests/core/test_vector_coverage.py``):

* verdicts are identical to the scalar probe — same greedy decision on
  every post of every stream;
* ``RunStats.comparisons`` is identical — a hit at newest-first position
  ``p`` (1-based) costs ``p`` comparisons, a full miss costs the number
  of candidates scanned, and a governor probe limit truncates the scan
  at exactly ``limit`` candidates, matching the scalar loop's
  ``checked >= limit`` break;
* ``AuthorGraph.are_similar`` is consulted for exactly the candidates
  the scalar loop would consult (content-similar, different author,
  newest-first up to and including the first hit), so graphs with
  side effects or instrumentation observe the same call sequence.

The time dimension needs no mask here: UniBin expires the bin at the
probing post's timestamp *before* scanning, and stream order bounds every
remaining candidate inside ``[t − λt, t]``, so ``time_similar`` is
vacuously true for every candidate the kernel sees.

Fingerprints outside ``[0, 2^64)`` or author ids outside the ``int64``
range cannot be mirrored; the owning engine catches the resulting
``OverflowError`` and falls back to the scalar scan (see
:meth:`repro.core.unibin.UniBin._admit`). A module-level switch
(:func:`set_kernel_enabled`, env ``REPRO_COVERAGE_KERNEL=0``) forces the
scalar path globally — the differential tests run both sides of it.
"""

from __future__ import annotations

import os

import numpy as np

from .hamming import popcount64

__all__ = [
    "CoverageKernel",
    "FIRST_BLOCK",
    "PROBE_BLOCK",
    "VECTOR_MIN_SCAN",
    "kernel_enabled",
    "set_kernel_enabled",
]

#: Largest candidate block per vectorized sweep. Blocks ramp up
#: geometrically from :data:`FIRST_BLOCK` — a hit near the newest end
#: (the common case on duplicate-heavy streams — near-duplicates cluster
#: in time) pays one small popcount, while a deep miss quickly reaches
#: full-width blocks that amortize the numpy call overhead.
PROBE_BLOCK = 256

#: First (newest) block size of the ramp.
FIRST_BLOCK = 32

#: Scans shorter than this are cheaper in the scalar loop: one numpy
#: sweep costs ~10µs of fixed call overhead regardless of width, which a
#: Python loop over a handful of candidates undercuts easily. Engines
#: consult this before probing (see ``UniBin._is_covered``); the kernel
#: itself answers any scan it is asked for.
VECTOR_MIN_SCAN = 64

_MIN_CAPACITY = 64

_enabled = os.environ.get("REPRO_COVERAGE_KERNEL", "1") != "0"


def kernel_enabled() -> bool:
    """True when engines should build a :class:`CoverageKernel` (default)."""
    return _enabled


def set_kernel_enabled(flag: bool) -> bool:
    """Globally enable/disable kernel construction; returns the old value.

    Affects engines constructed *after* the call — existing engines keep
    whatever path they were built with. The differential tests flip this
    to run scalar reference engines next to vectorized ones.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


class CoverageKernel:
    """Columnar mirror of one window bin plus a batched coverage probe.

    The owning engine keeps it in lockstep with its deque: one
    :meth:`append` per admitted post, one :meth:`drop_oldest` per expiry
    batch, one :meth:`rebuild` per checkpoint restore. Live entries
    occupy ``[_start, _end)`` of the backing arrays, oldest first;
    appends go at ``_end`` and expiry just advances ``_start``, so both
    hot operations are O(1) with compaction amortized into growth.
    """

    __slots__ = ("_fp", "_ts", "_au", "_start", "_end")

    def __init__(self, capacity: int = _MIN_CAPACITY):
        capacity = max(int(capacity), _MIN_CAPACITY)
        self._fp = np.empty(capacity, dtype=np.uint64)
        self._ts = np.empty(capacity, dtype=np.float64)
        self._au = np.empty(capacity, dtype=np.int64)
        self._start = 0
        self._end = 0

    def __len__(self) -> int:
        return self._end - self._start

    def nbytes(self) -> int:
        """Bytes of columnar state for the live window (accounting gauge)."""
        n = self._end - self._start
        return n * (self._fp.itemsize + self._ts.itemsize + self._au.itemsize)

    def append(self, fingerprint: int, timestamp: float, author: int) -> None:
        """Mirror a newly-admitted post.

        Raises ``OverflowError``/``TypeError`` when a field does not fit
        its column; the caller must then abandon the kernel (the window
        would no longer round-trip) and fall back to scalar scans.
        """
        if self._end == self._fp.shape[0]:
            self._make_room()
        end = self._end
        self._fp[end] = fingerprint
        self._ts[end] = timestamp
        self._au[end] = author
        self._end = end + 1

    def _make_room(self) -> None:
        n = self._end - self._start
        capacity = self._fp.shape[0]
        # Compact in place when at least half the array is dead prefix,
        # otherwise double — classic amortized-O(1) ring maintenance.
        new_capacity = capacity if 2 * n <= capacity else 2 * capacity
        for name in ("_fp", "_ts", "_au"):
            column = getattr(self, name)
            fresh = np.empty(new_capacity, dtype=column.dtype)
            fresh[:n] = column[self._start : self._end]
            setattr(self, name, fresh)
        self._start, self._end = 0, n

    def drop_oldest(self, count: int) -> None:
        """Mirror an expiry batch: the bin dropped ``count`` from the left."""
        self._start += count
        if self._start >= self._end:
            self._start = self._end = 0

    def clear(self) -> None:
        self._start = self._end = 0

    def probe(
        self,
        fingerprint: int,
        author: int,
        *,
        lambda_c: int,
        limit: int | None = None,
        author_free: bool = True,
        graph=None,
    ) -> tuple[bool, int] | None:
        """Scan newest-first for a covering candidate.

        Returns ``(covered, comparisons)`` with the scalar loop's exact
        accounting, or ``None`` when the probing fingerprint itself does
        not fit ``uint64`` (the caller scans scalar for that one post —
        the mirrored window is still valid).
        """
        n = self._end - self._start
        scan = n if limit is None or limit > n else limit
        if scan <= 0:
            return (False, 0)
        try:
            fp = np.uint64(fingerprint)
        except (OverflowError, ValueError, TypeError):
            return None
        fp_column = self._fp
        end = self._end
        floor = end - scan
        are_similar = None if author_free or graph is None else graph.are_similar
        hi = end
        block = FIRST_BLOCK
        while hi > floor:
            lo = max(floor, hi - block)
            block = min(block * 2, PROBE_BLOCK)
            content = popcount64(fp_column[lo:hi] ^ fp) <= lambda_c
            candidates = np.flatnonzero(content)
            if candidates.size:
                if author_free:
                    # Newest-first ⇒ the largest in-block offset wins.
                    return (True, end - (lo + int(candidates[-1])))
                au_column = self._au
                for offset in candidates[::-1]:
                    j = lo + int(offset)
                    candidate_author = int(au_column[j])
                    if candidate_author == author or (
                        are_similar is not None
                        and are_similar(author, candidate_author)
                    ):
                        return (True, end - j)
            hi = lo
        return (False, scan)
