"""Tokenisation for SimHash fingerprinting.

Posts are short (tweets), so plain word tokens carry too little positional
information to discriminate well; following common SimHash practice we hash
word *shingles* (n-grams of consecutive words) in addition to single words.
Shingle width is configurable; width 2 is the library default and what the
evaluation uses.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterator

_WORD = re.compile(r"\S+")


def words(text: str) -> list[str]:
    """Split ``text`` on whitespace into word tokens.

    >>> words("over 300 people  missing")
    ['over', '300', 'people', 'missing']
    """
    return _WORD.findall(text)


def shingles(tokens: list[str], width: int) -> Iterator[str]:
    """Yield space-joined word n-grams of ``width`` consecutive tokens.

    A text shorter than ``width`` yields the whole text as one shingle, so no
    non-empty input produces an empty feature set.

    >>> list(shingles(["a", "b", "c"], 2))
    ['a b', 'b c']
    >>> list(shingles(["a"], 2))
    ['a']
    """
    if width < 1:
        raise ValueError(f"shingle width must be >= 1, got {width}")
    if len(tokens) <= width:
        if tokens:
            yield " ".join(tokens)
        return
    for i in range(len(tokens) - width + 1):
        yield " ".join(tokens[i : i + width])


def feature_counts(text: str, shingle_width: int = 2) -> Counter[str]:
    """Weighted feature multiset for SimHash: words plus word shingles.

    Weights are raw occurrence counts. With ``shingle_width=1`` this
    degenerates to a plain bag of words.
    """
    tokens = words(text)
    counts: Counter[str] = Counter(tokens)
    if shingle_width > 1:
        counts.update(shingles(tokens, shingle_width))
    return counts
