"""Hot migration of live engine state across graph versions.

Two layers live here:

* :func:`patch_engine` — migrate **one** single-user engine in place after
  its own graph object was mutated: NeighborBin re-files the flipped
  endpoints' posts between bins, CliqueBin swaps in an incrementally
  repaired cover, UniBin/IndexedUniBin need nothing (their coverage checks
  read the graph live).
* :class:`RebuildMultiUser` — the **teardown-and-rebuild reference**: a
  per-user engine farm that, on every effective topology change, discards
  all engines and rebuilds them from scratch on the new graph, re-seeding
  each with its carried window. It defines the state-preserving rebuild
  semantics operationally; the differential suite pits every incremental
  engine against it, and the benchmark uses it as the full-rebuild
  baseline that incremental maintenance must beat.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..core import Post, RunStats, StreamDiversifier, Thresholds, make_diversifier
from ..core.cliquebin import CliqueBin
from ..multiuser.routing import SubscriptionTable
from .events import Event, FollowEvent, UnfollowEvent
from .topology import Edge, TopologyManager, repair_cover


def patch_engine(
    engine: StreamDiversifier,
    added: Iterable[Edge] = (),
    removed: Iterable[Edge] = (),
) -> None:
    """Re-index one engine whose graph object already reflects the delta.

    ``added``/``removed`` must be restricted to edges with both endpoints
    in the engine's graph. CliqueBin gets its cover repaired against the
    mutated graph; every other engine goes through
    :meth:`~repro.core.StreamDiversifier.apply_graph_delta`.
    """
    if isinstance(engine, CliqueBin):
        assert engine.graph is not None
        engine.apply_cover_update(
            repair_cover(engine.graph, engine.cover, added, removed)
        )
    else:
        engine.apply_graph_delta(added, removed)


def mutate_subgraph(graph, added: Iterable[Edge], removed: Iterable[Edge]) -> None:
    """Apply an internal edge delta to an instance subgraph in place."""
    for a, b in removed:
        graph.remove_edge(a, b)
    for a, b in added:
        graph.add_edge(a, b)


def seeded_engine(
    algorithm: str,
    thresholds: Thresholds,
    graph,
    carried: Iterable[Post],
    last_timestamp: float,
) -> StreamDiversifier:
    """A fresh engine on ``graph``, re-seeded with a carried window."""
    engine = make_diversifier(algorithm, thresholds, graph)
    engine.seed_admitted(list(carried), last_timestamp=last_timestamp)
    return engine


class RebuildMultiUser:
    """Per-user engines, torn down and rebuilt on every topology change.

    Deliberately the simplest correct implementation of the dynamic
    semantics: one engine per user on the induced subgraph of their
    subscriptions (the M_* structure), and on any effective edge delta a
    full rebuild — new subgraph, new engine (greedy cover recomputed from
    scratch for CliqueBin), carried window re-seeded. Everything the
    incremental engines do cleverly, this does by brute force, which is
    what makes it a trustworthy oracle and a meaningful baseline.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        friends: Mapping[int, Iterable[int]],
        subscriptions: SubscriptionTable,
    ):
        self.name = f"rebuild_{algorithm}"
        self.algorithm = algorithm
        self.thresholds = thresholds
        self.subscriptions = subscriptions
        self.topology = TopologyManager(friends, lambda_a=thresholds.lambda_a)
        self.rebuilds = 0
        self._engines: dict[int, StreamDiversifier] = {}
        graph = self.topology.graph
        for user in subscriptions.users:
            sub = graph.subgraph(subscriptions.subscriptions_of(user))
            self._engines[user] = make_diversifier(algorithm, thresholds, sub)

    @property
    def graph_version(self) -> int:
        return self.topology.version

    def offer(self, post: Post) -> frozenset[int]:
        return frozenset(
            user
            for user in self.subscriptions.subscribers_of(post.author)
            if self._engines[user].offer(post)
        )

    def follow(self, author: int, followee: int) -> None:
        if not self.topology.follow(author, followee).empty:
            self._rebuild_all()

    def unfollow(self, author: int, followee: int) -> None:
        if not self.topology.unfollow(author, followee).empty:
            self._rebuild_all()

    def apply(self, event: Event) -> frozenset[int] | None:
        """Consume one mixed-stream record; receivers for posts, else None."""
        if isinstance(event, FollowEvent):
            self.follow(event.author, event.followee)
            return None
        if isinstance(event, UnfollowEvent):
            self.unfollow(event.author, event.followee)
            return None
        return self.offer(event)

    def _rebuild_all(self) -> None:
        self.rebuilds += 1
        graph = self.topology.graph
        for user, old in self._engines.items():
            sub = graph.subgraph(self.subscriptions.subscriptions_of(user))
            fresh = seeded_engine(
                self.algorithm,
                self.thresholds,
                sub,
                old.admitted_posts(),
                old.last_timestamp,
            )
            fresh.stats = old.stats  # counters survive the teardown
            self._engines[user] = fresh

    def aggregate_stats(self) -> RunStats:
        total = RunStats()
        for engine in self._engines.values():
            total.merge(engine.stats)
        return total

    def stored_copies(self) -> int:
        return sum(engine.stored_copies() for engine in self._engines.values())
