"""Dynamic engines: diversify a mixed post/follow/unfollow stream.

Two consumers of the :class:`~repro.dynamic.topology.TopologyManager`
live here:

* :class:`DynamicDiversifier` — single-engine mode: one SPSD algorithm on
  the whole (mutating) author graph. UniBin/IndexedUniBin read the graph
  live, NeighborBin re-files the flipped endpoints' posts, CliqueBin swaps
  in the manager's incrementally repaired cover.
* :class:`DynamicMultiUser` — the multi-user engine. Work is shared
  through **instances**: lineage-keyed engine slots, each a maximal
  connected author set in ``G[subs(u)]`` for every user it serves. A
  topology change migrates instances in place — splits via scoped
  component recompute, merges via carried-window re-seeding, internal
  edge flips via bin/cover patches — so after any event-stream prefix the
  receiver sets equal a from-scratch rebuild on the current graph.

Instances run on an executor: :class:`_LocalExecutor` keeps engines
in-process (``workers=1``, zero IPC); :class:`_PipeExecutor` spreads them
over worker processes speaking the :mod:`~repro.dynamic.worker` protocol,
placing each newly created instance on the least-loaded worker (migration
doubles as re-sharding).
"""

from __future__ import annotations

import multiprocessing
import weakref
from collections import defaultdict
from collections.abc import Iterable, Mapping
from time import perf_counter

from ..authors import ComponentCatalog
from ..core import (
    ALGORITHMS,
    Post,
    RunStats,
    StreamDiversifier,
    Thresholds,
    make_diversifier,
)
from ..core.cliquebin import CliqueBin
from ..errors import (
    CheckpointError,
    ConfigurationError,
    GraphError,
    ParallelError,
    UnknownAlgorithmError,
)
from ..multiuser.base import MultiUserDiversifier
from ..multiuser.routing import SubscriptionTable
from ..parallel.engine import _preferred_start_method
from ..supervise import ShardSupervisor, SupervisionConfig, shutdown_workers
from .events import Event, FollowEvent, UnfollowEvent
from .migrate import mutate_subgraph, patch_engine, seeded_engine
from .topology import TopologyDelta, TopologyManager, scoped_components
from .worker import (
    DynamicShardSpec,
    dynamic_supervision_protocol,
    dynamic_worker_main,
)


class DynamicDiversifier:
    """Single-engine dynamic mode: one algorithm over the mutating graph.

    Wraps a :class:`~repro.core.StreamDiversifier` built on the
    :class:`TopologyManager`'s graph object. Because the manager mutates
    that object in place, an effective edge delta only needs the engine's
    *index* migrated (:func:`~repro.dynamic.migrate.patch_engine`); for
    CliqueBin the manager's repaired cover is adopted directly instead of
    being re-repaired.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        friends: Mapping[int, Iterable[int]],
        *,
        validate_covers: bool = False,
    ):
        if algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(f"unknown algorithm {algorithm!r}")
        self.name = f"dyn_{algorithm}"
        self.algorithm = algorithm
        self.thresholds = thresholds
        maintain_cover = algorithm == "cliquebin"
        self.topology = TopologyManager(
            friends,
            lambda_a=thresholds.lambda_a,
            maintain_cover=maintain_cover,
            validate_covers=validate_covers,
        )
        kwargs = {"cover": self.topology.cover} if maintain_cover else {}
        self.engine = make_diversifier(
            algorithm, thresholds, self.topology.graph, **kwargs
        )
        self.migrations = 0
        self.event_counts = {"post": 0, "follow": 0, "unfollow": 0}

    @property
    def graph_version(self) -> int:
        return self.topology.version

    @property
    def stats(self) -> RunStats:
        return self.engine.stats

    def offer(self, post: Post) -> bool:
        self.event_counts["post"] += 1
        return self.engine.offer(post)

    def follow(self, author: int, followee: int) -> TopologyDelta:
        return self._churn("follow", self.topology.follow, author, followee)

    def unfollow(self, author: int, followee: int) -> TopologyDelta:
        return self._churn("unfollow", self.topology.unfollow, author, followee)

    def _churn(self, kind, mutate, author: int, followee: int) -> TopologyDelta:
        self.event_counts[kind] += 1
        delta = mutate(author, followee)
        if delta.empty:
            return delta
        self.migrations += 1
        if isinstance(self.engine, CliqueBin):
            # The manager repaired the global cover already; adopt it.
            self.engine.apply_cover_update(self.topology.cover)
        else:
            self.engine.apply_graph_delta(delta.added, delta.removed)
        return delta

    def apply(self, event: Event) -> bool | None:
        """Consume one mixed-stream record; admit verdict for posts."""
        if isinstance(event, FollowEvent):
            self.follow(event.author, event.followee)
            return None
        if isinstance(event, UnfollowEvent):
            self.unfollow(event.author, event.followee)
            return None
        return self.offer(event)

    def run(self, events: Iterable[Event]) -> list[Post]:
        """Consume a mixed stream; return the admitted (diversified) posts."""
        admitted: list[Post] = []
        for event in events:
            if self.apply(event) is True:
                admitted.append(event)
        return admitted

    def admitted_posts(self) -> list[Post]:
        return self.engine.admitted_posts()

    def stored_copies(self) -> int:
        return self.engine.stored_copies()

    def purge(self, now: float | None = None) -> None:
        self.engine.purge(now)

    def bind_metrics(self, registry) -> None:
        self.engine.bind_metrics(registry)

    def state_dict(self) -> dict[str, object]:
        return {
            "engine": self.name,
            "graph_version": self.topology.version,
            "friends": self.topology.maintainer.friends(),
            "state": self.engine.state_dict(),
        }

    def load_state(self, state: dict[str, object]) -> None:
        if state.get("engine") != self.name:
            raise CheckpointError(
                f"checkpoint is for engine {state.get('engine')!r}, "
                f"this engine is {self.name!r}"
            )
        friends: Mapping[int, Iterable[int]] = state["friends"]  # type: ignore[assignment]
        maintain_cover = self.algorithm == "cliquebin"
        self.topology = TopologyManager(
            friends,
            lambda_a=self.thresholds.lambda_a,
            maintain_cover=maintain_cover,
            validate_covers=self.topology.validate_covers,
        )
        self.topology.version = int(state["graph_version"])  # type: ignore[arg-type]
        kwargs = {"cover": self.topology.cover} if maintain_cover else {}
        self.engine = make_diversifier(
            self.algorithm, self.thresholds, self.topology.graph, **kwargs
        )
        self.engine.load_state(state["state"])  # type: ignore[arg-type]
        if isinstance(self.engine, CliqueBin):
            # The checkpointed (possibly repaired) cover wins; keep the
            # manager's view consistent with the engine's.
            self.topology.cover = self.engine.cover


class _Instance:
    """Coordinator-side record of one engine instance (the engine itself
    lives wherever the executor put it)."""

    __slots__ = ("nodes", "users")

    def __init__(self, nodes: frozenset[int], users: set[int]):
        self.nodes = nodes
        self.users = users


class _LocalExecutor:
    """In-process instance host: the ``workers=1`` zero-IPC fast path."""

    def __init__(self, algorithm: str, thresholds: Thresholds):
        self.algorithm = algorithm
        self.thresholds = thresholds
        self._engines: dict[int, StreamDiversifier] = {}

    def install(self, iid, subgraph, carried, last_timestamp) -> None:
        self._engines[iid] = seeded_engine(
            self.algorithm, self.thresholds, subgraph, carried, last_timestamp
        )

    def offer_batch(self, items):
        engines = self._engines
        return [
            (seq, [iid for iid in iids if engines[iid].offer(post)])
            for seq, post, iids in items
        ]

    def patch(self, iid, added, removed) -> None:
        engine = self._engines[iid]
        mutate_subgraph(engine.graph, added, removed)
        patch_engine(engine, added, removed)

    def peek(self, iid):
        engine = self._engines[iid]
        return engine.admitted_posts(), engine.last_timestamp

    def extract(self, iid):
        engine = self._engines.pop(iid)
        return engine.admitted_posts(), engine.last_timestamp, engine.stats.state_dict()

    def merged_stats(self) -> RunStats:
        total = RunStats()
        for engine in self._engines.values():
            total.merge(engine.stats)
        return total

    def stored(self) -> int:
        return sum(engine.stored_copies() for engine in self._engines.values())

    def purge(self, now: float) -> None:
        for engine in self._engines.values():
            engine.purge(now)

    def states(self) -> dict[int, dict[str, object]]:
        return {iid: engine.state_dict() for iid, engine in self._engines.items()}

    def load(self, iid, state) -> None:
        self._engines[iid].load_state(state)

    def reset(self) -> None:
        self._engines.clear()

    def close(self) -> None:  # nothing to release
        pass


class _PipeExecutor:
    """Instance host spread over worker processes.

    Workers start empty; every instance is installed over the pipe onto
    the currently least-loaded worker (by resident author count), so
    split/merge churn re-balances placement as it happens.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        workers: int,
        *,
        start_method: str | None = None,
        deadline: float | None = 120.0,
        fault_plans=None,
    ):
        plans = dict(fault_plans) if fault_plans else {}
        context = multiprocessing.get_context(
            start_method if start_method is not None else _preferred_start_method()
        )
        self._closed = False
        self._deadline = deadline
        self._connections = []
        self._processes = []
        for worker in range(workers):
            spec = DynamicShardSpec(
                algorithm=algorithm,
                thresholds=thresholds,
                faults=plans.get(worker),
            )
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=dynamic_worker_main, args=(child_conn, spec), daemon=True
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._finalizer = weakref.finalize(
            self, shutdown_workers, list(self._processes), list(self._connections)
        )
        self._worker_of: dict[int, int] = {}
        self._weight: dict[int, int] = {}
        self._loads: list[int] = [0] * workers
        for worker, conn in enumerate(self._connections):
            self._receive(worker, conn, "ready")  # startup handshake

    # -- protocol plumbing -------------------------------------------------

    def _receive(self, worker: int, conn, command: str = "?"):
        deadline = self._deadline
        try:
            if deadline is not None and not conn.poll(deadline):
                raise ParallelError(
                    f"dynamic worker {worker} sent no reply to {command!r} "
                    f"within {deadline:.1f}s (worker hung; run with "
                    f"supervised=True to recover automatically)"
                )
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise ParallelError(
                f"dynamic worker {worker} died awaiting reply to "
                f"{command!r} (pipe closed): {exc}"
            ) from exc
        if (
            not isinstance(reply, tuple)
            or len(reply) < 2
            or reply[0] not in ("ok", "error")
        ):
            raise ParallelError(
                f"dynamic worker {worker} sent a corrupt reply to "
                f"{command!r}: {str(reply)[:80]!r}"
            )
        if reply[0] == "error":
            raise ParallelError(f"dynamic worker {worker} {reply[1]}: {reply[2]}")
        return reply[1]

    def _request(self, worker: int, message):
        if self._closed:
            raise ParallelError("dynamic engine already closed")
        conn = self._connections[worker]
        conn.send(message)
        return self._receive(worker, conn, message[0])

    def _broadcast(self, message):
        if self._closed:
            raise ParallelError("dynamic engine already closed")
        for conn in self._connections:
            conn.send(message)
        return [
            self._receive(worker, conn, message[0])
            for worker, conn in enumerate(self._connections)
        ]

    # -- executor interface ------------------------------------------------

    def install(self, iid, subgraph, carried, last_timestamp) -> None:
        worker = min(range(len(self._loads)), key=self._loads.__getitem__)
        weight = max(1, len(subgraph.nodes))
        self._worker_of[iid] = worker
        self._weight[iid] = weight
        self._loads[worker] += weight
        self._request(worker, ("install", (iid, subgraph, carried, last_timestamp)))

    def offer_batch(self, items):
        if self._closed:
            raise ParallelError("dynamic engine already closed")
        worker_of = self._worker_of
        per_worker: dict[int, list] = defaultdict(list)
        for seq, post, iids in items:
            by_worker: dict[int, list[int]] = {}
            for iid in iids:
                by_worker.setdefault(worker_of[iid], []).append(iid)
            for worker, sub in by_worker.items():
                per_worker[worker].append((seq, post, sub))
        # Sends complete before the first receive so workers overlap.
        for worker, sub_items in per_worker.items():
            self._connections[worker].send(("batch", sub_items))
        out = []
        for worker in per_worker:
            out.extend(self._receive(worker, self._connections[worker], "batch"))
        return out

    def patch(self, iid, added, removed) -> None:
        self._request(self._worker_of[iid], ("patch", (iid, added, removed)))

    def peek(self, iid):
        return self._request(self._worker_of[iid], ("peek", iid))

    def extract(self, iid):
        reply = self._request(self._worker_of[iid], ("extract", iid))
        worker = self._worker_of.pop(iid)
        self._loads[worker] -= self._weight.pop(iid)
        return reply

    def merged_stats(self) -> RunStats:
        total = RunStats()
        for state in self._broadcast(("stats",)):
            stats = RunStats()
            stats.load_state(state)
            total.merge(stats)
        return total

    def stored(self) -> int:
        return sum(self._broadcast(("stored",)))

    def purge(self, now: float) -> None:
        self._broadcast(("purge", now))

    def states(self) -> dict[int, dict[str, object]]:
        out: dict[int, dict[str, object]] = {}
        for reply in self._broadcast(("states",)):
            out.update(reply)
        return out

    def load(self, iid, state) -> None:
        self._request(self._worker_of[iid], ("load", (iid, state)))

    def reset(self) -> None:
        self._broadcast(("reset",))
        self._worker_of.clear()
        self._weight.clear()
        self._loads = [0] * len(self._connections)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._finalizer()


class _SupervisedPipeExecutor:
    """:class:`_PipeExecutor` semantics behind a
    :class:`~repro.supervise.ShardSupervisor`.

    Same least-loaded placement, same wire protocol — but every request
    flows through the supervisor, which journals mutating commands, rolls
    ``snapshot`` checkpoints, heals crashed/hung workers by respawn →
    restore → replay, and degrades poison workers to in-parent engines.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        workers: int,
        *,
        start_method: str | None = None,
        supervision: SupervisionConfig | None = None,
        fault_plans=None,
    ):
        plans = dict(fault_plans) if fault_plans else {}
        context = multiprocessing.get_context(
            start_method if start_method is not None else _preferred_start_method()
        )
        self._closed = False
        self.supervisor = ShardSupervisor(
            [
                DynamicShardSpec(
                    algorithm=algorithm,
                    thresholds=thresholds,
                    faults=plans.get(worker),
                )
                for worker in range(workers)
            ],
            context=context,
            protocol=dynamic_supervision_protocol(),
            config=supervision,
            name=f"d_{algorithm}",
        )
        self._worker_of: dict[int, int] = {}
        self._weight: dict[int, int] = {}
        self._loads: list[int] = [0] * workers

    # -- executor interface ------------------------------------------------

    def install(self, iid, subgraph, carried, last_timestamp) -> None:
        worker = min(range(len(self._loads)), key=self._loads.__getitem__)
        weight = max(1, len(subgraph.nodes))
        self._worker_of[iid] = worker
        self._weight[iid] = weight
        self._loads[worker] += weight
        self.supervisor.request(
            worker, ("install", (iid, subgraph, carried, last_timestamp))
        )

    def offer_batch(self, items):
        if self._closed:
            raise ParallelError("dynamic engine already closed")
        self.supervisor.maybe_heartbeat()
        worker_of = self._worker_of
        per_worker: dict[int, list] = defaultdict(list)
        for seq, post, iids in items:
            by_worker: dict[int, list[int]] = {}
            for iid in iids:
                by_worker.setdefault(worker_of[iid], []).append(iid)
            for worker, sub in by_worker.items():
                per_worker[worker].append((seq, post, sub))
        replies = self.supervisor.request_many(
            {worker: ("batch", sub_items) for worker, sub_items in per_worker.items()}
        )
        out = []
        for worker in per_worker:
            out.extend(replies[worker])
        return out

    def patch(self, iid, added, removed) -> None:
        self.supervisor.request(self._worker_of[iid], ("patch", (iid, added, removed)))

    def peek(self, iid):
        return self.supervisor.request(self._worker_of[iid], ("peek", iid))

    def extract(self, iid):
        reply = self.supervisor.request(self._worker_of[iid], ("extract", iid))
        worker = self._worker_of.pop(iid)
        self._loads[worker] -= self._weight.pop(iid)
        return reply

    def merged_stats(self) -> RunStats:
        total = RunStats()
        for state in self.supervisor.request_all(("stats",)).values():
            stats = RunStats()
            stats.load_state(state)
            total.merge(stats)
        return total

    def stored(self) -> int:
        return sum(self.supervisor.request_all(("stored",)).values())

    def purge(self, now: float) -> None:
        self.supervisor.request_all(("purge", now))

    def states(self) -> dict[int, dict[str, object]]:
        out: dict[int, dict[str, object]] = {}
        for reply in self.supervisor.request_all(("states",)).values():
            out.update(reply)
        return out

    def load(self, iid, state) -> None:
        self.supervisor.request(self._worker_of[iid], ("load", (iid, state)))

    def reset(self) -> None:
        self.supervisor.request_all(("reset",))
        self._worker_of.clear()
        self._weight.clear()
        self._loads = [0] * len(self._loads)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.supervisor.close()


class DynamicMultiUser(MultiUserDiversifier):
    """M-SPSD over a mutating author graph, one mixed event stream in.

    Args:
        algorithm: single-user registry name (``unibin`` … ``indexed_unibin``).
        thresholds: shared diversity thresholds.
        friends: initial followee sets; the author universe is fixed and
            must contain every subscribed author.
        subscriptions: the (static) user ⇄ author table — follow events
            mutate author *similarity*, not who reads whom.
        workers: ``1`` hosts every instance in-process; ``>1`` spreads
            instances over that many worker processes.
        batch_size: chunk length for :meth:`run` / :meth:`run_events`.
        validate_covers: verify every per-instance repaired cover (tests).
        start_method: multiprocessing start method for ``workers > 1``.
        supervised: run the worker pool under a
            :class:`~repro.supervise.ShardSupervisor` (crash recovery,
            heartbeats, serial degradation); in-process ``workers=1``
            has nothing to supervise.
        supervision: supervisor tuning knobs.
        shard_deadline: unsupervised per-request reply deadline in
            seconds (``None`` waits forever); supervised pools use
            ``supervision.deadline`` instead.
        fault_plans: worker index → :class:`~repro.resilience.
            WorkerFaultPlan` for chaos tests.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        friends: Mapping[int, Iterable[int]],
        subscriptions: SubscriptionTable,
        *,
        workers: int = 1,
        batch_size: int = 512,
        validate_covers: bool = False,
        start_method: str | None = None,
        supervised: bool = False,
        supervision: SupervisionConfig | None = None,
        shard_deadline: float | None = 120.0,
        fault_plans=None,
    ):
        if algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(f"unknown algorithm {algorithm!r}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.name = f"d_{algorithm}"
        self.algorithm = algorithm
        self.thresholds = thresholds
        self.subscriptions = subscriptions
        self.workers = workers
        self.batch_size = batch_size
        self.validate_covers = validate_covers
        self.topology = TopologyManager(friends, lambda_a=thresholds.lambda_a)
        missing = set(subscriptions.authors) - set(self.topology.graph.nodes)
        if missing:
            raise ConfigurationError(
                f"subscribed authors missing from the friends universe: "
                f"{sorted(missing)[:5]}{'…' if len(missing) > 5 else ''}"
            )
        self._closed = False
        if workers == 1:
            self._executor = _LocalExecutor(algorithm, thresholds)
        elif supervised:
            self._executor = _SupervisedPipeExecutor(
                algorithm,
                thresholds,
                workers,
                start_method=start_method,
                supervision=supervision,
                fault_plans=fault_plans,
            )
        else:
            self._executor = _PipeExecutor(
                algorithm,
                thresholds,
                workers,
                start_method=start_method,
                deadline=shard_deadline,
                fault_plans=fault_plans,
            )
        self._instances: dict[int, _Instance] = {}
        self._by_author: dict[int, set[int]] = defaultdict(set)
        self._user_instances: dict[int, set[int]] = {
            user: set() for user in subscriptions.users
        }
        self._next_iid = 0
        self._retired = RunStats()
        self.migrations = 0
        self.event_counts = {"post": 0, "follow": 0, "unfollow": 0}
        catalog = ComponentCatalog(self.topology.graph, subscriptions.as_dict())
        for idx, component in enumerate(catalog.components):
            self._create_instance(
                component, set(catalog.users_of[idx]), [], float("-inf")
            )

    # -- instance bookkeeping ----------------------------------------------

    def _create_instance(self, nodes, users, carried, last_timestamp) -> int:
        iid = self._next_iid
        self._next_iid += 1
        self._instances[iid] = _Instance(frozenset(nodes), users)
        for node in nodes:
            self._by_author[node].add(iid)
        for user in users:
            self._user_instances[user].add(iid)
        self._executor.install(
            iid, self.topology.graph.subgraph(nodes), carried, last_timestamp
        )
        return iid

    def _retire_instance(self, iid: int):
        """Drop an instance; fold its counters into the retired
        accumulator and hand back its carried window."""
        instance = self._instances.pop(iid)
        for node in instance.nodes:
            self._by_author[node].discard(iid)
        for user in instance.users:
            self._user_instances[user].discard(iid)
        posts, last_timestamp, stats_state = self._executor.extract(iid)
        stats = RunStats()
        stats.load_state(stats_state)
        self._retired.merge(stats)
        return posts, last_timestamp

    def _instance_of(self, user: int, author: int) -> int:
        """The unique instance of ``user`` whose node set contains
        ``author`` (instances partition each user's subscriptions)."""
        for iid in self._user_instances[user]:
            if author in self._instances[iid].nodes:
                return iid
        raise GraphError(
            f"internal invariant violated: user {user} has no instance "
            f"containing author {author}"
        )

    # -- offers --------------------------------------------------------------

    def offer(self, post: Post) -> frozenset[int]:
        return self.offer_batch((post,))[0]

    def offer_batch(self, posts) -> list[frozenset[int]]:
        posts = list(posts)
        self.event_counts["post"] += len(posts)
        by_author = self._by_author
        instances = self._instances
        consulted: list[int] = []
        items: list[tuple[int, Post, list[int]]] = []
        for seq, post in enumerate(posts):
            iids = sorted(by_author.get(post.author, ()))
            consulted.append(len(iids))
            if iids:
                items.append((seq, post, iids))
        merged: list[set[int]] = [set() for _ in posts]
        if items:
            for seq, admitted in self._executor.offer_batch(items):
                receivers = merged[seq]
                for iid in admitted:
                    receivers.update(instances[iid].users)
        results = [frozenset(r) for r in merged]
        if self._metrics is not None:
            record = self._metrics.record
            for count, result in zip(consulted, results):
                record(count, result)
        return results

    # -- topology events -----------------------------------------------------

    def follow(self, author: int, followee: int) -> TopologyDelta:
        return self._churn("follow", self.topology.follow, author, followee)

    def unfollow(self, author: int, followee: int) -> TopologyDelta:
        return self._churn("unfollow", self.topology.unfollow, author, followee)

    def _churn(self, kind, mutate, author: int, followee: int) -> TopologyDelta:
        self.event_counts[kind] += 1
        delta = mutate(author, followee)
        if delta.empty:
            return delta
        started = perf_counter()
        self._migrate(delta)
        self.migrations += 1
        if self._metrics is not None:
            self._metrics.observe_migration(perf_counter() - started)
        return delta

    def apply(self, event: Event) -> frozenset[int] | None:
        """Consume one mixed-stream record; receivers for posts, else None."""
        if isinstance(event, FollowEvent):
            self.follow(event.author, event.followee)
            return None
        if isinstance(event, UnfollowEvent):
            self.unfollow(event.author, event.followee)
            return None
        return self.offer(event)

    def run_events(self, events: Iterable[Event]) -> dict[int, list[Post]]:
        """Consume a mixed stream, batching post runs between topology
        events; return each user's diversified timeline."""
        timelines: dict[int, list[Post]] = {}
        chunk: list[Post] = []

        def drain() -> None:
            for post, receivers in zip(chunk, self.offer_batch(chunk)):
                for user in receivers:
                    timelines.setdefault(user, []).append(post)
            chunk.clear()

        for event in events:
            if isinstance(event, (FollowEvent, UnfollowEvent)):
                drain()
                if isinstance(event, FollowEvent):
                    self.follow(event.author, event.followee)
                else:
                    self.unfollow(event.author, event.followee)
            else:
                chunk.append(event)
                if len(chunk) >= self.batch_size:
                    drain()
        drain()
        return timelines

    # -- migration -----------------------------------------------------------

    def _migrate(self, delta: TopologyDelta) -> None:
        """Bring every live instance to the new graph version.

        The manager mutated the global graph *before* this runs, so child
        instances can be built directly on induced subgraphs of the final
        graph. Three mechanisms, cheapest applicable one per instance:

        * **split** (removed edge disconnects an instance): scoped
          component recompute over the instance's node set; children are
          fresh seeded engines carrying the parent's window, parent
          retires.
        * **merge** (added edge bridges two instances of the same user):
          the affected users move onto a fresh instance over the union
          node set, seeded with both parents' carried windows; parents
          retire when their last user leaves.
        * **patch** (edge flip internal to a surviving instance): mutate
          the instance subgraph and re-index in place — no engine rebuild.

        Instances created during this migration ("fresh") already sit on
        the final graph, so pending patches are only applied to survivors.
        """
        fresh: set[int] = set()
        # iid → [added edges, removed edges] to patch in place at the end.
        pending: dict[int, list[set]] = {}

        # Removal phase: splits and internal removal patches.
        affected: dict[int, set] = {}
        for edge in delta.removed:
            u, v = edge
            for iid in self._by_author.get(u, set()) & self._by_author.get(v, set()):
                affected.setdefault(iid, set()).add(edge)
        for iid in sorted(affected):
            instance = self._instances[iid]
            components = scoped_components(self.topology.graph, instance.nodes)
            if len(components) == 1:
                pending.setdefault(iid, [set(), set()])[1].update(affected[iid])
                continue
            users = set(instance.users)
            posts, last_timestamp = self._retire_instance(iid)
            pending.pop(iid, None)
            for component in components:
                child = self._create_instance(
                    component,
                    set(users),
                    [post for post in posts if post.author in component],
                    last_timestamp,
                )
                fresh.add(child)

        # Addition phase: merges and internal addition patches.
        for edge in sorted(delta.added):
            u, v = edge
            movers_of: dict[frozenset[int], list[int]] = {}
            both = self.subscriptions.subscribers_of(u) & self.subscriptions.subscribers_of(v)
            for user in sorted(both):
                iu = self._instance_of(user, u)
                iv = self._instance_of(user, v)
                if iu == iv:
                    if iu not in fresh:
                        pending.setdefault(iu, [set(), set()])[0].add(edge)
                else:
                    movers_of.setdefault(frozenset((iu, iv)), []).append(user)
            for pair in sorted(movers_of, key=lambda p: tuple(sorted(p))):
                movers = movers_of[pair]
                first, second = sorted(pair)
                parent_a = self._instances[first]
                parent_b = self._instances[second]
                posts_a, ts_a = self._executor.peek(first)
                posts_b, ts_b = self._executor.peek(second)
                nodes = parent_a.nodes | parent_b.nodes
                carried = sorted(
                    posts_a + posts_b, key=lambda p: (p.timestamp, p.post_id)
                )
                for user in movers:
                    self._user_instances[user].discard(first)
                    self._user_instances[user].discard(second)
                parent_a.users.difference_update(movers)
                parent_b.users.difference_update(movers)
                child = self._create_instance(
                    nodes, set(movers), carried, max(ts_a, ts_b)
                )
                fresh.add(child)
                for parent_iid in (first, second):
                    if not self._instances[parent_iid].users:
                        self._retire_instance(parent_iid)
                        pending.pop(parent_iid, None)
                        fresh.discard(parent_iid)

        # Patch phase: surviving pre-existing instances re-index in place.
        for iid in sorted(pending):
            if iid not in self._instances:
                continue
            added, removed = pending[iid]
            self._executor.patch(iid, sorted(added), sorted(removed))
            if self.validate_covers and isinstance(self._executor, _LocalExecutor):
                engine = self._executor._engines[iid]
                if isinstance(engine, CliqueBin):
                    from ..authors import verify_cover

                    verify_cover(engine.graph, engine.cover)

    # -- accounting ----------------------------------------------------------

    @property
    def graph_version(self) -> int:
        return self.topology.version

    @property
    def supervisor(self) -> ShardSupervisor | None:
        """The live :class:`~repro.supervise.ShardSupervisor`, if any."""
        return getattr(self._executor, "supervisor", None)

    def supervision_status(self) -> dict[str, object] | None:
        """Health summary from the supervisor (``None`` when unsupervised
        or running in-process) — the substrate of ``/healthz``."""
        supervisor = self.supervisor
        if supervisor is None:
            return None
        return supervisor.status()

    def aggregate_stats(self) -> RunStats:
        total = RunStats()
        total.merge(self._retired)
        total.merge(self._executor.merged_stats())
        return total

    def instance_count(self) -> int:
        return len(self._instances)

    def stored_copies(self) -> int:
        return self._executor.stored()

    def purge(self, now: float) -> None:
        self._executor.purge(now)

    def bind_metrics(self, registry, *, per_user: bool = False) -> None:
        """Attach observability: the multi-user bundle plus graph-version
        gauge, per-event-type counters and a migration-latency histogram."""
        if registry is None or getattr(registry, "is_noop", False):
            self._metrics = None
            return
        from ..obs.instruments import DynamicInstruments

        self._metrics = DynamicInstruments(registry, self, per_user=per_user)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        states = self._executor.states()
        instances = []
        for iid in sorted(self._instances):
            instance = self._instances[iid]
            instances.append(
                {
                    "nodes": sorted(instance.nodes),
                    "users": sorted(instance.users),
                    "state": states[iid],
                }
            )
        return {
            "engine": self.name,
            "workers": self.workers,
            "graph_version": self.topology.version,
            "friends": self.topology.maintainer.friends(),
            "instances": instances,
            "retired_stats": self._retired.state_dict(),
            # Migrations are synchronous — a snapshot never straddles one.
            # Reserved so an asynchronous migrator can checkpoint mid-flight.
            "pending_deltas": [],
        }

    def load_state(self, state: dict[str, object]) -> None:
        if state.get("engine") != self.name:
            raise CheckpointError(
                f"checkpoint is for engine {state.get('engine')!r}, "
                f"this engine is {self.name!r}"
            )
        if state.get("pending_deltas"):
            raise CheckpointError(
                "checkpoint carries pending topology deltas; this engine "
                "only restores quiescent snapshots"
            )
        friends: Mapping[int, Iterable[int]] = state["friends"]  # type: ignore[assignment]
        self.topology = TopologyManager(
            friends, lambda_a=self.thresholds.lambda_a
        )
        self.topology.version = int(state["graph_version"])  # type: ignore[arg-type]
        self._retired = RunStats()
        self._retired.load_state(state["retired_stats"])  # type: ignore[arg-type]
        self._executor.reset()
        self._instances = {}
        self._by_author = defaultdict(set)
        self._user_instances = {user: set() for user in self.subscriptions.users}
        self._next_iid = 0
        for spec in state["instances"]:  # type: ignore[union-attr]
            nodes = frozenset(spec["nodes"])
            users = set(spec["users"])
            unknown = users - set(self._user_instances)
            if unknown:
                raise CheckpointError(
                    f"checkpoint references unknown users {sorted(unknown)[:5]}"
                )
            iid = self._create_instance(nodes, users, [], float("-inf"))
            self._executor.load(iid, spec["state"])

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop worker processes; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._executor.close()

    def __enter__(self) -> "DynamicMultiUser":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
