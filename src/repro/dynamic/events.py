"""Event records for the mixed dynamic stream.

A dynamic trace is a JSONL file whose lines are tagged by ``"type"``:

* ``{"type": "post", "post_id": 1, "author": 42, "text": "...",
  "timestamp": 12.5}`` — a post record, identical to ``posts.jsonl``
  plus the tag (optional ``"fingerprint"`` as there);
* ``{"type": "follow", "author": 42, "followee": 7, "timestamp": 12.6}``
  — author 42 starts following author 7;
* ``{"type": "unfollow", "author": 42, "followee": 7, "timestamp": 99.0}``.

Events must be in non-decreasing timestamp order, interleaved: the engine
applies each record as it arrives, so a follow event takes effect for every
later post and no earlier one.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

from ..core import Post
from ..errors import DatasetError
from ..io import _int_field, _timestamp_field, post_from_dict, post_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience import Quarantine


@dataclass(frozen=True, slots=True)
class FollowEvent:
    """``author`` starts following ``followee`` at ``timestamp``."""

    author: int
    followee: int
    timestamp: float


@dataclass(frozen=True, slots=True)
class UnfollowEvent:
    """``author`` stops following ``followee`` at ``timestamp``."""

    author: int
    followee: int
    timestamp: float


#: Anything the dynamic engines consume from the mixed stream.
Event = Union[Post, FollowEvent, UnfollowEvent]


def event_to_dict(event: Event) -> dict[str, object]:
    """JSON-safe dict form of one mixed-stream record."""
    if isinstance(event, Post):
        record: dict[str, object] = {"type": "post"}
        record.update(post_to_dict(event))
        return record
    if isinstance(event, FollowEvent):
        kind = "follow"
    elif isinstance(event, UnfollowEvent):
        kind = "unfollow"
    else:
        raise DatasetError(f"cannot encode event of type {type(event)!r}")
    return {
        "type": kind,
        "author": event.author,
        "followee": event.followee,
        "timestamp": event.timestamp,
    }


def event_from_dict(record: dict[str, object]) -> Event:
    """Parse one mixed-stream record; the inverse of :func:`event_to_dict`."""
    if not isinstance(record, dict):
        raise DatasetError(f"event record must be a JSON object, got {record!r}")
    kind = record.get("type")
    if kind == "post":
        payload = {key: value for key, value in record.items() if key != "type"}
        return post_from_dict(payload)
    if kind in ("follow", "unfollow"):
        for field in ("author", "followee", "timestamp"):
            if field not in record:
                raise DatasetError(
                    f"{kind} record missing field {field!r}: {record!r}"
                )
        author = _int_field(record, "author")
        followee = _int_field(record, "followee")
        timestamp = _timestamp_field(record)
        cls = FollowEvent if kind == "follow" else UnfollowEvent
        return cls(author=author, followee=followee, timestamp=timestamp)
    raise DatasetError(
        f"event record has unknown type {kind!r} "
        "(expected 'post', 'follow' or 'unfollow')"
    )


def events_digest(events: Iterable[Event]) -> str:
    """SHA-256 over the canonical JSONL encoding of an event stream.

    Two streams digest equal iff they encode to byte-identical traces
    (``json.dumps(..., sort_keys=True)`` per record, ``\\n``-joined) —
    the determinism contract of the scenario generators and the exact
    form :func:`write_events_jsonl` persists.
    """
    import hashlib

    hasher = hashlib.sha256()
    for event in events:
        hasher.update(json.dumps(event_to_dict(event), sort_keys=True).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def write_events_jsonl(events: Iterable[Event], path: str | Path) -> int:
    """Write a mixed event trace; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(
    path: str | Path,
    *,
    on_error: str = "strict",
    quarantine: "Quarantine | None" = None,
) -> Iterator[Event]:
    """Stream mixed events from a JSONL trace (lazily).

    Decoding policy mirrors :func:`repro.io.read_posts_jsonl`: ``strict``
    raises :class:`DatasetError` with the 1-based line number, ``skip``
    drops bad lines, ``quarantine`` retains them in the dead-letter sink.
    """
    from ..resilience.quarantine import check_policy

    check_policy(on_error, quarantine)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if on_error == "strict":
                    raise DatasetError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                if quarantine is not None:
                    quarantine.add(line_number, "invalid_json", str(exc), line)
                continue
            try:
                yield event_from_dict(record)
            except DatasetError as exc:
                if on_error == "strict":
                    raise DatasetError(f"{path}:{line_number}: {exc}") from exc
                if quarantine is not None:
                    quarantine.add(line_number, "invalid_record", str(exc), line)
