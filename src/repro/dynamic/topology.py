"""Versioned topology: edge deltas → graph, components, clique cover.

:class:`TopologyManager` owns the mutable author graph and translates
:class:`~repro.authors.SimilarityMaintainer` edge deltas into the derived
structures every engine layer consumes:

* **graph** — the λa-thresholded similarity graph, mutated in place so
  engines holding a reference (UniBin/IndexedUniBin's live coverage
  checks) see edge flips immediately;
* **connected components** — maintained incrementally: edge additions
  merge components union-find style (relabel the smaller side), edge
  removals trigger a recompute *scoped to the touched components' member
  sets* instead of the whole graph;
* **clique edge cover** — repaired incrementally by :func:`repair_cover`
  (retire invalidated cliques, greedily re-cover orphaned edges, grow new
  cliques around added edges) and optionally validated against
  :func:`~repro.authors.verify_cover` after every change.

Every effective mutation bumps ``version``; no-op deltas (a follow that
crosses no similarity threshold) do not, so engines can skip migration
entirely for them.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ..authors import AuthorGraph, CliqueCover, greedy_clique_cover, verify_cover
from ..authors.incremental import SimilarityMaintainer
from ..errors import GraphError

Edge = tuple[int, int]


@dataclass(frozen=True, slots=True)
class TopologyDelta:
    """One graph version transition: the edges that flipped."""

    version: int
    added: frozenset[Edge] = field(default_factory=frozenset)
    removed: frozenset[Edge] = field(default_factory=frozenset)

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


def scoped_components(graph: AuthorGraph, nodes: Iterable[int]) -> list[frozenset[int]]:
    """Connected components of ``graph`` restricted to ``nodes``.

    The scoped-recompute primitive: BFS never leaves the given node set,
    so recomputing after an edge removal touches only the split candidate,
    not the whole graph. Deterministic (components ordered and explored
    smallest-id first).
    """
    scope = set(nodes)
    remaining = set(scope)
    components: list[frozenset[int]] = []
    while remaining:
        start = min(remaining)
        members = {start}
        queue = deque((start,))
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor in scope and neighbor not in members:
                    members.add(neighbor)
                    queue.append(neighbor)
        remaining -= members
        components.append(frozenset(members))
    return components


def grow_clique(graph: AuthorGraph, a: int, b: int) -> frozenset[int]:
    """Grow a maximal clique around seed edge (a, b), smallest-id first —
    the same deterministic growth rule as
    :func:`~repro.authors.greedy_clique_cover`'s inner loop."""
    clique = {a, b}
    candidates = graph.neighbors(a) & graph.neighbors(b)
    while candidates:
        node = min(candidates)
        clique.add(node)
        candidates = candidates & graph.neighbors(node)
        candidates.discard(node)
    return frozenset(clique)


def repair_cover(
    graph: AuthorGraph,
    cover: CliqueCover,
    added: Iterable[Edge],
    removed: Iterable[Edge],
) -> CliqueCover:
    """Incrementally repair a clique edge cover after an edge delta.

    ``graph`` must already reflect the delta. Cliques containing a removed
    edge are retired; their surviving edges, plus the added edges, are
    re-covered greedily (each uncovered edge seeds a grown clique); nodes
    left clique-less get singletons. The result is a *valid* cover of the
    new graph — CliqueBin's verdicts are cover-independent for any valid
    cover, so repair never has to reproduce the from-scratch greedy one.
    """
    removed_set = {(a, b) if a < b else (b, a) for a, b in removed}
    uncovered: set[Edge] = {(a, b) if a < b else (b, a) for a, b in added}

    cliques: list[frozenset[int]] = []
    cliques_of: dict[int, list[frozenset[int]]] = {}
    orphaned_nodes: set[int] = set()

    def keep(clique: frozenset[int]) -> None:
        cliques.append(clique)
        for node in clique:
            cliques_of.setdefault(node, []).append(clique)

    for clique in cover.cliques:
        members = sorted(clique)
        broken = any(
            (u, v) in removed_set
            for i, u in enumerate(members)
            for v in members[i + 1 :]
        )
        if not broken:
            keep(clique)
            continue
        # Retired: its still-valid edges lose coverage and must be redone;
        # its nodes may end up in no clique at all.
        orphaned_nodes |= clique
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if (u, v) not in removed_set and graph.are_similar(u, v):
                    uncovered.add((u, v))

    def is_covered(u: int, v: int) -> bool:
        return any(v in clique for clique in cliques_of.get(u, ()))

    for u, v in sorted(uncovered):
        if is_covered(u, v):
            continue
        keep(grow_clique(graph, u, v))

    for node in sorted(orphaned_nodes):
        if node not in cliques_of:
            keep(frozenset((node,)))

    return CliqueCover(cliques)


class TopologyManager:
    """The authoritative, versioned view of a churning author topology.

    Args:
        friends: initial followee sets (author → iterable of followee ids);
            the author universe is fixed — follow events change edges of
            the similarity graph, never its node set.
        lambda_a: the author-distance threshold; edges exist at cosine
            similarity ≥ ``1 − lambda_a`` (the
            :class:`~repro.authors.SimilarityMaintainer` cut).
        maintain_cover: keep a repaired global clique cover (needed by the
            single-engine CliqueBin mode; multi-user engines repair
            per-instance covers instead).
        validate_covers: run :func:`~repro.authors.verify_cover` after
            every repair — O(edges · clique²), for tests and debugging.
    """

    def __init__(
        self,
        friends: Mapping[int, Iterable[int]],
        *,
        lambda_a: float,
        maintain_cover: bool = False,
        validate_covers: bool = False,
    ):
        if not 0.0 <= lambda_a < 1.0:
            raise GraphError(
                f"dynamic topology needs lambda_a in [0, 1), got {lambda_a}"
            )
        self.maintainer = SimilarityMaintainer(friends, threshold=1.0 - lambda_a)
        self.graph = AuthorGraph(self.maintainer.authors, self.maintainer.edges())
        self.version = 0
        self.validate_covers = validate_covers
        self.cover: CliqueCover | None = (
            greedy_clique_cover(self.graph) if maintain_cover else None
        )
        # Incremental connected components: node → component id, id → members.
        self._component_of: dict[int, int] = {}
        self._members: dict[int, set[int]] = {}
        self._next_cid = 0
        for start in sorted(self.graph.nodes):
            if start in self._component_of:
                continue
            members = self._collect(start, set(self.graph.nodes))
            cid = self._next_cid
            self._next_cid += 1
            self._members[cid] = members
            for node in members:
                self._component_of[node] = cid

    # -- queries -----------------------------------------------------------

    @property
    def component_count(self) -> int:
        return len(self._members)

    def component_of(self, node: int) -> frozenset[int]:
        """The current component containing ``node``."""
        return frozenset(self._members[self._component_of[node]])

    def components(self) -> list[frozenset[int]]:
        """All current components, deterministically ordered."""
        return sorted(
            (frozenset(members) for members in self._members.values()),
            key=lambda c: min(c),
        )

    # -- mutation ----------------------------------------------------------

    def follow(self, author: int, followee: int) -> TopologyDelta:
        """Apply a follow event; return the (possibly empty) edge delta."""
        return self._apply(self.maintainer.follow(author, followee))

    def unfollow(self, author: int, followee: int) -> TopologyDelta:
        """Apply an unfollow event; return the (possibly empty) edge delta."""
        return self._apply(self.maintainer.unfollow(author, followee))

    def _apply(self, delta: dict[str, set[Edge]]) -> TopologyDelta:
        added = frozenset(delta["added"])
        removed = frozenset(delta["removed"])
        if not added and not removed:
            return TopologyDelta(self.version)
        self.version += 1
        for a, b in removed:
            self.graph.remove_edge(a, b)
        for a, b in added:
            self.graph.add_edge(a, b)
        self._update_components(added, removed)
        if self.cover is not None:
            self.cover = repair_cover(self.graph, self.cover, added, removed)
            if self.validate_covers:
                verify_cover(self.graph, self.cover)
        return TopologyDelta(self.version, added, removed)

    # -- component maintenance ---------------------------------------------

    def _collect(self, start: int, scope: set[int]) -> set[int]:
        """BFS from ``start`` over the current graph, restricted to
        ``scope`` (the scoped-recompute primitive)."""
        members = {start}
        queue = deque((start,))
        while queue:
            node = queue.popleft()
            for neighbor in self.graph.neighbors(node):
                if neighbor in scope and neighbor not in members:
                    members.add(neighbor)
                    queue.append(neighbor)
        return members

    def _update_components(
        self, added: frozenset[Edge], removed: frozenset[Edge]
    ) -> None:
        if removed:
            # Scoped recompute: only the components that lost an edge can
            # split, and only within their own member sets — additions that
            # reach outside the scope are handled by the merge pass below.
            touched = {
                self._component_of[endpoint]
                for edge in removed
                for endpoint in edge
            }
            scope: set[int] = set()
            for cid in touched:
                scope |= self._members.pop(cid)
            remaining = set(scope)
            while remaining:
                start = min(remaining)
                members = self._collect(start, scope)
                remaining -= members
                cid = self._next_cid
                self._next_cid += 1
                self._members[cid] = members
                for node in members:
                    self._component_of[node] = cid
        for a, b in added:
            ca, cb = self._component_of[a], self._component_of[b]
            if ca == cb:
                continue
            # Union-find flavoured merge: relabel the smaller side.
            if len(self._members[ca]) < len(self._members[cb]):
                ca, cb = cb, ca
            absorbed = self._members.pop(cb)
            for node in absorbed:
                self._component_of[node] = ca
            self._members[ca] |= absorbed
