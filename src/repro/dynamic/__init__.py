"""Dynamic topology subsystem: live follow/unfollow on a running engine.

The paper fixes the author similarity graph up front; this package treats
topology change as part of the stream. A single mixed event stream of
``post`` / ``follow`` / ``unfollow`` records drives:

* :mod:`.events` — the event-record schema, JSONL codec and decoder;
* :mod:`.topology` — a versioned :class:`TopologyManager` that feeds
  :class:`~repro.authors.SimilarityMaintainer` edge deltas into
  incremental connected-component maintenance and clique-cover repair;
* :mod:`.migrate` — hot migration of live engine state per graph version
  (bin patching, cover swaps, instance split/merge with carried windows);
* :mod:`.engine` — :class:`DynamicDiversifier` (single-user) and
  :class:`DynamicMultiUser` (shared-component, optionally sharded over
  worker processes) consuming the mixed stream.

Semantics are **state-preserving rebuild**: a topology change keeps every
already-admitted in-window post admitted and re-indexes it under the new
graph, so after any prefix of the event stream the engine answers exactly
as one torn down and rebuilt from scratch on the current graph with the
carried window re-seeded — the contract the differential suite enforces.
"""

from .engine import DynamicDiversifier, DynamicMultiUser
from .events import (
    FollowEvent,
    UnfollowEvent,
    event_from_dict,
    event_to_dict,
    read_events_jsonl,
    write_events_jsonl,
)
from .migrate import RebuildMultiUser, patch_engine
from .topology import TopologyDelta, TopologyManager, repair_cover

__all__ = [
    "DynamicDiversifier",
    "DynamicMultiUser",
    "FollowEvent",
    "RebuildMultiUser",
    "TopologyDelta",
    "TopologyManager",
    "UnfollowEvent",
    "event_from_dict",
    "event_to_dict",
    "patch_engine",
    "read_events_jsonl",
    "repair_cover",
    "write_events_jsonl",
]
