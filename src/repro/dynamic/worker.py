"""Dynamic shard worker: a process hosting migratable engine instances.

Unlike the static :mod:`repro.parallel.worker`, a dynamic worker starts
**empty** — instances are born, split, merged and retired while the stream
runs, so the coordinator installs and removes them over the pipe instead
of baking a component list into the startup spec. Re-sharding after a
topology change is therefore just placement: the coordinator installs each
new instance on the least-loaded worker.

========  ============================================  ========================
command   payload                                       reply payload
========  ============================================  ========================
install   (iid, subgraph, carried posts, last_ts)       None
batch     [(seq, post, [iid, ...]), …]                  [(seq, [admitting iid, …]), …]
patch     (iid, added edges, removed edges)             None
peek      iid                                           (admitted posts, last_ts)
extract   iid (removes the instance)                    (admitted posts, last_ts, stats state)
stats     —                                             merged RunStats state dict
stored    —                                             resident post copies
purge     now                                           None
states    —                                             [(iid, engine state dict), …]
load      (iid, engine state dict)                      None
reset     — (drops every instance)                      None
stop      —                                             None (worker exits)
========  ============================================  ========================

Every reply is ``("ok", payload)`` or ``("error", type_name, message)``;
the parent converts errors into :class:`~repro.errors.ParallelError`.
``patch`` mutates the instance's own subgraph and re-indexes via
:func:`~repro.dynamic.migrate.patch_engine`, exactly what the coordinator
does to in-process instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import RunStats, StreamDiversifier, Thresholds
from .migrate import mutate_subgraph, patch_engine, seeded_engine


@dataclass(frozen=True)
class DynamicShardSpec:
    """Startup spec (picklable): how to build engines, not which ones."""

    algorithm: str
    thresholds: Thresholds


def dynamic_worker_main(conn, spec: DynamicShardSpec) -> None:
    """Worker entry point: serve commands until ``stop`` or pipe close."""
    engines: dict[int, StreamDiversifier] = {}
    conn.send(("ok", "ready"))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            if command == "batch":
                out = []
                for seq, post, iids in message[1]:
                    admitted = [iid for iid in iids if engines[iid].offer(post)]
                    out.append((seq, admitted))
                conn.send(("ok", out))
            elif command == "install":
                iid, subgraph, carried, last_timestamp = message[1]
                engines[iid] = seeded_engine(
                    spec.algorithm, spec.thresholds, subgraph, carried, last_timestamp
                )
                conn.send(("ok", None))
            elif command == "patch":
                iid, added, removed = message[1]
                engine = engines[iid]
                mutate_subgraph(engine.graph, added, removed)
                patch_engine(engine, added, removed)
                conn.send(("ok", None))
            elif command == "peek":
                engine = engines[message[1]]
                conn.send(("ok", (engine.admitted_posts(), engine.last_timestamp)))
            elif command == "extract":
                engine = engines.pop(message[1])
                conn.send(
                    (
                        "ok",
                        (
                            engine.admitted_posts(),
                            engine.last_timestamp,
                            engine.stats.state_dict(),
                        ),
                    )
                )
            elif command == "stats":
                total = RunStats()
                for engine in engines.values():
                    total.merge(engine.stats)
                conn.send(("ok", total.state_dict()))
            elif command == "stored":
                conn.send(
                    ("ok", sum(engine.stored_copies() for engine in engines.values()))
                )
            elif command == "purge":
                for engine in engines.values():
                    engine.purge(message[1])
                conn.send(("ok", None))
            elif command == "states":
                conn.send(
                    ("ok", [(iid, engines[iid].state_dict()) for iid in sorted(engines)])
                )
            elif command == "load":
                iid, state = message[1]
                engines[iid].load_state(state)
                conn.send(("ok", None))
            elif command == "reset":
                engines.clear()
                conn.send(("ok", None))
            elif command == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", "ValueError", f"unknown command {command!r}"))
        except Exception as exc:
            # Engine errors are reported, not fatal: the worker keeps
            # serving so the parent can still checkpoint or shut down.
            conn.send(("error", type(exc).__name__, str(exc)))
    conn.close()
