"""Dynamic shard worker: a process hosting migratable engine instances.

Unlike the static :mod:`repro.parallel.worker`, a dynamic worker starts
**empty** — instances are born, split, merged and retired while the stream
runs, so the coordinator installs and removes them over the pipe instead
of baking a component list into the startup spec. Re-sharding after a
topology change is therefore just placement: the coordinator installs each
new instance on the least-loaded worker.

========  ============================================  ========================
command   payload                                       reply payload
========  ============================================  ========================
install   (iid, subgraph, carried posts, last_ts)       None
batch     [(seq, post, [iid, ...]), …]                  [(seq, [admitting iid, …]), …]
patch     (iid, added edges, removed edges)             None
peek      iid                                           (admitted posts, last_ts)
extract   iid (removes the instance)                    (admitted posts, last_ts, stats state)
stats     —                                             merged RunStats state dict
stored    —                                             resident post copies
purge     now                                           None
states    —                                             [(iid, engine state dict), …]
snapshot  —                                             [(iid, subgraph, state), …]
load      (iid, engine state dict)                      None
reset     — (drops every instance)                      None
ping      —                                             "pong" (liveness probe)
stop      —                                             None (worker exits)
========  ============================================  ========================

Every reply is ``("ok", payload)`` or ``("error", type_name, message)``;
the parent converts errors into :class:`~repro.errors.ParallelError`.
``patch`` mutates the instance's own subgraph and re-indexes via
:func:`~repro.dynamic.migrate.patch_engine`, exactly what the coordinator
does to in-process instances.

``snapshot`` is the supervision checkpoint: unlike ``states`` it carries
each instance's *subgraph* too, because a crashed worker's replacement
must rebuild engines on the graph as it stood at checkpoint time — later
journalled ``patch``/``install`` commands re-apply the topology churn.
Dispatch lives in :class:`DynamicShardServer`, shared by the worker main
loop, supervised journal replay, and degraded in-parent mode; a
:class:`~repro.resilience.WorkerFaultPlan` on the spec fires only in
:func:`dynamic_worker_main`, at the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core import RunStats, StreamDiversifier, Thresholds
from ..resilience.faults import WorkerFaultPlan, execute_worker_fault
from ..supervise import WorkerProtocol
from .migrate import mutate_subgraph, patch_engine, seeded_engine


@dataclass(frozen=True)
class DynamicShardSpec:
    """Startup spec (picklable): how to build engines, not which ones."""

    algorithm: str
    thresholds: Thresholds
    faults: WorkerFaultPlan | None = None


class DynamicShardServer:
    """Dispatch one dynamic worker's commands against its instances.

    Fault-free by construction (injection happens only in
    :func:`dynamic_worker_main`), so the supervisor runs this same class
    in-parent for degraded shards and journal replay.
    """

    def __init__(self, spec: DynamicShardSpec):
        self.spec = spec
        self.engines: dict[int, StreamDiversifier] = {}

    def handle(self, message: tuple):
        """Execute one command tuple; return the reply payload."""
        command = message[0]
        engines = self.engines
        if command == "batch":
            out = []
            for seq, post, iids in message[1]:
                admitted = [iid for iid in iids if engines[iid].offer(post)]
                out.append((seq, admitted))
            return out
        if command == "install":
            iid, subgraph, carried, last_timestamp = message[1]
            engines[iid] = seeded_engine(
                self.spec.algorithm,
                self.spec.thresholds,
                subgraph,
                carried,
                last_timestamp,
            )
            return None
        if command == "patch":
            iid, added, removed = message[1]
            engine = engines[iid]
            mutate_subgraph(engine.graph, added, removed)
            patch_engine(engine, added, removed)
            return None
        if command == "peek":
            engine = engines[message[1]]
            return engine.admitted_posts(), engine.last_timestamp
        if command == "extract":
            engine = engines.pop(message[1])
            return (
                engine.admitted_posts(),
                engine.last_timestamp,
                engine.stats.state_dict(),
            )
        if command == "stats":
            total = RunStats()
            for engine in engines.values():
                total.merge(engine.stats)
            return total.state_dict()
        if command == "stored":
            return sum(engine.stored_copies() for engine in engines.values())
        if command == "purge":
            for engine in engines.values():
                engine.purge(message[1])
            return None
        if command == "states":
            return [(iid, engines[iid].state_dict()) for iid in sorted(engines)]
        if command == "snapshot":
            return [
                (iid, engines[iid].graph, engines[iid].state_dict())
                for iid in sorted(engines)
            ]
        if command == "load":
            iid, state = message[1]
            engines[iid].load_state(state)
            return None
        if command == "reset":
            engines.clear()
            return None
        if command == "ping":
            return "pong"
        if command == "stop":
            return None
        raise ValueError(f"unknown command {command!r}")


def dynamic_worker_main(conn, spec: DynamicShardSpec) -> None:
    """Worker entry point: serve commands until ``stop`` or pipe close."""
    server = DynamicShardServer(spec)
    faults = spec.faults
    batches = 0
    conn.send(("ok", "ready"))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            payload = server.handle(message)
        except Exception as exc:
            # Engine errors are reported, not fatal: the worker keeps
            # serving so the parent can still checkpoint or shut down.
            conn.send(("error", type(exc).__name__, str(exc)))
            continue
        if command == "batch" and faults is not None:
            batches += 1
            action = faults.action_for(batches)
            if action is not None and execute_worker_fault(action, faults, conn):
                continue  # corrupt reply already sent
        conn.send(("ok", payload))
        if command == "stop":
            break
    conn.close()


#: Commands that change dynamic-worker state and must be journalled.
MUTATING_COMMANDS = frozenset(
    {"install", "batch", "patch", "load", "purge", "reset", "extract"}
)


def _posts_of(message: tuple) -> int:
    return len(message[1]) if message[0] == "batch" else 0


def _restore_messages(payload) -> list[tuple]:
    """Turn a ``snapshot`` reply back into install + load commands.

    Installing on the snapshotted subgraph with an empty carried window
    and then loading the state dict reproduces the engine bit-for-bit —
    the same two-step the coordinator's own ``load_state`` performs.
    """
    messages: list[tuple] = []
    for iid, subgraph, state in payload:
        messages.append(("install", (iid, subgraph, [], float("-inf"))))
        messages.append(("load", (iid, state)))
    return messages


def dynamic_supervision_protocol() -> WorkerProtocol:
    """The dynamic family's adapter for :class:`ShardSupervisor`."""
    return WorkerProtocol(
        target=dynamic_worker_main,
        mutating=MUTATING_COMMANDS,
        checkpoint_command=("snapshot",),
        restore_messages=_restore_messages,
        make_server=DynamicShardServer,
        strip_faults=lambda spec: replace(spec, faults=None),
        posts_of=_posts_of,
    )
