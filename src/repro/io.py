"""File formats: JSONL post traces, author graphs, subscription tables.

A deployment has its own posts and its own social graph; these helpers
define the interchange formats the CLI's ``diversify`` command consumes:

* **posts.jsonl** — one JSON object per line:
  ``{"post_id": 1, "author": 42, "text": "...", "timestamp": 12.5}``
  (an optional ``"fingerprint"`` carries a precomputed SimHash; otherwise
  it is computed from ``text`` on load).
* **graph.json** — ``{"nodes": [...], "edges": [[a, b], ...]}``.
* **subscriptions.json** — ``{"<user_id>": [author, ...], ...}``.

All writers are deterministic (sorted keys) so traces diff cleanly.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from .authors import AuthorGraph
from .core import Post
from .errors import DatasetError
from .multiuser import SubscriptionTable

_POST_FIELDS = ("post_id", "author", "text", "timestamp")


def post_to_dict(post: Post) -> dict[str, object]:
    """JSON-safe dict form of a post (fingerprint included)."""
    return {
        "post_id": post.post_id,
        "author": post.author,
        "text": post.text,
        "timestamp": post.timestamp,
        "fingerprint": post.fingerprint,
    }


def post_from_dict(record: dict[str, object]) -> Post:
    """Parse one JSONL record into a :class:`Post`.

    A missing fingerprint is computed from the text (normalised mode); a
    present one is trusted, enabling lossless round-trips and precomputed
    pipelines.
    """
    missing = [f for f in _POST_FIELDS if f not in record]
    if missing:
        raise DatasetError(f"post record missing fields {missing}: {record!r}")
    fingerprint = record.get("fingerprint")
    if fingerprint is None:
        return Post.create(
            int(record["post_id"]),  # type: ignore[arg-type]
            int(record["author"]),  # type: ignore[arg-type]
            str(record["text"]),
            float(record["timestamp"]),  # type: ignore[arg-type]
        )
    return Post(
        post_id=int(record["post_id"]),  # type: ignore[arg-type]
        author=int(record["author"]),  # type: ignore[arg-type]
        text=str(record["text"]),
        timestamp=float(record["timestamp"]),  # type: ignore[arg-type]
        fingerprint=int(fingerprint),  # type: ignore[arg-type]
    )


def write_posts_jsonl(posts: Iterable[Post], path: str | Path) -> int:
    """Write posts to a JSONL trace; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for post in posts:
            handle.write(json.dumps(post_to_dict(post), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_posts_jsonl(path: str | Path) -> Iterator[Post]:
    """Stream posts from a JSONL trace (lazily — traces can be large)."""
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            yield post_from_dict(record)


def write_graph_json(graph: AuthorGraph, path: str | Path) -> None:
    """Write an author graph as ``{"nodes": [...], "edges": [[a,b], ...]}``."""
    payload = {
        "nodes": sorted(graph.nodes),
        "edges": sorted([a, b] for a, b in graph.edges()),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def read_graph_json(path: str | Path) -> AuthorGraph:
    """Load an author graph written by :func:`write_graph_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "nodes" not in payload:
        raise DatasetError(f"{path}: expected an object with 'nodes'/'edges'")
    return AuthorGraph(
        (int(n) for n in payload["nodes"]),
        ((int(a), int(b)) for a, b in payload.get("edges", [])),
    )


def write_subscriptions_json(table: SubscriptionTable, path: str | Path) -> None:
    """Write a subscription table as ``{"user": [authors...]}``."""
    payload = {
        str(user): sorted(table.subscriptions_of(user)) for user in table.users
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def read_subscriptions_json(path: str | Path) -> SubscriptionTable:
    """Load a subscription table written by :func:`write_subscriptions_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise DatasetError(f"{path}: expected a user -> authors object")
    return SubscriptionTable(
        {int(user): [int(a) for a in authors] for user, authors in payload.items()}
    )
