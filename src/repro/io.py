"""File formats: JSONL post traces, author graphs, subscription tables.

A deployment has its own posts and its own social graph; these helpers
define the interchange formats the CLI's ``diversify`` command consumes:

* **posts.jsonl** — one JSON object per line:
  ``{"post_id": 1, "author": 42, "text": "...", "timestamp": 12.5}``
  (an optional ``"fingerprint"`` carries a precomputed SimHash; otherwise
  it is computed from ``text`` on load).
* **graph.json** — ``{"nodes": [...], "edges": [[a, b], ...]}``.
* **subscriptions.json** — ``{"<user_id>": [author, ...], ...}``.
* **friends.json** — ``{"<author_id>": [followee, ...], ...}``: the
  initial followee relation the dynamic (``--events``) mode derives its
  similarity graph from (see :mod:`repro.dynamic`).

Mixed **events.jsonl** traces (tagged post/follow/unfollow records) are
handled by :mod:`repro.dynamic.events`.

All writers are deterministic (sorted keys) so traces diff cleanly.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import TYPE_CHECKING

from .authors import AuthorGraph
from .core import Post
from .errors import DatasetError
from .multiuser import SubscriptionTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (resilience -> io)
    from .resilience import Quarantine

_POST_FIELDS = ("post_id", "author", "text", "timestamp")


def _int_field(record: dict[str, object], name: str) -> int:
    """Coerce an integer field, naming the field in the failure."""
    value = record[name]
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise DatasetError(f"field {name!r} must be an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise DatasetError(
            f"field {name!r} must be an integer, got {value!r}"
        ) from exc


def _timestamp_field(record: dict[str, object]) -> float:
    """Coerce ``timestamp`` to a finite float (NaN/inf are poison)."""
    value = record["timestamp"]
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise DatasetError(
            f"field 'timestamp' must be a number, got {value!r}"
        )
    try:
        timestamp = float(value)
    except (TypeError, ValueError) as exc:
        raise DatasetError(
            f"field 'timestamp' must be a number, got {value!r}"
        ) from exc
    if not math.isfinite(timestamp):
        raise DatasetError(
            f"field 'timestamp' must be finite, got {timestamp!r}"
        )
    return timestamp


def post_to_dict(post: Post) -> dict[str, object]:
    """JSON-safe dict form of a post (fingerprint included)."""
    return {
        "post_id": post.post_id,
        "author": post.author,
        "text": post.text,
        "timestamp": post.timestamp,
        "fingerprint": post.fingerprint,
    }


def post_from_dict(record: dict[str, object]) -> Post:
    """Parse one JSONL record into a :class:`Post`.

    A missing fingerprint is computed from the text (normalised mode); a
    present one is trusted, enabling lossless round-trips and precomputed
    pipelines.
    """
    if not isinstance(record, dict):
        raise DatasetError(f"post record must be a JSON object, got {record!r}")
    missing = [f for f in _POST_FIELDS if f not in record]
    if missing:
        raise DatasetError(f"post record missing fields {missing}: {record!r}")
    post_id = _int_field(record, "post_id")
    author = _int_field(record, "author")
    text = str(record["text"])
    timestamp = _timestamp_field(record)
    fingerprint = record.get("fingerprint")
    if fingerprint is None:
        return Post.create(post_id, author, text, timestamp)
    return Post(
        post_id=post_id,
        author=author,
        text=text,
        timestamp=timestamp,
        fingerprint=_int_field(record, "fingerprint"),
    )


def write_posts_jsonl(posts: Iterable[Post], path: str | Path) -> int:
    """Write posts to a JSONL trace; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for post in posts:
            handle.write(json.dumps(post_to_dict(post), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_posts_jsonl(
    path: str | Path,
    *,
    on_error: str = "strict",
    quarantine: "Quarantine | None" = None,
) -> Iterator[Post]:
    """Stream posts from a JSONL trace (lazily — traces can be large).

    ``on_error`` selects the decoding policy (``strict`` raises
    :class:`DatasetError` on the first bad line, with its 1-based line
    number and the offending field; ``skip`` drops bad lines and counts
    them in ``quarantine`` when one is given; ``quarantine`` retains them
    in the required dead-letter sink — see
    :mod:`repro.resilience.quarantine`).
    """
    from .resilience.quarantine import check_policy

    check_policy(on_error, quarantine)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if on_error == "strict":
                    raise DatasetError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                if quarantine is not None:
                    quarantine.add(line_number, "invalid_json", str(exc), line)
                continue
            try:
                yield post_from_dict(record)
            except DatasetError as exc:
                if on_error == "strict":
                    raise DatasetError(
                        f"{path}:{line_number}: {exc}"
                    ) from exc
                if quarantine is not None:
                    quarantine.add(line_number, "invalid_record", str(exc), line)


def write_graph_json(graph: AuthorGraph, path: str | Path) -> None:
    """Write an author graph as ``{"nodes": [...], "edges": [[a,b], ...]}``."""
    payload = {
        "nodes": sorted(graph.nodes),
        "edges": sorted([a, b] for a, b in graph.edges()),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def read_graph_json(path: str | Path) -> AuthorGraph:
    """Load an author graph written by :func:`write_graph_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "nodes" not in payload:
        raise DatasetError(f"{path}: expected an object with 'nodes'/'edges'")
    return AuthorGraph(
        (int(n) for n in payload["nodes"]),
        ((int(a), int(b)) for a, b in payload.get("edges", [])),
    )


def write_friends_json(
    friends: Mapping[int, Iterable[int]], path: str | Path
) -> None:
    """Write a followee relation as ``{"author": [followees...]}`` — the
    dynamic subsystem's initial-topology input (author universe = keys)."""
    payload = {
        str(author): sorted(set(followees)) for author, followees in friends.items()
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def read_friends_json(path: str | Path) -> dict[int, set[int]]:
    """Load a followee relation written by :func:`write_friends_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise DatasetError(f"{path}: expected an author -> followees object")
    return {
        int(author): {int(f) for f in followees}
        for author, followees in payload.items()
    }


def write_subscriptions_json(table: SubscriptionTable, path: str | Path) -> None:
    """Write a subscription table as ``{"user": [authors...]}``."""
    payload = {
        str(user): sorted(table.subscriptions_of(user)) for user in table.users
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def read_subscriptions_json(path: str | Path) -> SubscriptionTable:
    """Load a subscription table written by :func:`write_subscriptions_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise DatasetError(f"{path}: expected a user -> authors object")
    return SubscriptionTable(
        {int(user): [int(a) for a in authors] for user, authors in payload.items()}
    )
