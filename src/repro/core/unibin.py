"""UniBin (paper §4.1): a single global post bin.

Every admitted post lives in one time-windowed bin. An arriving post is
compared, newest first, against every admitted post in the window, checking
the full three-dimensional coverage predicate per candidate. Minimal memory
(one copy per admitted post, the §4.4 ``r·n``), maximal comparisons
(``r·n`` per arrival).

The newest-first scan has two implementations with identical semantics:
the scalar loop below, and the batched popcount kernel of
:class:`repro.simhash.CoverageKernel`, which mirrors the bin in columnar
numpy arrays. Dispatch is hybrid and lazy: a vectorized sweep carries
~10µs of fixed numpy overhead, so scans shorter than
``VECTOR_MIN_SCAN`` always take the scalar loop, and the kernel is only
*built* (an O(window) rebuild from the bin) the first time a scan is
long enough to vectorize — engines whose windows never grow past the
threshold pay zero kernel maintenance. The kernel is only eligible on a
plain in-memory bin (no tiered storage) in newest-first order, and it
is bit-exact — same verdicts, same ``comparisons`` accounting, same
probe-limit truncation — so checkpoints and receiver sets do not depend
on which path ran; the differential suite asserts as much.
"""

from __future__ import annotations

from ..authors import AuthorGraph
from ..simhash import coverage as _coverage
from ..simhash.coverage import CoverageKernel
from .base import StreamDiversifier
from .post import Post
from .thresholds import Thresholds

#: Exceptions that mean a post's fields cannot be mirrored into the
#: kernel's fixed-width columns (fingerprint outside uint64, author
#: outside int64, non-numeric timestamp). The engine then abandons the
#: kernel and the scalar path takes over — verdicts are unaffected.
_KERNEL_ENCODE_ERRORS = (OverflowError, ValueError, TypeError)


class UniBin(StreamDiversifier):
    """The single-bin SPSD algorithm."""

    name = "unibin"

    def __init__(
        self,
        thresholds: Thresholds,
        graph: AuthorGraph | None,
        *,
        newest_first: bool = True,
        storage=None,
    ):
        super().__init__(thresholds, graph, newest_first=newest_first, storage=storage)
        self._bin = self._new_bin()
        self._kernel: CoverageKernel | None = None
        self._kernel_eligible = self._kernel_supported()

    # -- vectorized-kernel bookkeeping ------------------------------------

    def _kernel_supported(self) -> bool:
        """Whether this configuration may build a columnar mirror.

        The kernel shadows a plain in-memory deque scanned newest-first;
        tiered storage (posts may live on disk) and the oldest-first
        ablation keep the scalar path.
        """
        if self._storage is not None or not self.newest_first:
            return False
        return _coverage.kernel_enabled()

    @property
    def kernel_active(self) -> bool:
        """True while probes run on the vectorized kernel (introspection
        for tests and the memory gauges). Activation is lazy: False until
        the window first grows past ``VECTOR_MIN_SCAN``."""
        return self._kernel is not None

    def _expire_window(self, now: float) -> int:
        """Expire the bin at ``now`` and keep the kernel in lockstep."""
        dropped = self._bin.expire(now, self.thresholds.lambda_t)
        if dropped and self._kernel is not None:
            self._kernel.drop_oldest(dropped)
        return dropped

    def _activate_kernel(self) -> CoverageKernel | None:
        """Materialise the columnar mirror from the live bin (first scan
        long enough to vectorize). An unencodable resident post disables
        the kernel permanently — rebuilding per probe would turn one bad
        post into an O(window) tax on every offer."""
        kernel = CoverageKernel(capacity=2 * len(self._bin))
        try:
            for post in self._bin:
                kernel.append(post.fingerprint, post.timestamp, post.author)
        except _KERNEL_ENCODE_ERRORS:
            self._kernel_eligible = False
            return None
        self._kernel = kernel
        return kernel

    def _rebuild_kernel(self) -> None:
        """Checkpoint restore: drop any mirror and re-arm lazy activation
        (``load_state`` restores ``newest_first`` before calling here)."""
        self._kernel = None
        self._kernel_eligible = self._kernel_supported()

    # -- the greedy decision ----------------------------------------------

    def _is_covered(self, post: Post) -> bool:
        stats = self.stats
        # Expired posts sit at the left end of the deque; dropping them now
        # keeps the stored-copy accounting tight (they could never match)
        # and leaves only in-window posts, so the scan below needs no
        # per-candidate cutoff check. This is the single expiry of the
        # offer: _admit relies on it instead of expiring again.
        stats.record_evictions(self._expire_window(post.timestamp))
        limit = self._probe_limit
        # Hybrid dispatch: one vectorized sweep carries ~10µs of fixed
        # numpy overhead, so short scans (small windows, or a tight probe
        # limit) stay on the scalar loop — it wins outright there. The
        # mirror itself is built lazily on the first long-enough scan, so
        # engines with persistently small windows never maintain one.
        kernel = None
        n = len(self._bin)
        scan = n if limit is None or limit > n else limit
        if scan >= _coverage.VECTOR_MIN_SCAN:
            kernel = self._kernel
            if kernel is None and self._kernel_eligible:
                kernel = self._activate_kernel()
        if kernel is not None:
            checker = self.checker
            verdict = kernel.probe(
                post.fingerprint,
                post.author,
                lambda_c=self.thresholds.lambda_c,
                limit=limit,
                author_free=checker._author_free,
                graph=checker.graph,
            )
            if verdict is not None:
                covered, checked = verdict
                stats.comparisons += checked
                return covered
            # The probing fingerprint itself does not fit uint64: scan
            # this one post scalar; the mirrored window stays valid.
        covers = self.checker.covers
        if self.newest_first:
            checked = 0
            if limit is None:
                for candidate in reversed(self._bin.data):
                    checked += 1
                    if covers(post, candidate):
                        stats.comparisons += checked
                        return True
            else:
                # Degraded mode (memory governor): bound the fan-out. A
                # truncated scan can only miss a coverer, i.e. admit extra.
                for candidate in reversed(self._bin.data):
                    checked += 1
                    if covers(post, candidate):
                        stats.comparisons += checked
                        return True
                    if checked >= limit:
                        break
            stats.comparisons += checked
            return False
        # Oldest-first ablation order keeps the generator path.
        checked = 0
        for candidate in self._bin.scan(
            post.timestamp, self.thresholds.lambda_t, newest_first=False
        ):
            checked += 1
            stats.comparisons += 1
            if covers(post, candidate):
                return True
            if checked == limit:
                break
        return False

    def _admit(self, post: Post) -> None:
        # _is_covered already expired the bin at this exact timestamp, so
        # the deque holds only in-window posts; appending keeps it ordered.
        self._bin.append(post)
        kernel = self._kernel
        if kernel is not None:
            try:
                kernel.append(post.fingerprint, post.timestamp, post.author)
            except _KERNEL_ENCODE_ERRORS:
                self._kernel = None
                self._kernel_eligible = False
        self.stats.record_insertions(1)

    def purge(self, now: float | None = None) -> None:
        self.stats.record_evictions(self._expire_window(self._now(now)))

    def stored_copies(self) -> int:
        return len(self._bin)

    def admitted_posts(self) -> list[Post]:
        return sorted(self._bin, key=lambda p: (p.timestamp, p.post_id))

    def spill(self) -> int:
        return self._flush_bin(self._bin)

    def memory_breakdown(self) -> dict[str, int]:
        from ..storage.accounting import estimate_bin_bytes

        breakdown = {"window": estimate_bin_bytes(self._bin)}
        if self._kernel is not None:
            breakdown["kernel"] = self._kernel.nbytes()
        return breakdown

    def _index_state(self) -> dict[str, object]:
        return {"bin": list(self._bin)}

    def _load_index_state(self, state: dict[str, object]) -> None:
        self._bin = self._new_bin()
        for post in state["bin"]:  # type: ignore[union-attr]
            self._bin.append(post)
        # ``load_state`` restores ``newest_first`` before calling here, so
        # the rebuild sees the checkpointed scan order.
        self._rebuild_kernel()
