"""UniBin (paper §4.1): a single global post bin.

Every admitted post lives in one time-windowed bin. An arriving post is
compared, newest first, against every admitted post in the window, checking
the full three-dimensional coverage predicate per candidate. Minimal memory
(one copy per admitted post, the §4.4 ``r·n``), maximal comparisons
(``r·n`` per arrival).
"""

from __future__ import annotations

from ..authors import AuthorGraph
from .base import StreamDiversifier
from .post import Post
from .thresholds import Thresholds


class UniBin(StreamDiversifier):
    """The single-bin SPSD algorithm."""

    name = "unibin"

    def __init__(
        self,
        thresholds: Thresholds,
        graph: AuthorGraph | None,
        *,
        newest_first: bool = True,
        storage=None,
    ):
        super().__init__(thresholds, graph, newest_first=newest_first, storage=storage)
        self._bin = self._new_bin()

    def _is_covered(self, post: Post) -> bool:
        covers = self.checker.covers
        stats = self.stats
        # Expired posts sit at the left end of the deque; dropping them now
        # keeps the stored-copy accounting tight (they could never match)
        # and leaves only in-window posts, so the scan below needs no
        # per-candidate cutoff check. This is the single expiry of the
        # offer: _admit relies on it instead of expiring again.
        stats.record_evictions(
            self._bin.expire(post.timestamp, self.thresholds.lambda_t)
        )
        limit = self._probe_limit
        if self.newest_first:
            checked = 0
            if limit is None:
                for candidate in reversed(self._bin.data):
                    checked += 1
                    if covers(post, candidate):
                        stats.comparisons += checked
                        return True
            else:
                # Degraded mode (memory governor): bound the fan-out. A
                # truncated scan can only miss a coverer, i.e. admit extra.
                for candidate in reversed(self._bin.data):
                    checked += 1
                    if covers(post, candidate):
                        stats.comparisons += checked
                        return True
                    if checked >= limit:
                        break
            stats.comparisons += checked
            return False
        # Oldest-first ablation order keeps the generator path.
        checked = 0
        for candidate in self._bin.scan(
            post.timestamp, self.thresholds.lambda_t, newest_first=False
        ):
            checked += 1
            stats.comparisons += 1
            if covers(post, candidate):
                return True
            if checked == limit:
                break
        return False

    def _admit(self, post: Post) -> None:
        # _is_covered already expired the bin at this exact timestamp, so
        # the deque holds only in-window posts; appending keeps it ordered.
        self._bin.append(post)
        self.stats.record_insertions(1)

    def purge(self, now: float | None = None) -> None:
        self.stats.record_evictions(
            self._bin.expire(self._now(now), self.thresholds.lambda_t)
        )

    def stored_copies(self) -> int:
        return len(self._bin)

    def admitted_posts(self) -> list[Post]:
        return sorted(self._bin, key=lambda p: (p.timestamp, p.post_id))

    def spill(self) -> int:
        return self._flush_bin(self._bin)

    def memory_breakdown(self) -> dict[str, int]:
        from ..storage.accounting import estimate_bin_bytes

        return {"window": estimate_bin_bytes(self._bin)}

    def _index_state(self) -> dict[str, object]:
        return {"bin": list(self._bin)}

    def _load_index_state(self, state: dict[str, object]) -> None:
        self._bin = self._new_bin()
        for post in state["bin"]:  # type: ignore[union-attr]
            self._bin.append(post)
