"""The social post model (paper §2).

A post is the unit flowing through every algorithm: an author id, text, a
timestamp, and a SimHash fingerprint. Fingerprints are computed once at
construction (via :meth:`Post.create`) because every algorithm compares the
same fingerprint against many candidates; storing it on the post keeps the
hot loop free of hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simhash import simhash


@dataclass(frozen=True, slots=True)
class Post:
    """An immutable social post.

    Attributes:
        post_id: unique, monotonically increasing identifier within a stream.
        author: author id (an int from the author universe).
        text: raw textual content.
        timestamp: seconds since stream epoch (float).
        fingerprint: 64-bit SimHash of the (normalised) text.
    """

    post_id: int
    author: int
    text: str
    timestamp: float
    fingerprint: int = field(repr=False)

    @classmethod
    def create(
        cls,
        post_id: int,
        author: int,
        text: str,
        timestamp: float,
        *,
        normalized: bool = True,
    ) -> "Post":
        """Build a post, computing its SimHash fingerprint.

        ``normalized`` selects the paper's Figure-4 (default) vs Figure-3
        fingerprinting mode and should match the λc calibration in use.
        """
        return cls(
            post_id=post_id,
            author=author,
            text=text,
            timestamp=timestamp,
            fingerprint=simhash(text, normalized=normalized),
        )
