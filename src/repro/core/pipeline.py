"""Consumer-facing streaming pipeline around a diversifier.

The algorithms expose a low-level ``offer(post) -> bool``; a deployment
(the paper's "part of the Twitter app of a user") wants an iterator it can
put in a ``for`` loop, hooks for the pruned posts, and periodic memory
reclamation — that's :class:`DiversifiedStream`. It is a thin, allocation-
free adapter: posts flow through unchanged, in order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from ..errors import ConfigurationError
from .base import StreamDiversifier
from .post import Post


class DiversifiedStream:
    """Iterate a post stream, yielding only the diversified sub-stream Z.

    Args:
        diversifier: any :class:`~repro.core.StreamDiversifier`.
        posts: timestamp-ordered post iterable (may be unbounded).
        on_prune: called with each pruned post (e.g. to count or log).
        on_admit: called with each admitted post before it is yielded.
        purge_every: run the diversifier's window GC every N posts
            (0 disables; scans stay correct either way, purging only
            bounds memory).

    Example::

        stream = DiversifiedStream(UniBin(thresholds, graph), firehose)
        for post in stream:
            render(post)
        print(stream.pruned, "posts hidden")
    """

    def __init__(
        self,
        diversifier: StreamDiversifier,
        posts: Iterable[Post],
        *,
        on_prune: Callable[[Post], None] | None = None,
        on_admit: Callable[[Post], None] | None = None,
        purge_every: int = 1000,
    ):
        if purge_every < 0:
            raise ConfigurationError(f"purge_every must be >= 0, got {purge_every}")
        self.diversifier = diversifier
        self._posts = posts
        self._on_prune = on_prune
        self._on_admit = on_admit
        self._purge_every = purge_every

    def __iter__(self) -> Iterator[Post]:
        offer = self.diversifier.offer
        purge_every = self._purge_every
        for i, post in enumerate(self._posts):
            if offer(post):
                if self._on_admit is not None:
                    self._on_admit(post)
                yield post
            elif self._on_prune is not None:
                self._on_prune(post)
            if purge_every and i % purge_every == purge_every - 1:
                self.diversifier.purge(post.timestamp)

    # -- live statistics ----------------------------------------------------

    @property
    def processed(self) -> int:
        """Posts consumed so far."""
        return self.diversifier.stats.posts_processed

    @property
    def admitted(self) -> int:
        """Posts yielded so far."""
        return self.diversifier.stats.posts_admitted

    @property
    def pruned(self) -> int:
        """Posts hidden so far."""
        return self.diversifier.stats.posts_rejected
