"""NeighborBin (paper §4.2): one post bin per author.

Author ``a``'s bin holds the admitted posts of ``a`` *and of every
neighbour of ``a``* in the author similarity graph — exactly the posts that
could cover a new post by ``a``. An arriving post therefore scans a single
bin, and bin membership already implies author similarity, so only the time
and content checks run per candidate. The price is replication: an admitted
post is copied into ``d + 1`` bins (its author's and each neighbour's),
giving the §4.4 RAM estimate ``(d+1)·r·n``.

NeighborBin requires the author dimension to be active: it prunes candidate
posts *by author*, which is only sound when author-dissimilar posts cannot
cover each other.
"""

from __future__ import annotations

from ..authors import AuthorGraph
from ..errors import ConfigurationError, UnknownAuthorError
from .base import StreamDiversifier
from .bins import PostBin
from .post import Post
from .thresholds import Thresholds


class NeighborBin(StreamDiversifier):
    """The per-author-bin SPSD algorithm."""

    name = "neighborbin"

    def __init__(
        self,
        thresholds: Thresholds,
        graph: AuthorGraph,
        *,
        newest_first: bool = True,
        storage=None,
    ):
        if graph is None:
            raise ConfigurationError("NeighborBin requires an author graph")
        if thresholds.lambda_a >= 1.0:
            raise ConfigurationError(
                "NeighborBin cannot run with the author dimension disabled "
                "(lambda_a >= 1): per-author bins would have to replicate "
                "every post into every bin; use UniBin instead"
            )
        super().__init__(thresholds, graph, newest_first=newest_first, storage=storage)
        self._bins: dict[int, PostBin] = {
            author: self._new_bin() for author in graph.nodes
        }

    def _bin_of(self, author: int) -> PostBin:
        try:
            return self._bins[author]
        except KeyError:
            raise UnknownAuthorError(
                f"post author {author!r} is not in the author graph"
            ) from None

    def _is_covered(self, post: Post) -> bool:
        own_bin = self._bin_of(post.author)
        covers = self.checker.covers_known_author_similar
        stats = self.stats
        stats.record_evictions(
            own_bin.expire(post.timestamp, self.thresholds.lambda_t)
        )
        limit = self._probe_limit
        if self.newest_first:
            # The expiry above left only in-window posts: scan the deque
            # directly, no cutoff check or generator frame per candidate.
            checked = 0
            if limit is None:
                for candidate in reversed(own_bin.data):
                    checked += 1
                    if covers(post, candidate):
                        stats.comparisons += checked
                        return True
            else:
                # Governor-degraded mode: bounded fan-out, may admit extra.
                for candidate in reversed(own_bin.data):
                    checked += 1
                    if covers(post, candidate):
                        stats.comparisons += checked
                        return True
                    if checked >= limit:
                        break
            stats.comparisons += checked
            return False
        checked = 0
        for candidate in own_bin.scan(
            post.timestamp, self.thresholds.lambda_t, newest_first=False
        ):
            checked += 1
            stats.comparisons += 1
            if covers(post, candidate):
                return True
            if checked == limit:
                break
        return False

    def _admit(self, post: Post) -> None:
        lambda_t = self.thresholds.lambda_t
        targets = [post.author]
        assert self.graph is not None
        targets.extend(self.graph.neighbors(post.author))
        evicted = 0
        for author in targets:
            bin_ = self._bins[author]
            evicted += bin_.expire(post.timestamp, lambda_t)
            bin_.append(post)
        self.stats.record_evictions(evicted)
        self.stats.record_insertions(len(targets))

    def purge(self, now: float | None = None) -> None:
        timestamp = self._now(now)
        lambda_t = self.thresholds.lambda_t
        evicted = sum(bin_.expire(timestamp, lambda_t) for bin_ in self._bins.values())
        self.stats.record_evictions(evicted)

    def stored_copies(self) -> int:
        return sum(len(bin_) for bin_ in self._bins.values())

    def bin_count(self) -> int:
        return len(self._bins)

    def admitted_posts(self) -> list[Post]:
        # Every admitted post has a copy in its author's own bin, so the
        # author-filtered union over own bins is exactly Z ∩ window.
        out = [
            post
            for author, bin_ in self._bins.items()
            for post in bin_
            if post.author == author
        ]
        out.sort(key=lambda p: (p.timestamp, p.post_id))
        return out

    def apply_graph_delta(self, added=(), removed=()) -> None:
        """Patch bin membership after an in-place edge change of the graph.

        An admitted post by ``a`` belongs in ``a``'s bin and each of ``a``'s
        neighbours' bins; an edge flip between ``a`` and ``b`` therefore
        moves exactly the two authors' own posts in or out of each other's
        bins. Endpoints outside this engine's graph are skipped — deltas
        are global, engines are per-subgraph.
        """
        bins = self._bins
        for a, b in removed:
            bin_a, bin_b = bins.get(a), bins.get(b)
            if bin_a is None or bin_b is None:
                continue
            bin_a.remove_authored(b)
            bin_b.remove_authored(a)
        for a, b in added:
            bin_a, bin_b = bins.get(a), bins.get(b)
            if bin_a is None or bin_b is None:
                continue
            bin_a.merge([post for post in bin_b if post.author == b])
            bin_b.merge([post for post in bin_a if post.author == a])

    def spill(self) -> int:
        return sum(self._flush_bin(bin_) for bin_ in self._bins.values())

    def memory_breakdown(self) -> dict[str, int]:
        from ..storage.accounting import estimate_bin_bytes

        return {
            "window": sum(estimate_bin_bytes(b) for b in self._bins.values())
        }

    def _index_state(self) -> dict[str, object]:
        # Bins replicate posts (author + neighbours); serialise each post
        # once and reference it by id from the per-author bin listings.
        posts: dict[int, Post] = {}
        bins: dict[int, list[int]] = {}
        for author, bin_ in self._bins.items():
            if len(bin_):
                bins[author] = [p.post_id for p in bin_]
                for post in bin_:
                    posts[post.post_id] = post
        return {"posts": posts, "bins": bins}

    def _load_index_state(self, state: dict[str, object]) -> None:
        from ..errors import CheckpointError

        posts: dict[int, Post] = state["posts"]  # type: ignore[assignment]
        self._bins = {author: self._new_bin() for author in self._bins}
        for author, post_ids in state["bins"].items():  # type: ignore[union-attr]
            bin_ = self._bins.get(author)
            if bin_ is None:
                raise CheckpointError(
                    f"checkpoint references author {author!r} not present in "
                    "this engine's graph"
                )
            for post_id in post_ids:
                bin_.append(posts[post_id])
