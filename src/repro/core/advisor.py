"""Algorithm advisor implementing the paper's Table 4 use-case guidance.

The paper's discussion (§6.2.2) distils its analysis and experiments into
operating-regime rules:

* **UniBin** — very small λt, *or* low stream throughput, *or* large λa
  (dense author graph), *or* RAM-constrained deployments.
  Example use cases: news RSS feeds, Google Scholar.
* **NeighborBin** — large λt *and* small λa (sparse graph) *and* high
  throughput. Example: Twitch.
* **CliqueBin** — moderate λt *and* small λa *and* high throughput.
  Example: Twitter.

The advisor encodes those rules over a :class:`WorkloadProfile`, with the
regime boundaries as explicit, overridable constants (the paper gives
qualitative regimes, not hard numbers; the defaults below mark where its
experiments place the crossovers on the evaluation workload).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: λt at or below which insertion overhead dominates and UniBin wins
#: (the paper excludes λt = 1 min from Figure 11 because UniBin wins there).
VERY_SMALL_LAMBDA_T = 120.0
#: λt boundary between "moderate" (CliqueBin) and "large" (NeighborBin);
#: Figure 11 shows CliqueBin ahead for λt ≤ ~10 min.
MODERATE_LAMBDA_T = 600.0
#: λa at or above which the author graph is dense enough that the binned
#: algorithms' replication overwhelms their comparison savings (Figure 13).
LARGE_LAMBDA_A = 0.75
#: Posts per λt window below which UniBin's low insertion cost wins
#: (Figures 14–15: low sample rates / few subscriptions favour UniBin —
#: in those experiments the crossover sits under ~100 posts per window).
LOW_THROUGHPUT_POSTS_PER_WINDOW = 100.0


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """What the operator knows about a deployment.

    Attributes:
        lambda_t: intended time threshold, seconds.
        lambda_a: intended author-distance threshold.
        posts_per_window: expected posts arriving per λt window (throughput
            × λt). Use the subscription count × per-author rate × λt.
        ram_constrained: True when memory is the binding resource.
    """

    lambda_t: float
    lambda_a: float
    posts_per_window: float
    ram_constrained: bool = False

    def __post_init__(self) -> None:
        if self.lambda_t < 0:
            raise ConfigurationError(f"lambda_t must be >= 0, got {self.lambda_t}")
        if not 0.0 <= self.lambda_a <= 1.0:
            raise ConfigurationError(f"lambda_a must be in [0, 1], got {self.lambda_a}")
        if self.posts_per_window < 0:
            raise ConfigurationError(
                f"posts_per_window must be >= 0, got {self.posts_per_window}"
            )


@dataclass(frozen=True, slots=True)
class Recommendation:
    """Advisor output: the chosen algorithm and the Table-4 reasons."""

    algorithm: str
    reasons: tuple[str, ...]
    example_use_case: str


def recommend(profile: WorkloadProfile) -> Recommendation:
    """Pick an algorithm for ``profile`` per the paper's Table 4.

    >>> recommend(WorkloadProfile(
    ...     lambda_t=1800, lambda_a=0.7, posts_per_window=60,
    ... )).algorithm
    'unibin'
    """
    unibin_reasons = []
    if profile.lambda_t <= VERY_SMALL_LAMBDA_T:
        unibin_reasons.append(f"very small lambda_t ({profile.lambda_t:.0f}s)")
    if profile.posts_per_window <= LOW_THROUGHPUT_POSTS_PER_WINDOW:
        unibin_reasons.append(
            f"low stream throughput ({profile.posts_per_window:.0f} posts/window)"
        )
    if profile.lambda_a >= LARGE_LAMBDA_A:
        unibin_reasons.append(f"large lambda_a ({profile.lambda_a:.2f}; dense graph)")
    if profile.ram_constrained:
        unibin_reasons.append("RAM is a critical limitation")
    if unibin_reasons:
        return Recommendation(
            algorithm="unibin",
            reasons=tuple(unibin_reasons),
            example_use_case="News RSS Feed, Google Scholar",
        )
    if profile.lambda_t > MODERATE_LAMBDA_T:
        return Recommendation(
            algorithm="neighborbin",
            reasons=(
                f"large lambda_t ({profile.lambda_t:.0f}s)",
                f"small lambda_a ({profile.lambda_a:.2f}; sparse graph)",
                "high stream throughput",
            ),
            example_use_case="Twitch",
        )
    return Recommendation(
        algorithm="cliquebin",
        reasons=(
            f"moderate lambda_t ({profile.lambda_t:.0f}s)",
            f"small lambda_a ({profile.lambda_a:.2f}; sparse graph)",
            "high stream throughput",
        ),
        example_use_case="Twitter",
    )


def table4_rows() -> list[dict[str, str]]:
    """The paper's Table 4 as printable rows."""
    return [
        {
            "conditions": (
                "very small lambda_t OR low stream throughput OR large "
                "lambda_a (dense G) OR RAM is a critical limitation"
            ),
            "algorithm": "unibin",
            "example_use_case": "News RSS Feed, Google Scholar",
        },
        {
            "conditions": (
                "large lambda_t AND small lambda_a (sparse G) AND high "
                "stream throughput"
            ),
            "algorithm": "neighborbin",
            "example_use_case": "Twitch",
        },
        {
            "conditions": (
                "moderate lambda_t AND small lambda_a (sparse G) AND high "
                "stream throughput"
            ),
            "algorithm": "cliquebin",
            "example_use_case": "Twitter",
        },
    ]
