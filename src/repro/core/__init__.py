"""Core SPSD model and algorithms (paper §2 and §4).

Public surface:

* :class:`Post`, :class:`Thresholds` — the data model.
* :class:`CoverageChecker` — the three-dimensional coverage predicate.
* :class:`UniBin`, :class:`NeighborBin`, :class:`CliqueBin` — the three
  streaming algorithms, behind :class:`StreamDiversifier`.
* :func:`make_diversifier` / :data:`ALGORITHM_NAMES` — the registry.
* :mod:`~repro.core.costmodel` — the §4.4 analytical model (Table 2).
* :func:`recommend` — the Table-4 use-case advisor.
"""

from .advisor import Recommendation, WorkloadProfile, recommend, table4_rows
from .base import StreamDiversifier
from .bins import PostBin
from .cliquebin import CliqueBin
from .costmodel import (
    CostEstimate,
    WorkloadParameters,
    estimate,
    estimate_all,
    parameters_from_run,
)
from .coverage import CoverageChecker
from .indexedbin import IndexedUniBin
from .neighborbin import NeighborBin
from .pipeline import DiversifiedStream
from .post import Post
from .registry import (
    ALGORITHM_NAMES,
    ALGORITHMS,
    AlgorithmProfile,
    describe_algorithms,
    make_diversifier,
)
from .stats import RunStats
from .thresholds import (
    DEFAULT_LAMBDA_A,
    DEFAULT_LAMBDA_C,
    DEFAULT_LAMBDA_T,
    Thresholds,
)
from .unibin import UniBin

__all__ = [
    "ALGORITHMS",
    "ALGORITHM_NAMES",
    "AlgorithmProfile",
    "CliqueBin",
    "CostEstimate",
    "CoverageChecker",
    "DiversifiedStream",
    "IndexedUniBin",
    "DEFAULT_LAMBDA_A",
    "DEFAULT_LAMBDA_C",
    "DEFAULT_LAMBDA_T",
    "NeighborBin",
    "Post",
    "PostBin",
    "Recommendation",
    "RunStats",
    "StreamDiversifier",
    "Thresholds",
    "UniBin",
    "WorkloadParameters",
    "WorkloadProfile",
    "describe_algorithms",
    "estimate",
    "estimate_all",
    "make_diversifier",
    "parameters_from_run",
    "recommend",
    "table4_rows",
]
