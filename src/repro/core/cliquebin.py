"""CliqueBin (paper §4.3): one post bin per clique of a clique edge cover.

NeighborBin's replication is cut down by grouping mutually-similar authors:
compute a clique edge cover of the author graph, keep one bin per clique,
and store each admitted post once per clique containing its author (the
§4.4 ``c·r·n`` RAM estimate, with ``c`` ≤ ``d``). An arriving post scans
the bins of its author's cliques; clique membership implies pairwise author
similarity, so — like NeighborBin — only time and content checks run per
candidate. A candidate stored in two scanned cliques is compared twice,
matching the paper's comparison accounting (§4.3's P7 example).

Coverage stays exact: if authors ``a`` and ``q`` are similar, the edge
(a, q) lies inside some clique of the cover, so q's admitted posts are in a
bin that a's posts scan.
"""

from __future__ import annotations

from ..authors import AuthorGraph, CliqueCover, greedy_clique_cover
from ..errors import ConfigurationError, UnknownAuthorError
from .base import StreamDiversifier
from .bins import PostBin
from .post import Post
from .thresholds import Thresholds


class CliqueBin(StreamDiversifier):
    """The per-clique-bin SPSD algorithm."""

    name = "cliquebin"

    def __init__(
        self,
        thresholds: Thresholds,
        graph: AuthorGraph,
        *,
        cover: CliqueCover | None = None,
        newest_first: bool = True,
        storage=None,
    ):
        if graph is None:
            raise ConfigurationError("CliqueBin requires an author graph")
        if thresholds.lambda_a >= 1.0:
            raise ConfigurationError(
                "CliqueBin cannot run with the author dimension disabled "
                "(lambda_a >= 1); use UniBin instead"
            )
        super().__init__(thresholds, graph, newest_first=newest_first, storage=storage)
        # The cover is precomputed offline in the paper's deployment (like
        # the author graph itself); accept an injected one so a single cover
        # can be shared across experiment runs.
        self.cover = cover if cover is not None else greedy_clique_cover(graph)
        self._bins: dict[int, PostBin] = {
            idx: self._new_bin() for idx in range(len(self.cover))
        }

    def _cliques_of(self, author: int) -> list[int]:
        cliques = self.cover.cliques_of(author)
        if not cliques:
            raise UnknownAuthorError(
                f"post author {author!r} is not in any clique of the cover"
            )
        return cliques

    def _is_covered(self, post: Post) -> bool:
        covers = self.checker.covers_known_author_similar
        stats = self.stats
        lambda_t = self.thresholds.lambda_t
        timestamp = post.timestamp
        bins = self._bins
        newest_first = self.newest_first
        limit = self._probe_limit
        for clique_idx in self._cliques_of(post.author):
            bin_ = bins[clique_idx]
            stats.record_evictions(bin_.expire(timestamp, lambda_t))
            if newest_first:
                # Post-expiry the deque holds only in-window posts: scan it
                # directly without per-candidate cutoff checks.
                checked = 0
                if limit is None:
                    for candidate in reversed(bin_.data):
                        checked += 1
                        if covers(post, candidate):
                            stats.comparisons += checked
                            return True
                else:
                    # Governor-degraded mode: the cap applies per scanned
                    # clique bin; a truncated scan can only admit extra.
                    for candidate in reversed(bin_.data):
                        checked += 1
                        if covers(post, candidate):
                            stats.comparisons += checked
                            return True
                        if checked >= limit:
                            break
                stats.comparisons += checked
            else:
                checked = 0
                for candidate in bin_.scan(timestamp, lambda_t, newest_first=False):
                    checked += 1
                    stats.comparisons += 1
                    if covers(post, candidate):
                        return True
                    if checked == limit:
                        break
        return False

    def _admit(self, post: Post) -> None:
        # _admit only runs after _is_covered scanned — and therefore
        # expired — every one of the author's clique bins at this exact
        # timestamp, so a second expiry pass here could never evict.
        cliques = self._cliques_of(post.author)
        for clique_idx in cliques:
            self._bins[clique_idx].append(post)
        self.stats.record_insertions(len(cliques))

    def purge(self, now: float | None = None) -> None:
        timestamp = self._now(now)
        lambda_t = self.thresholds.lambda_t
        evicted = sum(bin_.expire(timestamp, lambda_t) for bin_ in self._bins.values())
        self.stats.record_evictions(evicted)

    def stored_copies(self) -> int:
        return sum(len(bin_) for bin_ in self._bins.values())

    def bin_count(self) -> int:
        return len(self._bins)

    def admitted_posts(self) -> list[Post]:
        # Posts replicate across the cliques of their author; dedupe by id.
        seen: dict[int, Post] = {}
        for bin_ in self._bins.values():
            for post in bin_:
                seen[post.post_id] = post
        return sorted(seen.values(), key=lambda p: (p.timestamp, p.post_id))

    def apply_cover_update(self, cover: CliqueCover) -> None:
        """Swap in a repaired clique cover, re-binning the live window.

        Admit verdicts are cover-independent for any *valid* cover of the
        current graph (clique membership implies author similarity, and
        every similar pair shares some clique), so the repaired cover only
        needs to pass ``verify_cover`` — not to equal the greedy-from-
        scratch cover. Bins of cliques present in both covers keep their
        deques; new cliques get bins rebuilt from the admitted posts of
        their members, in (timestamp, post_id) order.
        """
        by_author: dict[int, list[Post]] = {}
        for post in self.admitted_posts():
            by_author.setdefault(post.author, []).append(post)
        reusable: dict[frozenset[int], list[PostBin]] = {}
        for idx, clique in enumerate(self.cover.cliques):
            reusable.setdefault(clique, []).append(self._bins[idx])
        self.cover = cover
        bins: dict[int, PostBin] = {}
        for idx, clique in enumerate(cover.cliques):
            stack = reusable.get(clique)
            if stack:
                bins[idx] = stack.pop()
                continue
            bin_ = self._new_bin()
            members = [a for a in clique if a in by_author]
            if members:
                for post in sorted(
                    (p for a in members for p in by_author[a]),
                    key=lambda p: (p.timestamp, p.post_id),
                ):
                    bin_.append(post)
            bins[idx] = bin_
        self._bins = bins

    def spill(self) -> int:
        return sum(self._flush_bin(bin_) for bin_ in self._bins.values())

    def memory_breakdown(self) -> dict[str, int]:
        from ..storage.accounting import estimate_bin_bytes

        return {
            "window": sum(estimate_bin_bytes(b) for b in self._bins.values())
        }

    def _index_state(self) -> dict[str, object]:
        posts: dict[int, Post] = {}
        bins: dict[int, list[int]] = {}
        for idx, bin_ in self._bins.items():
            if len(bin_):
                bins[idx] = [p.post_id for p in bin_]
                for post in bin_:
                    posts[post.post_id] = post
        return {
            "cliques": len(self.cover),
            # The cover itself: a dynamically-repaired cover is valid but
            # need not equal the greedy-from-scratch cover a restoring
            # engine computes, so restore must adopt the checkpointed one.
            "cover": [sorted(clique) for clique in self.cover.cliques],
            "posts": posts,
            "bins": bins,
        }

    def _load_index_state(self, state: dict[str, object]) -> None:
        from ..errors import CheckpointError

        cover_state = state.get("cover")
        if cover_state is not None:
            self.cover = CliqueCover(
                [frozenset(members) for members in cover_state]  # type: ignore[union-attr]
            )
        elif state["cliques"] != len(self.cover):
            # Pre-dynamic checkpoints carry only the clique count.
            raise CheckpointError(
                f"checkpoint was taken with a {state['cliques']}-clique "
                f"cover; this engine's cover has {len(self.cover)} cliques "
                "(graph or cover mismatch)"
            )
        posts: dict[int, Post] = state["posts"]  # type: ignore[assignment]
        self._bins = {idx: self._new_bin() for idx in range(len(self.cover))}
        for idx, post_ids in state["bins"].items():  # type: ignore[union-attr]
            bin_ = self._bins[idx]
            for post_id in post_ids:
                bin_.append(posts[post_id])
