"""Algorithm registry and Table-3 descriptions.

Experiments and the CLI address algorithms by name; the registry maps names
to constructors and carries the qualitative comparison the paper tabulates
(its Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..authors import AuthorGraph
from ..errors import UnknownAlgorithmError
from .base import StreamDiversifier
from .cliquebin import CliqueBin
from .indexedbin import IndexedUniBin
from .neighborbin import NeighborBin
from .thresholds import Thresholds
from .unibin import UniBin

ALGORITHMS: dict[str, type[StreamDiversifier]] = {
    UniBin.name: UniBin,
    NeighborBin.name: NeighborBin,
    CliqueBin.name: CliqueBin,
    # Extension beyond the paper: index-accelerated UniBin for the
    # small-lambda_c regime (see indexedbin.py). Not part of the paper's
    # three-way comparison, so excluded from ALGORITHM_NAMES.
    IndexedUniBin.name: IndexedUniBin,
}

#: The paper's three algorithms (what experiments sweep over).
ALGORITHM_NAMES: tuple[str, ...] = (UniBin.name, NeighborBin.name, CliqueBin.name)


def make_diversifier(
    name: str,
    thresholds: Thresholds,
    graph: AuthorGraph | None,
    **kwargs,
) -> StreamDiversifier:
    """Instantiate an algorithm by registry name.

    >>> from repro.authors import AuthorGraph
    >>> d = make_diversifier("unibin", Thresholds(), AuthorGraph([1], []))
    >>> d.name
    'unibin'
    """
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return cls(thresholds, graph, **kwargs)


@dataclass(frozen=True, slots=True)
class AlgorithmProfile:
    """Table-3 row: data structures and qualitative cost levels."""

    name: str
    data_structures: tuple[str, ...]
    ram: str
    comparisons: str
    insertions: str


TABLE3_PROFILES: tuple[AlgorithmProfile, ...] = (
    AlgorithmProfile(
        name="unibin",
        data_structures=(
            "author similarity graph",
            "a single post bin storing posts from all authors",
        ),
        ram="Low",
        comparisons="High",
        insertions="Low",
    ),
    AlgorithmProfile(
        name="neighborbin",
        data_structures=(
            "author similarity graph",
            "a post bin per author storing posts from the author and her neighbors",
        ),
        ram="High",
        comparisons="Low",
        insertions="High",
    ),
    AlgorithmProfile(
        name="cliquebin",
        data_structures=(
            "author clique mapping",
            "a post bin per clique storing posts from all the authors in the clique",
        ),
        ram="Moderate",
        comparisons="Moderate",
        insertions="Moderate",
    ),
)


def describe_algorithms() -> tuple[AlgorithmProfile, ...]:
    """The paper's Table 3 as structured data."""
    return TABLE3_PROFILES
