"""Diversity thresholds (λc, λt, λa) and their validation (paper §2).

The paper's defaults, established by its user study and used throughout its
evaluation, are λc = 18 SimHash bits, λt = 30 minutes and λa = 0.7
(author cosine similarity ≥ 0.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..simhash import FINGERPRINT_BITS

#: Paper defaults (§3 and §6.1).
DEFAULT_LAMBDA_C = 18
DEFAULT_LAMBDA_T = 30 * 60.0
DEFAULT_LAMBDA_A = 0.7


@dataclass(frozen=True, slots=True)
class Thresholds:
    """The three diversity thresholds.

    Attributes:
        lambda_c: content threshold — max Hamming distance (bits) for two
            posts to be content-similar. 0 means exact-fingerprint only.
        lambda_t: time threshold in seconds — max timestamp gap.
        lambda_a: author threshold — max author distance (1 − cosine).

    Setting a dimension "off" (paper Figure 10) means making it never
    constrain: ``lambda_c = 64``, ``lambda_t = inf`` or ``lambda_a = 1.0``.
    The :meth:`without` helper builds those variants.
    """

    lambda_c: int = DEFAULT_LAMBDA_C
    lambda_t: float = DEFAULT_LAMBDA_T
    lambda_a: float = DEFAULT_LAMBDA_A

    def __post_init__(self) -> None:
        if not isinstance(self.lambda_c, int):
            raise ConfigurationError(f"lambda_c must be an int, got {self.lambda_c!r}")
        if not 0 <= self.lambda_c <= FINGERPRINT_BITS:
            raise ConfigurationError(
                f"lambda_c must be in [0, {FINGERPRINT_BITS}], got {self.lambda_c}"
            )
        if self.lambda_t < 0:
            raise ConfigurationError(f"lambda_t must be >= 0, got {self.lambda_t}")
        if not 0.0 <= self.lambda_a <= 1.0:
            raise ConfigurationError(f"lambda_a must be in [0, 1], got {self.lambda_a}")

    def without(self, *dimensions: str) -> "Thresholds":
        """Copy with the named dimensions disabled (made non-constraining).

        Dimension names are ``"content"``, ``"time"`` and ``"author"``.
        Used to reproduce Figure 10's dimension-subset study.

        >>> Thresholds().without("author").lambda_a
        1.0
        """
        valid = {"content", "time", "author"}
        unknown = set(dimensions) - valid
        if unknown:
            raise ConfigurationError(f"unknown dimensions: {sorted(unknown)}")
        return Thresholds(
            lambda_c=FINGERPRINT_BITS if "content" in dimensions else self.lambda_c,
            lambda_t=float("inf") if "time" in dimensions else self.lambda_t,
            lambda_a=1.0 if "author" in dimensions else self.lambda_a,
        )

    @property
    def author_min_similarity(self) -> float:
        """The similarity form of λa: authors are similar iff their cosine
        similarity is at least ``1 - lambda_a``."""
        return 1.0 - self.lambda_a
