"""Run statistics collected by every diversifier.

The paper's evaluation (Figures 11–16) reports four per-run quantities:
running time, RAM, pairwise post comparisons and post insertions. Time is
measured by the harness; the other three are counted here. "RAM" is proxied
by the number of post *copies* stored across bins — exactly the quantity the
§4.4 analysis models (r·n for UniBin, (d+1)·r·n for NeighborBin, c·r·n for
CliqueBin) and the dominant memory consumer in any implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class RunStats:
    """Mutable counters updated by a diversifier as it ingests a stream.

    Attributes:
        posts_processed: posts offered to the algorithm.
        posts_admitted: posts added to the diversified sub-stream Z.
        comparisons: candidate posts examined across all coverage checks
            (the paper's "post comparisons"; a candidate reached through two
            different bins counts twice, matching the paper's accounting).
        insertions: post copies written into bins (an admitted post copied
            into k bins counts k).
        evictions: post copies removed by time-window expiry.
        stored_copies: post copies currently resident across all bins.
        peak_stored_copies: maximum of ``stored_copies`` over the run — the
            RAM proxy reported by the benchmarks.
    """

    posts_processed: int = 0
    posts_admitted: int = 0
    comparisons: int = 0
    insertions: int = 0
    evictions: int = 0
    stored_copies: int = 0
    peak_stored_copies: int = 0

    def record_insertions(self, count: int) -> None:
        """Account for ``count`` new post copies entering bins."""
        self.insertions += count
        self.stored_copies += count
        if self.stored_copies > self.peak_stored_copies:
            self.peak_stored_copies = self.stored_copies

    def record_evictions(self, count: int) -> None:
        """Account for ``count`` post copies leaving bins."""
        self.evictions += count
        self.stored_copies -= count

    @property
    def posts_rejected(self) -> int:
        return self.posts_processed - self.posts_admitted

    @property
    def retention_ratio(self) -> float:
        """Fraction of the stream kept after diversification (paper's *r*)."""
        if self.posts_processed == 0:
            return 0.0
        return self.posts_admitted / self.posts_processed

    def merge(self, other: "RunStats") -> None:
        """Fold another stats object into this one (used by the multi-user
        wrappers to aggregate per-component/per-user counters). Peaks add:
        component bins coexist in memory, so their peaks are concurrent to
        first order."""
        self.posts_processed += other.posts_processed
        self.posts_admitted += other.posts_admitted
        self.comparisons += other.comparisons
        self.insertions += other.insertions
        self.evictions += other.evictions
        self.stored_copies += other.stored_copies
        self.peak_stored_copies += other.peak_stored_copies

    def state_dict(self) -> dict[str, int]:
        """Raw counters for checkpointing (exact, no derived fields)."""
        return {
            "posts_processed": self.posts_processed,
            "posts_admitted": self.posts_admitted,
            "comparisons": self.comparisons,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "stored_copies": self.stored_copies,
            "peak_stored_copies": self.peak_stored_copies,
        }

    def load_state(self, state: dict[str, int]) -> None:
        """Restore counters saved by :meth:`state_dict`."""
        for name in (
            "posts_processed",
            "posts_admitted",
            "comparisons",
            "insertions",
            "evictions",
            "stored_copies",
            "peak_stored_copies",
        ):
            setattr(self, name, int(state[name]))

    def snapshot(self) -> dict[str, int | float]:
        """Plain-dict view for reporting."""
        return {
            "posts_processed": self.posts_processed,
            "posts_admitted": self.posts_admitted,
            "posts_rejected": self.posts_rejected,
            "retention_ratio": self.retention_ratio,
            "comparisons": self.comparisons,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "stored_copies": self.stored_copies,
            "peak_stored_copies": self.peak_stored_copies,
        }
