"""IndexedUniBin: UniBin with a pigeonhole SimHash index (small-λc regime).

The paper rules the Manku-style index out *for its own setting* because
λc = 18 makes it degenerate (§3) — but for deployments with a tight content
threshold (the 3-bit web-page regime of Manku et al., or exact-retweet
pruning at λc ≤ 6) the index turns UniBin's linear scan into a near-
constant lookup. This class is that fast path: a drop-in UniBin whose
coverage scan asks the index for content-similar candidates first and then
verifies the time and author dimensions.

Output is identical to UniBin's (same greedy rule; the index is a complete
content-candidate generator), which the test suite asserts. Comparisons are
counted as candidates *verified*, so the ablation benchmark can show the
index's candidate volume collapsing at large λc.
"""

from __future__ import annotations

from collections import deque

from ..authors import AuthorGraph
from ..simhash import SimHashIndex
from .base import StreamDiversifier
from .post import Post
from .thresholds import Thresholds


class _ProbeBudgetExhausted(Exception):
    """Internal: unwinds an index probe at the governor's candidate cap."""


class IndexedUniBin(StreamDiversifier):
    """Single-bin SPSD with index-accelerated content candidate lookup."""

    name = "indexed_unibin"

    def __init__(
        self,
        thresholds: Thresholds,
        graph: AuthorGraph | None,
        *,
        newest_first: bool = True,
        storage=None,
    ):
        # ``storage`` is accepted for registry uniformity but deliberately
        # unused: expiry removes each post from the SimHash index
        # individually, so the window cannot be dropped segment-at-a-time —
        # the queue stays in memory. The governor's probe-limit rung applies
        # (it caps candidates verified per lookup); the spill rung is a
        # no-op here.
        super().__init__(thresholds, graph, newest_first=newest_first, storage=None)
        self._index = SimHashIndex(thresholds.lambda_c)
        # Arrival-ordered admitted posts, for time-window expiry.
        self._queue: deque[Post] = deque()
        self._by_id: dict[int, Post] = {}

    def _is_covered(self, post: Post) -> bool:
        self._expire(post.timestamp)
        checker = self.checker
        stats = self.stats
        by_id = self._by_id
        author = post.author
        limit = self._probe_limit
        budget = [limit] if limit is not None else None

        def verify(key) -> bool:
            # Content similarity is established by the index radius; only
            # time and author remain. Comparisons count candidates
            # *verified*, identical to the old full-query loop: the scan
            # stops at the first accepted candidate either way.
            stats.comparisons += 1
            candidate = by_id[key]
            return checker.time_similar(post, candidate) and checker.authors_similar(
                author, candidate.author
            )

        if budget is None:
            return self._index.first_match(post.fingerprint, verify) is not None

        def verify_bounded(key) -> bool:
            # Governor-degraded mode: stop after ``limit`` verifications by
            # treating the budget's last candidate as the final word —
            # a truncated probe can only admit extra, never drop a post.
            budget[0] -= 1
            if budget[0] < 0:
                raise _ProbeBudgetExhausted
            return verify(key)

        try:
            return self._index.first_match(post.fingerprint, verify_bounded) is not None
        except _ProbeBudgetExhausted:
            return False

    def _admit(self, post: Post) -> None:
        self._queue.append(post)
        self._by_id[post.post_id] = post
        self._index.add(post.fingerprint, post.post_id)
        self.stats.record_insertions(1)

    def _expire(self, now: float) -> None:
        cutoff = now - self.thresholds.lambda_t
        evicted = 0
        while self._queue and self._queue[0].timestamp < cutoff:
            old = self._queue.popleft()
            self._index.remove(old.fingerprint, old.post_id)
            del self._by_id[old.post_id]
            evicted += 1
        if evicted:
            self.stats.record_evictions(evicted)

    def purge(self, now: float | None = None) -> None:
        self._expire(self._now(now))

    def stored_copies(self) -> int:
        return len(self._queue)

    def admitted_posts(self) -> list[Post]:
        return sorted(self._queue, key=lambda p: (p.timestamp, p.post_id))

    def memory_breakdown(self) -> dict[str, int]:
        from ..storage.accounting import estimate_index_bytes, estimate_posts_bytes

        return {
            "window": estimate_posts_bytes(self._queue),
            "index": estimate_index_bytes(self._index),
        }

    def _index_state(self) -> dict[str, object]:
        return {"queue": list(self._queue)}

    def _load_index_state(self, state: dict[str, object]) -> None:
        self._index = SimHashIndex(self.thresholds.lambda_c)
        self._queue = deque()
        self._by_id = {}
        for post in state["queue"]:  # type: ignore[union-attr]
            self._queue.append(post)
            self._by_id[post.post_id] = post
            self._index.add(post.fingerprint, post.post_id)
