"""The three-dimensional coverage predicate (paper Definition 1).

Two posts cover each other iff they are within threshold in *all three*
dimensions — content (SimHash Hamming), time (timestamp gap) and author
(graph adjacency or same author). The checks are ordered cheapest-first and
short-circuit; NeighborBin and CliqueBin scan bins whose membership already
implies author similarity, so they use the author-free variant.
"""

from __future__ import annotations

from ..authors import AuthorGraph
from .post import Post
from .thresholds import Thresholds


class CoverageChecker:
    """Coverage tests bound to a threshold setting and an author graph.

    ``graph`` may be ``None`` only when the author dimension is disabled
    (``lambda_a >= 1``), in which case every author pair is similar.
    """

    __slots__ = ("thresholds", "graph", "_author_free")

    def __init__(self, thresholds: Thresholds, graph: AuthorGraph | None):
        if graph is None and thresholds.lambda_a < 1.0:
            raise ValueError(
                "an author graph is required unless the author dimension "
                "is disabled (lambda_a >= 1)"
            )
        self.thresholds = thresholds
        self.graph = graph
        self._author_free = thresholds.lambda_a >= 1.0 or graph is None

    def authors_similar(self, a: int, b: int) -> bool:
        """Author-dimension test: same author or adjacent in G."""
        if a == b or self._author_free:
            return True
        assert self.graph is not None
        return self.graph.are_similar(a, b)

    def content_similar(self, p: Post, q: Post) -> bool:
        """Content-dimension test: Hamming(Sp, Sq) ≤ λc."""
        return (p.fingerprint ^ q.fingerprint).bit_count() <= self.thresholds.lambda_c

    def time_similar(self, p: Post, q: Post) -> bool:
        """Time-dimension test: |tp − tq| ≤ λt."""
        return abs(p.timestamp - q.timestamp) <= self.thresholds.lambda_t

    def covers(self, p: Post, q: Post) -> bool:
        """Full symmetric coverage test across all three dimensions."""
        return (
            self.time_similar(p, q)
            and self.content_similar(p, q)
            and self.authors_similar(p.author, q.author)
        )

    def covers_known_author_similar(self, p: Post, q: Post) -> bool:
        """Coverage test when author similarity is implied by bin membership
        (NeighborBin / CliqueBin inner loop): time and content only."""
        return self.time_similar(p, q) and self.content_similar(p, q)
