"""Analytical cost model of §4.4 (the paper's Table 2).

With ``m`` subscribed authors producing ``n`` posts per λt window, retention
ratio ``r``, average degree ``d``, average cliques-per-author ``c`` and
average clique size ``s``, the paper estimates:

=============  =========  ==================  =================
quantity       UniBin     NeighborBin         CliqueBin
=============  =========  ==================  =================
RAM (copies)   r·n        (d+1)·r·n           c·r·n
comparisons    r·n²       ((d+1)/m)·r·n²      (s·c/m)·r·n²
insertions     r·n        (d+1)·r·n           c·r·n
=============  =========  ==================  =================

(All per λt window.) The module computes these predictions from measured
workload parameters so the Table-2 benchmark can put predicted next to
observed counts, and exposes the ``c·(s−1)·q = d`` identity the paper
derives for the clique/degree relationship.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..authors import AuthorGraph, CliqueCover
from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class WorkloadParameters:
    """The §4.4 symbols describing a workload and graph topology.

    Attributes:
        m: number of subscribed authors.
        n: posts arriving per λt window.
        r: retention ratio after diversification, in (0, 1].
        d: average number of neighbours per author.
        c: average number of cliques containing an author.
        s: average clique size.
    """

    m: int
    n: float
    r: float
    d: float
    c: float
    s: float

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ConfigurationError(f"m must be positive, got {self.m}")
        if self.n < 0:
            raise ConfigurationError(f"n must be >= 0, got {self.n}")
        if not 0.0 <= self.r <= 1.0:
            raise ConfigurationError(f"r must be in [0, 1], got {self.r}")
        for label, value in (("d", self.d), ("c", self.c), ("s", self.s)):
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {value}")

    def clique_overlap_q(self) -> float:
        """The paper's overlap factor ``q`` from ``c·(s−1)·q = d``.

        ``q`` is the number of graph edges over the total edges inside the
        cover's cliques; 1 means no overlap between cliques. Returns 0 when
        the graph has no edges (d = 0).
        """
        denom = self.c * (self.s - 1.0)
        if denom <= 0.0:
            return 0.0
        return self.d / denom


@dataclass(frozen=True, slots=True)
class CostEstimate:
    """Per-λt-window predictions for one algorithm."""

    algorithm: str
    ram_copies: float
    comparisons: float
    insertions: float


def estimate_unibin(p: WorkloadParameters) -> CostEstimate:
    """Table-2 column 1: single-bin costs."""
    return CostEstimate(
        algorithm="unibin",
        ram_copies=p.r * p.n,
        comparisons=p.r * p.n * p.n,
        insertions=p.r * p.n,
    )


def estimate_neighborbin(p: WorkloadParameters) -> CostEstimate:
    """Table-2 column 2: per-author-bin costs."""
    replication = p.d + 1.0
    return CostEstimate(
        algorithm="neighborbin",
        ram_copies=replication * p.r * p.n,
        comparisons=(replication / p.m) * p.r * p.n * p.n,
        insertions=replication * p.r * p.n,
    )


def estimate_cliquebin(p: WorkloadParameters) -> CostEstimate:
    """Table-2 column 3: per-clique-bin costs."""
    return CostEstimate(
        algorithm="cliquebin",
        ram_copies=p.c * p.r * p.n,
        comparisons=(p.s * p.c / p.m) * p.r * p.n * p.n,
        insertions=p.c * p.r * p.n,
    )


_ESTIMATORS = {
    "unibin": estimate_unibin,
    "neighborbin": estimate_neighborbin,
    "cliquebin": estimate_cliquebin,
}


def estimate(algorithm: str, p: WorkloadParameters) -> CostEstimate:
    """Prediction for any registry algorithm name."""
    try:
        return _ESTIMATORS[algorithm](p)
    except KeyError:
        raise ConfigurationError(f"no cost model for algorithm {algorithm!r}") from None


def estimate_all(p: WorkloadParameters) -> list[CostEstimate]:
    """Table 2 in full: one estimate per algorithm."""
    return [estimator(p) for estimator in _ESTIMATORS.values()]


def parameters_from_run(
    graph: AuthorGraph,
    cover: CliqueCover,
    *,
    posts_in_window: float,
    retention_ratio: float,
) -> WorkloadParameters:
    """Measure m/d/c/s from a graph+cover and combine with observed stream
    figures into the §4.4 parameter set."""
    return WorkloadParameters(
        m=len(graph),
        n=posts_in_window,
        r=retention_ratio,
        d=graph.average_degree(),
        c=cover.average_cliques_per_author(),
        s=cover.average_clique_size(),
    )
