"""Common interface of the SPSD streaming algorithms (paper §4).

Every algorithm makes the same greedy decision — admit a post iff no
already-admitted post inside the λt window covers it — and differs only in
the index used to find candidate coverers. The base class owns the pieces
they share: the coverage checker, run statistics, timestamp-order
enforcement and the eviction bookkeeping hooks.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Iterable

from ..authors import AuthorGraph
from ..errors import CheckpointError, StreamOrderError
from .bins import PostBin
from .coverage import CoverageChecker
from .post import Post
from .stats import RunStats
from .thresholds import Thresholds


class StreamDiversifier(ABC):
    """Online SPSD solver: feed posts in timestamp order via :meth:`offer`.

    Subclasses implement :meth:`_is_covered` (scan their index for a
    covering admitted post) and :meth:`_admit` (insert the new post into
    their index), plus :meth:`purge`/:meth:`stored_copies` bookkeeping.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(
        self,
        thresholds: Thresholds,
        graph: AuthorGraph | None,
        *,
        newest_first: bool = True,
        storage=None,
    ):
        self.thresholds = thresholds
        self.checker = CoverageChecker(thresholds, graph)
        self.stats = RunStats()
        self.newest_first = newest_first
        self._last_timestamp = float("-inf")
        self._metrics = None
        self._tracer = None
        #: Optional :class:`repro.storage.SpillConfig`: when set, bins are
        #: tiered (in-memory head + disk spill segments) instead of plain
        #: in-memory deques. Verdict-neutral by construction.
        self._storage = storage
        #: Governor-imposed cap on candidates checked per bin scan (None =
        #: exact). See :meth:`set_probe_limit`.
        self._probe_limit: int | None = None

    @property
    def graph(self) -> AuthorGraph | None:
        return self.checker.graph

    def offer(self, post: Post) -> bool:
        """Process one arriving post; return True iff it enters Z.

        Posts must arrive in non-decreasing timestamp order (the streaming
        model: an instant decision at arrival).
        """
        if post.timestamp < self._last_timestamp:
            raise StreamOrderError(
                f"post {post.post_id} at t={post.timestamp} arrived after "
                f"t={self._last_timestamp}"
            )
        self._last_timestamp = post.timestamp
        self.stats.posts_processed += 1
        if self._metrics is not None or self._tracer is not None:
            return self._offer_observed(post)
        if self._is_covered(post):
            return False
        self._admit(post)
        self.stats.posts_admitted += 1
        return True

    def _offer_observed(self, post: Post) -> bool:
        """The decision with timing and scan-width accounting around it.

        Counters (comparisons, insertions, evictions) are *not* recorded
        here — they re-export :class:`RunStats` via collection-time
        callbacks, so they stay exact even across :meth:`purge` calls
        that happen outside any offer.
        """
        stats = self.stats
        comparisons_before = stats.comparisons
        start = time.perf_counter()
        if self._is_covered(post):
            admitted = False
        else:
            self._admit(post)
            stats.posts_admitted += 1
            admitted = True
        elapsed = time.perf_counter() - start
        comparisons = stats.comparisons - comparisons_before
        if self._metrics is not None:
            self._metrics.observe(elapsed, comparisons)
        if self._tracer is not None:
            self._tracer.record(
                engine=self.name,
                post=post,
                admitted=admitted,
                latency_s=elapsed,
                comparisons=comparisons,
            )
        return admitted

    def bind_metrics(self, registry, *, tracer=None) -> None:
        """Attach observability to this engine.

        ``registry`` is a :class:`repro.obs.Registry` (or ``None`` / a
        no-op registry, which disables metrics); ``tracer`` an optional
        :class:`repro.obs.OfferTracer` for per-post spans. Unbound — the
        default — the offer path is exactly the uninstrumented code.
        Rebinding replaces the previous binding; bind *after*
        checkpoint restore so gauges read the restored state.
        """
        if registry is not None and not getattr(registry, "is_noop", False):
            from ..obs.instruments import EngineInstruments

            self._metrics = EngineInstruments(registry, self)
        else:
            self._metrics = None
        self._tracer = tracer

    def bin_count(self) -> int:
        """Live bin count of the index structure (gauge source); engines
        with a richer structure override."""
        return 1

    # -- bounded-memory hooks (repro.storage / repro.resilience.governor) --

    def _new_bin(self):
        """A fresh window bin honouring this engine's ``storage`` config:
        a plain in-memory :class:`PostBin`, or a tiered spill-to-disk bin
        when a :class:`repro.storage.SpillConfig` was supplied."""
        storage = self._storage
        return PostBin() if storage is None else storage.make_bin()

    @staticmethod
    def _flush_bin(bin_) -> int:
        flush = getattr(bin_, "flush", None)
        return flush() if flush is not None else 0

    def set_probe_limit(self, limit: int | None) -> None:
        """Cap (or uncap, with ``None``) the candidates checked per bin
        scan — the governor's "shrink probe fan-out" ladder rung.

        A capped scan may miss an older covering post and therefore *admit*
        a post an exact run would have filtered: the sacrifice is duplicate
        leakage, never lost posts. ``None`` restores exact behaviour.
        """
        if limit is not None and limit < 1:
            from ..errors import ConfigurationError

            raise ConfigurationError(f"probe limit must be >= 1, got {limit}")
        self._probe_limit = limit

    @property
    def probe_limit(self) -> int | None:
        """The active per-scan candidate cap (None = exact scans)."""
        return self._probe_limit

    def spill(self) -> int:
        """Force the cold tier: flush every tiered bin's in-memory head to
        disk, returning how many posts moved (0 without tiered storage).
        Verdict-neutral — only residency changes."""
        return 0

    def memory_breakdown(self) -> dict[str, int]:
        """Accounted bytes by family (``window``, ``index``, ...) for the
        memory governor's gauges; see :mod:`repro.storage.accounting`."""
        return {}

    def memory_bytes(self) -> int:
        """Total accounted in-memory bytes of this engine's index state."""
        return sum(self.memory_breakdown().values())

    def offer_batch(self, posts) -> list[bool]:
        """Offer a timestamp-ordered chunk of posts; one verdict per post.

        Semantically identical to ``[self.offer(p) for p in posts]`` — the
        greedy decision is per post either way — but resolves the offer
        method once per chunk instead of once per post, and gives callers
        (the parallel execution layer, the CLI batch path) a single entry
        point that amortizes per-call overhead.
        """
        offer = self.offer
        return [offer(post) for post in posts]

    def diversify(self, posts) -> list[Post]:
        """Convenience wrapper: run the whole iterable, return Z as a list."""
        return [post for post in posts if self.offer(post)]

    @abstractmethod
    def _is_covered(self, post: Post) -> bool:
        """True iff some admitted post within λt covers ``post``."""

    @abstractmethod
    def _admit(self, post: Post) -> None:
        """Insert ``post`` into the algorithm's bin structure."""

    @abstractmethod
    def purge(self, now: float | None = None) -> None:
        """Evict every stored copy outside the λt window ending at ``now``
        (default: the latest seen timestamp). Scans already skip expired
        posts; purging exists to reclaim memory and make
        :meth:`stored_copies` exact."""

    @abstractmethod
    def stored_copies(self) -> int:
        """Post copies currently held across all bins (RAM proxy)."""

    def _now(self, now: float | None) -> float:
        return self._last_timestamp if now is None else now

    # -- dynamic topology hooks (repro.dynamic) ----------------------------
    #
    # These are cold-path operations: they run once per graph version, not
    # per post, so clarity beats speed. The correctness contract is that
    # after the engine's graph object has been mutated and the matching
    # hook has run, future offers decide exactly as a fresh engine built on
    # the new graph and re-seeded with :meth:`admitted_posts` would.

    def admitted_posts(self) -> list[Post]:
        """Distinct admitted posts currently stored (the live window
        contents), in (timestamp, post_id) order. The logical state the
        migration layer carries across a topology change."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support dynamic migration"
        )

    def apply_graph_delta(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Re-index after this engine's author graph was mutated in place.

        The default is a no-op: UniBin and IndexedUniBin consult the graph
        live through :class:`CoverageChecker`, so mutating the graph object
        is already sufficient. Engines whose bins *materialise* adjacency
        (NeighborBin) override this; CliqueBin instead takes a repaired
        cover via :meth:`~repro.core.cliquebin.CliqueBin.apply_cover_update`.
        """

    def seed_admitted(self, posts, *, last_timestamp: float | None = None) -> None:
        """Re-admit carried posts into a freshly-built engine.

        ``posts`` must be in (timestamp, post_id) order. They bypass the
        coverage check — they were admitted historically and the
        state-preserving rebuild semantics keeps them admitted — and are
        inserted with the run counters parked on a scratch object, so
        seeding never perturbs the engine's externally-visible stats.
        ``last_timestamp`` restores the stream-order cursor (the carried
        window can trail the last processed post).
        """
        scratch = RunStats()
        original = self.stats
        self.stats = scratch
        try:
            for post in posts:
                self._admit(post)
        finally:
            self.stats = original
        if last_timestamp is not None:
            self._last_timestamp = max(self._last_timestamp, last_timestamp)

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent offered post (-inf before any)."""
        return self._last_timestamp

    # -- checkpointing -----------------------------------------------------
    #
    # ``state_dict``/``load_state`` capture everything the greedy decision
    # depends on: the admitted posts still inside the window, the order
    # cursor and the counters. Restoring into a freshly-constructed engine
    # (same thresholds, same graph) and replaying the remaining stream
    # yields the identical retained set as an uninterrupted run.

    def state_dict(self) -> dict[str, object]:
        """Engine state as plain Python objects (posts stay :class:`Post`;
        JSON encoding lives in :mod:`repro.resilience.checkpoint`)."""
        return {
            "algorithm": self.name,
            "newest_first": self.newest_first,
            "last_timestamp": self._last_timestamp,
            "stats": self.stats.state_dict(),
            "index": self._index_state(),
        }

    def load_state(self, state: dict[str, object]) -> None:
        """Restore state saved by :meth:`state_dict` into this engine.

        The engine must have been constructed with the same thresholds and
        author graph as the checkpointed one; only the mutable run state is
        loaded here.
        """
        if state.get("algorithm") != self.name:
            raise CheckpointError(
                f"checkpoint is for algorithm {state.get('algorithm')!r}, "
                f"cannot load into {self.name!r}"
            )
        self.newest_first = bool(state["newest_first"])
        self._last_timestamp = float(state["last_timestamp"])  # type: ignore[arg-type]
        self.stats.load_state(state["stats"])  # type: ignore[arg-type]
        self._load_index_state(state["index"])  # type: ignore[arg-type]

    @abstractmethod
    def _index_state(self) -> dict[str, object]:
        """The subclass's bin/index contents, as plain Python objects."""

    @abstractmethod
    def _load_index_state(self, state: dict[str, object]) -> None:
        """Rebuild the bin/index contents from :meth:`_index_state` output,
        without touching the run counters (they are restored separately)."""
