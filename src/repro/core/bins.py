"""Time-windowed post bins (paper §4, "Handling Time Diversity").

The paper stores the recent diversified posts in a circular array with two
cursors: the oldest post still inside the λt window and the most recent
post. A Python deque gives the same two-ended behaviour — append new posts
on the right, expire old posts from the left — while scans run newest-first
(right to left) and stop at the first expired candidate, so a scan never
touches posts outside the window.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from itertools import chain

from .post import Post


class PostBin:
    """A deque of posts ordered by arrival (and therefore by timestamp)."""

    __slots__ = ("_posts",)

    def __init__(self) -> None:
        self._posts: deque[Post] = deque()

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    @property
    def data(self) -> deque[Post]:
        """The underlying arrival-ordered deque.

        Exposed for the engines' hot loops: after :meth:`expire` has run at
        the current timestamp, every remaining post is inside the window,
        so a coverage scan can iterate ``reversed(bin.data)`` directly —
        no per-candidate cutoff check and no generator frame per candidate.
        Callers must not mutate it.
        """
        return self._posts

    def append(self, post: Post) -> None:
        """Store ``post`` as the newest entry."""
        self._posts.append(post)

    def scan(self, now: float, lambda_t: float, *, newest_first: bool = True) -> Iterator[Post]:
        """Yield candidates inside the window ``[now - lambda_t, now]``.

        ``newest_first=True`` (default, and what the paper describes — "from
        the most recent post to the older ones") allows early termination at
        the first expired post; on duplicate-heavy streams it also finds a
        covering post sooner, since duplicates cluster in time. The
        oldest-first order is kept for the scan-order ablation and must skip
        over expired entries instead of stopping.
        """
        cutoff = now - lambda_t
        if newest_first:
            for post in reversed(self._posts):
                if post.timestamp < cutoff:
                    return
                yield post
        else:
            for post in self._posts:
                if post.timestamp >= cutoff:
                    yield post

    def expire(self, now: float, lambda_t: float) -> int:
        """Drop posts older than ``now - lambda_t``; return how many."""
        cutoff = now - lambda_t
        dropped = 0
        posts = self._posts
        while posts and posts[0].timestamp < cutoff:
            posts.popleft()
            dropped += 1
        return dropped

    def clear(self) -> int:
        """Remove everything; return the number of posts dropped."""
        dropped = len(self._posts)
        self._posts.clear()
        return dropped

    # -- migration helpers (repro.dynamic) ---------------------------------
    #
    # Cold-path operations used when the author graph changes under a live
    # engine. Bins only need *non-decreasing timestamp* order for `expire`
    # and `scan` to stay correct (admit verdicts are scan-order independent),
    # so merges normalise to the canonical (timestamp, post_id) order.

    def merge(self, posts: Iterable[Post]) -> int:
        """Merge ``posts`` into the bin, keeping timestamp order; return
        how many were inserted. Callers are responsible for not inserting
        duplicates of posts already present."""
        incoming = list(posts)
        if not incoming:
            return 0
        merged = sorted(
            chain(self._posts, incoming),
            key=lambda p: (p.timestamp, p.post_id),
        )
        self._posts = deque(merged)
        return len(incoming)

    def remove_authored(self, author: int) -> int:
        """Drop every post authored by ``author``; return how many."""
        kept = [post for post in self._posts if post.author != author]
        dropped = len(self._posts) - len(kept)
        if dropped:
            self._posts = deque(kept)
        return dropped
