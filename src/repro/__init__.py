"""repro — reproduction of "Slowing the Firehose: Multi-Dimensional
Diversity on Social Post Streams" (Cheng, Chrobak, Hristidis; EDBT 2016).

The library diversifies social post streams in real time: every arriving
post is admitted to the output sub-stream unless an already-admitted post
covers it across all three diversity dimensions — content (SimHash),
time (timestamp gap) and author (friend-vector cosine).

Quickstart::

    from repro import Post, Thresholds, UniBin
    from repro.authors import AuthorGraph

    graph = AuthorGraph(nodes=[1, 2], edges=[(1, 2)])
    diversifier = UniBin(Thresholds(lambda_t=600.0), graph)
    for post in stream:            # posts in timestamp order
        if diversifier.offer(post):
            show_to_user(post)

Packages:

* :mod:`repro.core` — the model, the three SPSD algorithms, cost model,
  use-case advisor.
* :mod:`repro.multiuser` — M-SPSD engines (per-user and shared-component).
* :mod:`repro.simhash` — content distance substrate.
* :mod:`repro.authors` — author distance substrate.
* :mod:`repro.social` — synthetic Twitter-like data substrate.
* :mod:`repro.eval` — experiment harness reproducing every figure/table.
* :mod:`repro.service` — latency/capacity measurement with overload control.
* :mod:`repro.resilience` — fault-tolerant ingestion: reorder buffering,
  quarantine, overload shedding, checkpoint/restore, fault injection.
* :mod:`repro.obs` — dependency-free metrics registry, offer-path tracing
  and exposition (Prometheus text / JSON / JSONL spans).
"""

from .core import (
    CliqueBin,
    NeighborBin,
    Post,
    StreamDiversifier,
    Thresholds,
    UniBin,
    make_diversifier,
    recommend,
)
from .errors import (
    ConfigurationError,
    DatasetError,
    GraphError,
    ReproError,
    StreamOrderError,
    UnknownAlgorithmError,
    UnknownAuthorError,
)
from .errors import CheckpointError
from .multiuser import (
    IndependentMultiUser,
    SharedComponentMultiUser,
    SubscriptionTable,
    make_multiuser,
)
from .resilience import (
    OverloadController,
    Quarantine,
    ReorderBuffer,
    ResilientIngest,
    restore_engine,
    snapshot_engine,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "CliqueBin",
    "ConfigurationError",
    "DatasetError",
    "GraphError",
    "IndependentMultiUser",
    "NeighborBin",
    "OverloadController",
    "Post",
    "Quarantine",
    "ReorderBuffer",
    "ReproError",
    "ResilientIngest",
    "SharedComponentMultiUser",
    "StreamDiversifier",
    "StreamOrderError",
    "SubscriptionTable",
    "Thresholds",
    "UniBin",
    "UnknownAlgorithmError",
    "UnknownAuthorError",
    "make_diversifier",
    "make_multiuser",
    "recommend",
    "restore_engine",
    "snapshot_engine",
    "__version__",
]
