"""Tiered window store: in-memory head + append-only spill segments.

The paper's engines keep the whole λt window of every bin in process
memory, which makes subscriber count a function of RAM. This module bounds
that: a :class:`TieredPostBin` keeps only the *recent head* of a bin in
memory (a deque, exactly like :class:`~repro.core.bins.PostBin`) and spills
the cold prefix to append-only pickle segments on disk.

Why segments make compaction free: posts arrive in non-decreasing timestamp
order and are always spilled oldest-first, so segment ``i`` ends no later
than segment ``i+1`` begins, which ends no later than the head begins.
Expiry therefore only ever removes a *prefix* of the store — whole old
segments are dropped by unlinking the file, at most one boundary segment is
trimmed by advancing a start cursor, and nothing is ever rewritten.

The bin is a drop-in replacement for :class:`PostBin`: same methods, same
*exact* eviction/len accounting, and iteration yields equal posts in the
same order (segments are pickled, and ``Post`` is a frozen value type), so
coverage verdicts — and hence receiver sets and checkpoints — are
byte-identical to the all-in-memory store. What spilling trades away is
scan locality: a coverage scan that runs past the head faults segments back
in one file at a time (a one-segment decode cache keeps duplicate-heavy
streams cheap).
"""

from __future__ import annotations

import os
import pickle
import weakref
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from itertools import chain, count

from ..core.post import Post
from ..errors import ConfigurationError
from .accounting import (
    DEQUE_SLOT_BYTES,
    POST_BASE_BYTES,
    SPILLED_ENTRY_BYTES,
)

#: Process-wide segment file counter; combined with the pid it keeps file
#: names unique even when many bins (or sharded worker processes) share one
#: spill directory.
_SEGMENT_IDS = count()


@dataclass(frozen=True)
class SpillConfig:
    """Where and when a :class:`TieredPostBin` spills.

    Picklable by design: the parallel layer ships it to shard workers inside
    :class:`~repro.parallel.worker.ShardSpec`, and every process derives
    unique segment file names from its own pid.

    Attributes:
        directory: spill directory (created on first use; shared freely
            between bins and processes).
        head_limit: max posts kept in a bin's in-memory head before the
            oldest ``segment_size`` of them are spilled.
        segment_size: posts per spill segment — the granularity of free
            compaction (expiry drops whole segments).
    """

    directory: str
    head_limit: int = 512
    segment_size: int = 256

    def __post_init__(self) -> None:
        # Fail fast on unset paths: an optional directory passed through
        # ``str(...)`` unchecked turns into the literal "None", which
        # ``os.makedirs`` then happily creates at the caller's cwd.
        if not isinstance(self.directory, str) or not self.directory:
            raise ConfigurationError(
                "SpillConfig.directory must be a non-empty path string, "
                f"got {self.directory!r}"
            )
        if self.directory == "None":
            raise ConfigurationError(
                "SpillConfig.directory is the literal string 'None' — an "
                "unset optional directory was stringified; pass a real "
                "path (or no SpillConfig at all)"
            )
        if self.segment_size < 1:
            raise ConfigurationError(
                f"segment_size must be >= 1, got {self.segment_size}"
            )
        if self.head_limit < self.segment_size:
            raise ConfigurationError(
                f"head_limit ({self.head_limit}) must be >= "
                f"segment_size ({self.segment_size}) so a spill always "
                f"fills a whole segment"
            )

    def make_bin(self) -> "TieredPostBin":
        """Build a tiered bin spilling under this config."""
        return TieredPostBin(self)


class _Segment:
    """One on-disk run of posts plus its in-memory timestamp stubs.

    ``start`` is the cursor of the expired prefix: posts before it are
    logically gone (they were counted as evictions) but stay in the file
    until the whole segment expires and the file is unlinked.
    """

    __slots__ = ("path", "timestamps", "start")

    def __init__(self, path: str, timestamps: list[float]):
        self.path = path
        self.timestamps = timestamps
        self.start = 0

    @property
    def live(self) -> int:
        return len(self.timestamps) - self.start


def _cleanup_paths(paths: set[str]) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass


class _TieredView:
    """Read-only arrival-ordered view over a tiered bin.

    Duck-types the slice of the deque API the engines' hot loops use on
    ``PostBin.data``: ``reversed()`` for the newest-first coverage scan,
    plain iteration for the oldest-first ablation, ``len()`` for gauges.
    """

    __slots__ = ("_bin",)

    def __init__(self, bin_: "TieredPostBin"):
        self._bin = bin_

    def __len__(self) -> int:
        return len(self._bin)

    def __iter__(self) -> Iterator[Post]:
        return self._bin._iter_oldest_first()

    def __reversed__(self) -> Iterator[Post]:
        return self._bin._iter_newest_first()


class TieredPostBin:
    """A :class:`~repro.core.bins.PostBin` with a bounded in-memory head.

    Construct via :meth:`SpillConfig.make_bin`. The engines accept either
    bin flavour through their ``storage=`` keyword; all mutation and
    accounting semantics (append / scan / expire / clear / merge /
    remove_authored return values) match ``PostBin`` exactly.
    """

    __slots__ = (
        "_config",
        "_head",
        "_segments",
        "_cache_path",
        "_cache_posts",
        "_dir_ready",
        "_paths",
        "_finalizer",
        "__weakref__",
    )

    def __init__(self, config: SpillConfig):
        self._config = config
        self._head: deque[Post] = deque()
        self._segments: list[_Segment] = []
        self._cache_path: str | None = None
        self._cache_posts: list[Post] | None = None
        self._dir_ready = False
        # Shared with the finalizer so segment files never outlive the bin,
        # even when it is garbage-collected without an explicit dispose().
        self._paths: set[str] = set()
        self._finalizer = weakref.finalize(self, _cleanup_paths, self._paths)

    # -- PostBin API -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._head) + sum(seg.live for seg in self._segments)

    def __iter__(self) -> Iterator[Post]:
        return self._iter_oldest_first()

    @property
    def data(self) -> _TieredView:
        """Arrival-ordered read view (see :attr:`PostBin.data`)."""
        return _TieredView(self)

    def append(self, post: Post) -> None:
        """Store ``post`` as the newest entry, spilling the cold prefix of
        the head once it outgrows ``head_limit``."""
        self._head.append(post)
        if len(self._head) > self._config.head_limit:
            self._spill(self._config.segment_size)

    def scan(self, now: float, lambda_t: float, *, newest_first: bool = True) -> Iterator[Post]:
        """Yield candidates inside ``[now - lambda_t, now]`` — same
        semantics and order as :meth:`PostBin.scan`."""
        cutoff = now - lambda_t
        if newest_first:
            for post in self._iter_newest_first():
                if post.timestamp < cutoff:
                    return
                yield post
        else:
            for post in self._iter_oldest_first():
                if post.timestamp >= cutoff:
                    yield post

    def expire(self, now: float, lambda_t: float) -> int:
        """Drop posts older than ``now - lambda_t``; return the exact count.

        Whole-segment expiry is the free compaction: the file is unlinked,
        nothing is copied. Because the store is globally timestamp-ordered,
        at most the *oldest surviving* segment can be partially expired —
        it is trimmed by advancing its start cursor.
        """
        cutoff = now - lambda_t
        dropped = 0
        segments = self._segments
        while segments and segments[0].timestamps[-1] < cutoff:
            seg = segments.pop(0)
            dropped += seg.live
            self._discard(seg)
        if segments:
            seg = segments[0]
            timestamps = seg.timestamps
            start = seg.start
            while timestamps[start] < cutoff:
                start += 1
                dropped += 1
            seg.start = start
        head = self._head
        while head and head[0].timestamp < cutoff:
            head.popleft()
            dropped += 1
        return dropped

    def clear(self) -> int:
        """Remove everything (and its segment files); return the count."""
        dropped = len(self)
        for seg in self._segments:
            self._discard(seg)
        self._segments.clear()
        self._head.clear()
        return dropped

    def merge(self, posts: Iterable[Post]) -> int:
        """Merge ``posts`` keeping (timestamp, post_id) order; return how
        many were inserted. Cold path: rewrites the spilled tier."""
        incoming = list(posts)
        if not incoming:
            return 0
        merged = sorted(
            chain(self._iter_oldest_first(), incoming),
            key=lambda p: (p.timestamp, p.post_id),
        )
        self._rewrite(merged)
        return len(incoming)

    def remove_authored(self, author: int) -> int:
        """Drop every post authored by ``author``; return how many."""
        posts = list(self._iter_oldest_first())
        kept = [post for post in posts if post.author != author]
        dropped = len(posts) - len(kept)
        if dropped:
            self._rewrite(kept)
        return dropped

    # -- tiering -----------------------------------------------------------

    def flush(self) -> int:
        """Force-spill the entire in-memory head to disk; return how many
        posts moved. The governor's first ladder rung: turn warm window
        state cold to free RAM without changing any verdict."""
        moved = len(self._head)
        if moved:
            self._spill(moved)
        return moved

    @property
    def head_len(self) -> int:
        """Posts currently resident in the in-memory head."""
        return len(self._head)

    @property
    def spilled_len(self) -> int:
        """Live posts currently resident in spill segments."""
        return sum(seg.live for seg in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def approx_bytes(self) -> int:
        """Accounted in-memory bytes: full posts for the head, timestamp
        stubs for spilled entries (their payload lives on disk)."""
        total = sum(
            POST_BASE_BYTES + len(p.text) + DEQUE_SLOT_BYTES for p in self._head
        )
        for seg in self._segments:
            total += seg.live * SPILLED_ENTRY_BYTES
        return total

    def dispose(self) -> None:
        """Drop all state and unlink segment files now (idempotent)."""
        self.clear()
        self._cache_path = None
        self._cache_posts = None

    # -- internals ---------------------------------------------------------

    def _spill(self, n: int) -> None:
        head = self._head
        chunk = [head.popleft() for _ in range(min(n, len(head)))]
        if not chunk:
            return
        if not self._dir_ready:
            os.makedirs(self._config.directory, exist_ok=True)
            self._dir_ready = True
        name = f"seg-{os.getpid()}-{next(_SEGMENT_IDS):010d}.bin"
        path = os.path.join(self._config.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(chunk, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._paths.add(path)
        self._segments.append(_Segment(path, [p.timestamp for p in chunk]))

    def _discard(self, seg: _Segment) -> None:
        self._paths.discard(seg.path)
        if self._cache_path == seg.path:
            self._cache_path = None
            self._cache_posts = None
        try:
            os.unlink(seg.path)
        except OSError:
            pass

    def _read(self, seg: _Segment) -> list[Post]:
        if self._cache_path != seg.path:
            with open(seg.path, "rb") as fh:
                self._cache_posts = pickle.load(fh)
            self._cache_path = seg.path
        return self._cache_posts  # type: ignore[return-value]

    def _iter_oldest_first(self) -> Iterator[Post]:
        for seg in list(self._segments):
            posts = self._read(seg)
            yield from posts[seg.start :]
        yield from self._head

    def _iter_newest_first(self) -> Iterator[Post]:
        for post in reversed(self._head):
            yield post
        for seg in reversed(list(self._segments)):
            posts = self._read(seg)
            for i in range(len(posts) - 1, seg.start - 1, -1):
                yield posts[i]

    def _rewrite(self, posts: list[Post]) -> None:
        for seg in self._segments:
            self._discard(seg)
        self._segments.clear()
        self._head = deque(posts)
        config = self._config
        while len(self._head) > config.head_limit:
            self._spill(config.segment_size)
