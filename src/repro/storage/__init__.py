"""Bounded-memory window storage (the PR-6 tiered store).

Engines keep their λt windows in :class:`~repro.core.bins.PostBin` deques by
default; pass ``storage=SpillConfig(...)`` (through ``make_diversifier`` /
``make_multiuser`` / the CLI's ``--spill-dir``) and every bin becomes a
:class:`TieredPostBin` — an in-memory recent head plus append-only spill
segments on disk, with expiry dropping whole old segments so compaction is
free. Verdicts, stats and checkpoints are byte-identical to the in-memory
store; only scan locality is traded (see :mod:`repro.storage.tiered`).

:mod:`repro.storage.accounting` supplies the deterministic byte estimates
the :class:`~repro.resilience.MemoryGovernor` budgets against.
"""

from .framing import FRAME_HEADER, read_framed, write_framed
from .accounting import (
    INDEX_ENTRY_BYTES,
    POST_BASE_BYTES,
    SAMPLE_BYTES,
    SPILLED_ENTRY_BYTES,
    estimate_bin_bytes,
    estimate_index_bytes,
    estimate_message_bytes,
    estimate_post_bytes,
    estimate_posts_bytes,
)
from .tiered import SpillConfig, TieredPostBin

__all__ = [
    "FRAME_HEADER",
    "INDEX_ENTRY_BYTES",
    "POST_BASE_BYTES",
    "SAMPLE_BYTES",
    "SPILLED_ENTRY_BYTES",
    "SpillConfig",
    "TieredPostBin",
    "estimate_bin_bytes",
    "estimate_index_bytes",
    "estimate_message_bytes",
    "estimate_post_bytes",
    "estimate_posts_bytes",
    "read_framed",
    "write_framed",
]
