"""CRC-framed atomic file persistence shared across the durability layers.

Every on-disk artifact whose partial write must *never* load — supervisor
shard checkpoints (:mod:`repro.supervise`), feed mailbox snapshots
(:mod:`repro.feed.durable`) — uses the same two primitives:

* :func:`write_framed` — pickle the payload, prefix it with a
  ``<length, crc32>`` header, write to a same-directory temp file, flush,
  fsync, then rename over the target. A crash at any instant leaves
  either the previous complete file or the new complete file, never a
  torn one.
* :func:`read_framed` — reject truncation (file shorter than the header
  promises) and corruption (CRC mismatch) with a loud
  :class:`~repro.errors.CheckpointError` instead of silently-wrong
  restored state.

The header is also the framing unit of the feed write-ahead log
(:mod:`repro.feed.wal`), where many frames are appended to one file; the
single-payload helpers here are for whole-file artifacts.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path

from ..errors import CheckpointError

__all__ = ["FRAME_HEADER", "read_framed", "write_framed"]

#: On-disk framing: payload length + CRC32, then the pickled payload.
FRAME_HEADER = struct.Struct("<QI")


def write_framed(path: str | Path, payload: object) -> int:
    """Atomically persist ``payload`` at ``path`` (temp + fsync + rename),
    framed with length and CRC so partial writes can never load. Returns
    the number of bytes written (header + payload)."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path = str(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(FRAME_HEADER.pack(len(blob), zlib.crc32(blob)))
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return FRAME_HEADER.size + len(blob)


def read_framed(path: str | Path):
    """Load a framed payload, rejecting torn or truncated files."""
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read {path}: {exc}") from exc
    if len(raw) < FRAME_HEADER.size:
        raise CheckpointError(
            f"{path} is truncated: {len(raw)} bytes is shorter than the "
            f"{FRAME_HEADER.size}-byte header (crash mid-write?)"
        )
    length, crc = FRAME_HEADER.unpack_from(raw)
    blob = raw[FRAME_HEADER.size :]
    if len(blob) != length:
        raise CheckpointError(
            f"{path} is truncated: header promises {length} payload bytes, "
            f"file holds {len(blob)} (crash mid-write?)"
        )
    if zlib.crc32(blob) != crc:
        raise CheckpointError(
            f"{path} is corrupt: payload CRC mismatch (torn write or disk "
            "corruption); refusing to restore from it"
        )
    return pickle.loads(blob)
