"""Byte accounting for the memory governor (deterministic estimates).

The governor (:class:`repro.resilience.MemoryGovernor`) budgets *estimated*
bytes, not ``sys.getsizeof`` walks: estimates are deterministic across
platforms and Python builds, cheap enough to recompute at the governor's
tick cadence, and — because both the budget and the usage are measured with
the same ruler — the hysteresis ladder behaves reproducibly in tests and
benchmarks. The constants below are calibrated against CPython 3.11 object
sizes (slotted ``Post``, deque blocks, dict entries) and err slightly high,
so staying under the accounted budget keeps the real RSS contribution of
the accounted structures under it too.

Accounted families (one gauge each in :mod:`repro.obs`):

* ``window`` — admitted posts held in engine bins (RAM head only for
  tiered bins; spilled segments cost a per-entry stub, not the post).
* ``index``  — SimHash pigeonhole tables (:class:`repro.simhash.SimHashIndex`).
* ``journal`` — the supervisor's write-ahead :class:`~repro.supervise.BatchJournal`.
* ``service`` — the ingest service's per-run reservoirs (arrival/latency
  samples, the per-user mailbox analog of the paper's reading model).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.post import Post

#: Slotted frozen ``Post`` instance: object header, five slot pointers, the
#: boxed float timestamp and the (often large) fingerprint int.
POST_BASE_BYTES = 168

#: One deque slot (pointer into a deque block, amortized).
DEQUE_SLOT_BYTES = 8

#: In-memory stub for a spilled post: its timestamp in the segment's
#: timestamp list plus the list slot (the post text lives on disk).
SPILLED_ENTRY_BYTES = 24

#: One SimHash table entry: a dict slot in a bucket plus the key/fingerprint
#: references (each stored fingerprint appears once per table).
INDEX_ENTRY_BYTES = 104

#: Fixed overhead of one journalled command tuple (list slot, tuple header,
#: per-post wrapping tuples are charged via :func:`estimate_message_bytes`).
JOURNAL_ENTRY_BASE_BYTES = 96

#: One float sample in a service reservoir (boxed float + list slot).
SAMPLE_BYTES = 32

#: Fixed overhead of one materialized per-user mailbox: the object, its
#: entry deque (one empty block) and its seen-set header.
MAILBOX_BASE_BYTES = 480

#: One slotted ``FeedEntry`` in a mailbox: object header, four slot
#: pointers, the boxed float timestamp, plus its deque slot.
MAILBOX_ENTRY_BYTES = 112

#: One sequence number in a mailbox's impression (seen) set: the set slot
#: plus the (usually small) int.
SEEN_ENTRY_BYTES = 32


def estimate_mailbox_bytes(mailboxes: int, entries: int, seen: int) -> int:
    """Accounted bytes of a fanout mailbox store: ``mailboxes``
    materialized boxes holding ``entries`` feed entries and ``seen``
    recorded impressions. The store tracks all three counts
    incrementally, so the governor's ``mailbox`` family costs O(1) per
    tick regardless of subscriber count."""
    return (
        mailboxes * MAILBOX_BASE_BYTES
        + entries * MAILBOX_ENTRY_BYTES
        + seen * SEEN_ENTRY_BYTES
    )


def estimate_post_bytes(post: Post) -> int:
    """Estimated resident bytes of one in-memory :class:`Post`."""
    return POST_BASE_BYTES + len(post.text) + DEQUE_SLOT_BYTES


def estimate_posts_bytes(posts: Iterable[Post]) -> int:
    """Sum of :func:`estimate_post_bytes` over ``posts``."""
    return sum(POST_BASE_BYTES + len(p.text) + DEQUE_SLOT_BYTES for p in posts)


def estimate_bin_bytes(bin_) -> int:
    """Accounted bytes of one window bin, either flavour: a tiered bin
    reports its own head/stub accounting, a plain :class:`PostBin` is
    charged per resident post."""
    approx = getattr(bin_, "approx_bytes", None)
    if approx is not None:
        return approx()
    return estimate_posts_bytes(bin_)


def estimate_index_bytes(index) -> int:
    """Estimated bytes of a :class:`~repro.simhash.SimHashIndex`: every
    stored fingerprint occupies one entry in each of the ``radius + 1``
    pigeonhole tables."""
    return len(index) * index.table_count * INDEX_ENTRY_BYTES


def estimate_message_bytes(message: tuple) -> int:
    """Estimated bytes of one journalled wire message.

    Walks the message payload charging :func:`estimate_post_bytes` for every
    :class:`Post` and a flat per-element overhead for containers — exact
    enough for budgeting the journal family, and computed once per append
    (the journal accumulates the total incrementally).
    """
    total = JOURNAL_ENTRY_BASE_BYTES
    stack: list[object] = [message]
    while stack:
        obj = stack.pop()
        if isinstance(obj, Post):
            total += POST_BASE_BYTES + len(obj.text)
        elif isinstance(obj, (tuple, list)):
            total += 8 * len(obj)
            stack.extend(obj)
        elif isinstance(obj, dict):
            total += 16 * len(obj)
            stack.extend(obj.values())
        elif isinstance(obj, str):
            total += len(obj)
        elif isinstance(obj, (bytes, bytearray, memoryview)):
            # Detached shared-memory batches journal their packed rows as
            # one bytes blob; charge it at face value.
            total += len(obj)
    return total


def estimate_ring_bytes(rings: Iterable) -> int:
    """Accounted bytes of the parallel engine's shared-memory rings —
    fixed at creation (``capacity`` per ring), deliberately reported via
    :meth:`~repro.parallel.ParallelSharedMultiUser.transport_bytes`
    rather than a governor family: ring capacity is constant for the
    pool's lifetime, so it belongs in capacity planning, not in the
    governor's reclaim ladder."""
    return sum(ring.capacity for ring in rings)
