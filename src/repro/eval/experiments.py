"""Experiment drivers: one function per paper figure/table (§6).

Every driver returns an :class:`ExperimentResult` whose rows are exactly
the series the corresponding figure plots (or the table lists), so a
benchmark or the CLI can print paper-vs-measured data with no further
processing. Dataset scale is decoupled from the drivers: pass any
:class:`~repro.social.Dataset`; :func:`default_dataset` provides cached
small/medium/large builds whose *ratios* match the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..authors import greedy_clique_cover
from ..core import (
    Thresholds,
    estimate_all,
    parameters_from_run,
    table4_rows,
)
from ..core.registry import describe_algorithms
from ..multiuser import MULTIUSER_NAMES
from ..social import (
    Dataset,
    DatasetConfig,
    NetworkConfig,
    StreamConfig,
    build_dataset,
)
from .distributions import author_similarity_ccdf, hamming_distribution
from .harness import compare_algorithms, run_algorithm, run_multiuser_by_name
from .tables import render_table
from .userstudy import (
    cosine_crossover,
    cosine_curve,
    crossover,
    example_pairs,
    generate_labeled_pairs,
    precision_recall_curve,
)


@dataclass(slots=True)
class ExperimentResult:
    """A reproduced figure/table: rows of data plus context notes."""

    experiment_id: str
    title: str
    parameters: dict[str, object]
    rows: list[dict[str, object]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Printable form: title, parameter line, table, notes."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            "parameters: "
            + ", ".join(f"{k}={v}" for k, v in self.parameters.items()),
            render_table(self.rows),
        ]
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Dataset presets
# ---------------------------------------------------------------------------

_DATASET_CACHE: dict[str, Dataset] = {}

_SCALE_CONFIGS: dict[str, DatasetConfig] = {
    # Tiny: test-suite speed (matches repro.social.small_dataset sizing).
    "small": DatasetConfig(
        network=NetworkConfig(
            n_authors=400, n_communities=20, mean_followees=25, seed=42
        ),
        stream=StreamConfig(
            duration=6 * 3600.0, posts_per_author_per_day=16.0, seed=43
        ),
        sample_size=250,
    ),
    # Default experiment scale: the paper's ratios at 1/20 size.
    "medium": DatasetConfig(
        network=NetworkConfig(n_authors=2000, n_communities=16, seed=42),
        stream=StreamConfig(duration=86_400.0, posts_per_author_per_day=10.0, seed=43),
        sample_size=1000,
    ),
    # Larger sweep for throughput-focused runs.
    "large": DatasetConfig(
        network=NetworkConfig(n_authors=8000, n_communities=64, seed=42),
        stream=StreamConfig(duration=86_400.0, posts_per_author_per_day=10.0, seed=43),
        sample_size=4000,
    ),
}

SCALES: tuple[str, ...] = tuple(_SCALE_CONFIGS)


def default_dataset(scale: str = "medium") -> Dataset:
    """A cached dataset at the named scale (``small``/``medium``/``large``)."""
    if scale not in _SCALE_CONFIGS:
        raise KeyError(f"unknown scale {scale!r}; choose from {SCALES}")
    if scale not in _DATASET_CACHE:
        _DATASET_CACHE[scale] = build_dataset(_SCALE_CONFIGS[scale])
    return _DATASET_CACHE[scale]


def _perf_rows(runs) -> list[dict[str, object]]:
    return [run.as_row() for run in runs]


# ---------------------------------------------------------------------------
# §3 — content distance studies
# ---------------------------------------------------------------------------

def figure2_hamming_distribution(
    *, n_posts: int = 20_000, n_pairs: int = 200_000, seed: int = 31
) -> ExperimentResult:
    """Figure 2: Hamming distances of random post pairs (normal, mean 32)."""
    dist = hamming_distribution(n_posts=n_posts, n_pairs=n_pairs, seed=seed)
    rows = [
        {"distance": d, "pairs": dist.counts.get(d, 0)}
        for d in range(min(dist.counts), max(dist.counts) + 1)
    ]
    return ExperimentResult(
        experiment_id="figure2",
        title="Hamming distance distribution of random tweet pairs",
        parameters={"n_posts": n_posts, "n_pairs": n_pairs},
        rows=rows,
        notes=[
            f"mean={dist.mean:.2f} (paper: 32), std={dist.std:.2f}",
            f"fraction in [24, 40] = {dist.fraction_between(24, 40):.4f} "
            "(paper: 'most of the distances')",
        ],
    )


def table1_example_pairs(*, seed: int = 77) -> ExperimentResult:
    """Table 1: example near-duplicate pairs with their Hamming distances."""
    rows = [
        {
            "hamming": pair.raw_distance,
            "tweet_a": pair.text_a[:70],
            "tweet_b": pair.text_b[:70],
        }
        for pair in example_pairs(seed=seed)
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Example tweet pairs and their Hamming distances",
        parameters={"seed": seed},
        rows=rows,
        notes=["paper's examples sit at distances 3, 8 and 13"],
    )


def figure3_pr_raw(
    *, pairs_per_distance: int = 100, seed: int = 101, pairs=None
) -> ExperimentResult:
    """Figure 3: precision/recall vs Hamming threshold on RAW text.

    ``pairs`` injects a pre-generated study dataset (the benchmarks reuse
    one set across Figures 3/4 and the cosine baseline)."""
    if pairs is None:
        pairs = generate_labeled_pairs(pairs_per_distance=pairs_per_distance, seed=seed)
    points = precision_recall_curve(pairs, normalized=False)
    cross = crossover(points)
    rows = [
        {
            "threshold": p.threshold,
            "precision": round(p.precision, 4),
            "recall": round(p.recall, 4),
        }
        for p in points
        if 3 <= p.threshold <= 24
    ]
    return ExperimentResult(
        experiment_id="figure3",
        title="Precision/recall for Hamming threshold, raw text",
        parameters={"pairs": len(pairs), "seed": seed},
        rows=rows,
        notes=[
            f"crossover at h={cross.threshold} "
            f"(P={cross.precision:.3f}, R={cross.recall:.3f}); the paper "
            "finds raw-text curves below the normalised ones"
        ],
    )


def figure4_pr_normalized(
    *, pairs_per_distance: int = 100, seed: int = 101, pairs=None
) -> ExperimentResult:
    """Figure 4: precision/recall vs Hamming threshold on NORMALISED text
    (the paper reads λc = 18 with P = 0.96 / R = 0.95 off this plot)."""
    if pairs is None:
        pairs = generate_labeled_pairs(pairs_per_distance=pairs_per_distance, seed=seed)
    raw_points = precision_recall_curve(pairs, normalized=False)
    norm_points = precision_recall_curve(pairs, normalized=True)
    cross = crossover(norm_points)
    rows = [
        {
            "threshold": p.threshold,
            "precision": round(p.precision, 4),
            "recall": round(p.recall, 4),
        }
        for p in norm_points
        if 3 <= p.threshold <= 24
    ]
    # Dominance check: normalisation should improve the curves overall.
    raw_area = sum(p.precision + p.recall for p in raw_points[3:23])
    norm_area = sum(p.precision + p.recall for p in norm_points[3:23])
    return ExperimentResult(
        experiment_id="figure4",
        title="Precision/recall for Hamming threshold, normalised text",
        parameters={"pairs": len(pairs), "seed": seed},
        rows=rows,
        notes=[
            f"crossover at h={cross.threshold} "
            f"(P={cross.precision:.3f}, R={cross.recall:.3f}); paper: h=18, "
            "P=0.96, R=0.95",
            f"normalised curves dominate raw: sum(P+R) {norm_area:.1f} vs "
            f"{raw_area:.1f} (paper Figure 4 vs Figure 3)",
        ],
    )


def sec3_cosine_baseline(
    *, pairs_per_distance: int = 100, seed: int = 101, pairs=None
) -> ExperimentResult:
    """§3 text: the cosine-similarity baseline crosses at ≈0.7 with the
    same P/R as SimHash at its own crossover."""
    if pairs is None:
        pairs = generate_labeled_pairs(pairs_per_distance=pairs_per_distance, seed=seed)
    points = cosine_curve(pairs)
    cross = cosine_crossover(points)
    simhash_cross = crossover(precision_recall_curve(pairs, normalized=True))
    rows = [
        {
            "cosine_threshold": round(p.threshold, 2),
            "precision": round(p.precision, 4),
            "recall": round(p.recall, 4),
        }
        for p in points
    ]
    return ExperimentResult(
        experiment_id="sec3_cosine",
        title="Cosine-similarity baseline for near-duplicate detection",
        parameters={"pairs": len(pairs), "seed": seed},
        rows=rows,
        notes=[
            f"cosine crossover at {cross.threshold:.2f} "
            f"(P={cross.precision:.3f}, R={cross.recall:.3f}); paper: 0.7",
            f"SimHash crossover (normalised): P={simhash_cross.precision:.3f}, "
            f"R={simhash_cross.recall:.3f} — the paper's point is the two "
            "measures are equally effective",
        ],
    )


# ---------------------------------------------------------------------------
# §6.1 — dataset statistics
# ---------------------------------------------------------------------------

def figure9_author_similarity(dataset: Dataset | None = None) -> ExperimentResult:
    """Figure 9: CCDF of pairwise author similarity."""
    dataset = dataset or default_dataset()
    ccdf = author_similarity_ccdf(dataset.vectors)
    rows = [
        {"similarity": t, "fraction_of_pairs_at_least": round(f, 5)}
        for t, f in zip(ccdf.thresholds, ccdf.fractions)
    ]
    return ExperimentResult(
        experiment_id="figure9",
        title="Author similarity distribution (CCDF)",
        parameters={"authors": len(dataset.authors), "pairs": ccdf.total_pairs},
        rows=rows,
        notes=[
            "paper: 2.3% of pairs >= 0.2 and 0.6% >= 0.3 — a heavy tail of "
            "similar pairs over a mass of dissimilar ones"
        ],
    )


def topology_statistics(
    dataset: Dataset | None = None, *, lambda_as: tuple[float, ...] = (0.7, 0.8)
) -> ExperimentResult:
    """§6.2 text: graph topology parameters d, c, s at each λa."""
    dataset = dataset or default_dataset()
    rows = []
    for lambda_a in lambda_as:
        graph = dataset.graph(lambda_a)
        cover = greedy_clique_cover(graph)
        rows.append(
            {
                "lambda_a": lambda_a,
                "edges": graph.edge_count,
                "d_neighbors_per_author": round(graph.average_degree(), 2),
                "c_cliques_per_author": round(cover.average_cliques_per_author(), 2),
                "s_avg_clique_size": round(cover.average_clique_size(), 2),
            }
        )
    return ExperimentResult(
        experiment_id="sec62_topology",
        title="Author-graph topology vs lambda_a",
        parameters={"authors": len(dataset.authors)},
        rows=rows,
        notes=[
            "paper at lambda_a=0.7: d=113.7, c=29, s=20; at 0.8: d=437.3, "
            "c=106, s=38 — all three grow sharply with lambda_a"
        ],
    )


# ---------------------------------------------------------------------------
# §6.2 — single-user SPSD performance
# ---------------------------------------------------------------------------

def figure10_dimension_effect(
    dataset: Dataset | None = None,
    *,
    thresholds: Thresholds = Thresholds(),
    max_posts: int = 8000,
) -> ExperimentResult:
    """Figure 10: posts left after diversification for dimension subsets.

    Dimension-disabled variants run on UniBin (the only algorithm that
    stays well-defined with a disabled author dimension); with time
    disabled the bin never expires, so the stream is capped at
    ``max_posts`` to keep the quadratic scan tractable.
    """
    dataset = dataset or default_dataset()
    posts = dataset.posts[:max_posts]
    graph = dataset.graph(thresholds.lambda_a)
    configurations: list[tuple[str, Thresholds]] = [
        ("content+time+author", thresholds),
        ("content+time (author off)", thresholds.without("author")),
        ("content+author (time off)", thresholds.without("time")),
        ("time+author (content off)", thresholds.without("content")),
        ("content only", thresholds.without("time", "author")),
        (
            "all three, lambda_t=60min",
            Thresholds(thresholds.lambda_c, 3600.0, thresholds.lambda_a),
        ),
        (
            "all three, lambda_a=0.8",
            Thresholds(thresholds.lambda_c, thresholds.lambda_t, 0.8),
        ),
    ]
    rows = []
    for label, config in configurations:
        config_graph = None if config.lambda_a >= 1.0 else dataset.graph(config.lambda_a)
        run = run_algorithm("unibin", config, config_graph, posts)
        rows.append(
            {
                "dimensions": label,
                "posts_in": len(posts),
                "posts_left": run.posts_admitted,
                "pruned_pct": round(100.0 * (1.0 - run.retention_ratio), 2),
            }
        )
    return ExperimentResult(
        experiment_id="figure10",
        title="Posts left after diversification, by dimension subset",
        parameters={
            "posts": len(posts),
            "lambda_c": thresholds.lambda_c,
            "lambda_t": thresholds.lambda_t,
            "lambda_a": thresholds.lambda_a,
        },
        rows=rows,
        notes=[
            "paper: all three dimensions at defaults prune ~10%; removing "
            "any dimension changes the retained count substantially",
        ],
    )


def _sweep(
    dataset: Dataset,
    *,
    experiment_id: str,
    title: str,
    x_label: str,
    settings: list[tuple[object, Thresholds]],
    posts=None,
) -> ExperimentResult:
    """Shared sweep harness for Figures 11–13: one compare_algorithms call
    per x value, with the author graph and clique cover rebuilt only when
    λa changes."""
    posts = posts if posts is not None else dataset.posts
    rows: list[dict[str, object]] = []
    cover_cache: dict[float, object] = {}
    for x_value, config in settings:
        graph = dataset.graph(config.lambda_a)
        if config.lambda_a not in cover_cache:
            cover_cache[config.lambda_a] = greedy_clique_cover(graph)
        runs = compare_algorithms(
            config, graph, posts, cover=cover_cache[config.lambda_a]
        )
        for run in runs:
            row: dict[str, object] = {x_label: x_value}
            row.update(run.as_row())
            rows.append(row)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        parameters={"posts": len(posts), "authors": len(dataset.authors)},
        rows=rows,
    )


def figure11_vary_time_threshold(
    dataset: Dataset | None = None,
    *,
    lambda_ts: tuple[float, ...] = (300.0, 600.0, 1200.0, 1800.0, 3600.0),
    base: Thresholds = Thresholds(),
) -> ExperimentResult:
    """Figure 11: performance vs λt (λc = 18, λa = 0.7)."""
    dataset = dataset or default_dataset()
    result = _sweep(
        dataset,
        experiment_id="figure11",
        title="Performance vs time diversity threshold lambda_t",
        x_label="lambda_t_s",
        settings=[
            (lt, Thresholds(base.lambda_c, lt, base.lambda_a)) for lt in lambda_ts
        ],
    )
    result.notes.append(
        "paper: all algorithms speed up as lambda_t shrinks; Neighbor/Clique "
        "beat UniBin on time; CliqueBin leads for small lambda_t (<=10min); "
        "NeighborBin uses the most RAM"
    )
    return result


def figure12_vary_content_threshold(
    dataset: Dataset | None = None,
    *,
    lambda_cs: tuple[int, ...] = (9, 12, 15, 18),
    base: Thresholds = Thresholds(),
) -> ExperimentResult:
    """Figure 12: performance vs λc (λt = 30 min, λa = 0.7)."""
    dataset = dataset or default_dataset()
    result = _sweep(
        dataset,
        experiment_id="figure12",
        title="Performance vs content diversity threshold lambda_c",
        x_label="lambda_c",
        settings=[
            (lc, Thresholds(lc, base.lambda_t, base.lambda_a)) for lc in lambda_cs
        ],
    )
    result.notes.append(
        "paper: lambda_c barely moves any metric — SimHash detects the "
        "duplicates well before 18 bits, so retention is nearly flat"
    )
    return result


def figure13_vary_author_threshold(
    dataset: Dataset | None = None,
    *,
    lambda_as: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8),
    base: Thresholds = Thresholds(),
) -> ExperimentResult:
    """Figure 13: performance vs λa (λt = 30 min, λc = 18)."""
    dataset = dataset or default_dataset()
    result = _sweep(
        dataset,
        experiment_id="figure13",
        title="Performance vs author diversity threshold lambda_a",
        x_label="lambda_a",
        settings=[
            (la, Thresholds(base.lambda_c, base.lambda_t, la)) for la in lambda_as
        ],
    )
    result.notes.append(
        "paper: larger lambda_a densifies G, inflating NeighborBin/CliqueBin "
        "RAM and time sharply while UniBin stays stable"
    )
    return result


def figure14_vary_post_rate(
    dataset: Dataset | None = None,
    *,
    ratios: tuple[float, ...] = (0.01, 0.05, 0.25, 1.0),
    thresholds: Thresholds = Thresholds(),
) -> ExperimentResult:
    """Figure 14: performance vs post sampling ratio (1%–100%)."""
    dataset = dataset or default_dataset()
    graph = dataset.graph(thresholds.lambda_a)
    cover = greedy_clique_cover(graph)
    rows: list[dict[str, object]] = []
    for ratio in ratios:
        sampled = dataset.stream.subsample_posts(ratio)
        runs = compare_algorithms(thresholds, graph, sampled.posts, cover=cover)
        for run in runs:
            row: dict[str, object] = {"sample_ratio": ratio}
            row.update(run.as_row())
            rows.append(row)
    return ExperimentResult(
        experiment_id="figure14",
        title="Performance vs post generation rate",
        parameters={"authors": len(dataset.authors)},
        rows=rows,
        notes=[
            "paper: at low throughput UniBin wins (insertion overhead "
            "dominates for the binned algorithms); CliqueBin beats "
            "NeighborBin at small/moderate rates"
        ],
    )


def figure15_vary_subscriptions(
    dataset: Dataset | None = None,
    *,
    fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0),
    thresholds: Thresholds = Thresholds(),
    seed: int = 9,
) -> ExperimentResult:
    """Figure 15: performance vs number of subscribed authors."""
    import random

    dataset = dataset or default_dataset()
    rng = random.Random(seed)
    rows: list[dict[str, object]] = []
    for fraction in fractions:
        count = max(2, int(len(dataset.authors) * fraction))
        subscribed = set(rng.sample(dataset.authors, count))
        sub_stream = dataset.stream.restrict_to_authors(subscribed)
        graph = dataset.graph(thresholds.lambda_a).subgraph(subscribed)
        cover = greedy_clique_cover(graph)
        runs = compare_algorithms(thresholds, graph, sub_stream.posts, cover=cover)
        for run in runs:
            row: dict[str, object] = {"subscriptions": count}
            row.update(run.as_row())
            rows.append(row)
    return ExperimentResult(
        experiment_id="figure15",
        title="Performance vs number of subscribed authors",
        parameters={"authors": len(dataset.authors)},
        rows=rows,
        notes=[
            "paper: UniBin slightly ahead for small subscription sets; the "
            "binned algorithms take over as subscriptions (and thus "
            "throughput) grow"
        ],
    )


def sec622_tiny_lambda_t(
    dataset: Dataset | None = None,
    *,
    lambda_t: float = 60.0,
    base: Thresholds = Thresholds(),
) -> ExperimentResult:
    """§6.2.2's omitted data point: λt = 1 minute.

    The paper states it left λt = 1 min out of Figure 11 "where UniBin
    performs best among the three algorithms" — at that window size the
    binned algorithms' insertion overhead outweighs their comparison
    savings. This driver produces the omitted point.
    """
    dataset = dataset or default_dataset()
    thresholds = Thresholds(base.lambda_c, lambda_t, base.lambda_a)
    graph = dataset.graph(thresholds.lambda_a)
    cover = greedy_clique_cover(graph)
    runs = compare_algorithms(thresholds, graph, dataset.posts, cover=cover)
    rows = []
    for run in runs:
        row = run.as_row()
        row["bin_operations"] = run.comparisons + run.insertions
        rows.append(row)
    times = {row["algorithm"]: float(row["time_s"]) for row in rows}
    rams = {row["algorithm"]: int(row["ram_copies"]) for row in rows}
    return ExperimentResult(
        experiment_id="sec622_tiny_lambda_t",
        title="The omitted lambda_t = 1 min point (sec 6.2.2)",
        parameters={"lambda_t_s": lambda_t, "posts": len(dataset.posts)},
        rows=rows,
        notes=[
            f"fastest: {min(times, key=times.get)}; smallest RAM: "
            f"{min(rams, key=rams.get)} — at a 1-minute window UniBin's "
            "scan shrinks to a handful of posts, erasing the binned "
            "algorithms' comparison advantage while it keeps the smallest "
            "footprint (the paper: 'UniBin performs best' here; the gap "
            "widens with graph density, since the binned algorithms pay "
            "d+1 / c insertions per post regardless of the window)",
        ],
    )


# ---------------------------------------------------------------------------
# §6.3 — multi-user M-SPSD
# ---------------------------------------------------------------------------

def figure16_multiuser(
    dataset: Dataset | None = None,
    *,
    thresholds: Thresholds = Thresholds(),
    engines: tuple[str, ...] = MULTIUSER_NAMES,
) -> ExperimentResult:
    """Figure 16: M_* vs S_* engines, every author doubling as a user."""
    dataset = dataset or default_dataset()
    graph = dataset.graph(thresholds.lambda_a)
    subscriptions = dataset.subscriptions()
    rows: list[dict[str, object]] = []
    for name in engines:
        run = run_multiuser_by_name(
            name, thresholds, graph, subscriptions, dataset.posts
        )
        rows.append(run.as_row())
    # Headline ratio the paper reports: S_UniBin vs M_UniBin.
    by_name = {row["algorithm"]: row for row in rows}
    notes = [
        "paper: S_UniBin uses 43% less time and 27% less RAM than M_UniBin; "
        "S_NeighborBin/S_CliqueBin improve their M_* baselines by ~8%/4%"
    ]
    if "m_unibin" in by_name and "s_unibin" in by_name:
        m, s = by_name["m_unibin"], by_name["s_unibin"]
        if float(m["time_s"]) > 0 and int(m["ram_copies"]) > 0:
            notes.append(
                "measured: S_UniBin time "
                f"-{100 * (1 - float(s['time_s']) / float(m['time_s'])):.0f}%, "
                "RAM "
                f"-{100 * (1 - int(s['ram_copies']) / int(m['ram_copies'])):.0f}% "
                "vs M_UniBin"
            )
    return ExperimentResult(
        experiment_id="figure16",
        title="Performance of the algorithms for M-SPSD",
        parameters={
            "users": len(subscriptions),
            "avg_subscriptions": round(subscriptions.average_subscriptions(), 1),
            "median_subscriptions": subscriptions.median_subscriptions(),
        },
        rows=rows,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# §4.4 — analytical model and qualitative tables
# ---------------------------------------------------------------------------

def table2_cost_model(
    dataset: Dataset | None = None, *, thresholds: Thresholds = Thresholds()
) -> ExperimentResult:
    """Table 2: analytical per-window estimates next to measured counts."""
    dataset = dataset or default_dataset()
    graph = dataset.graph(thresholds.lambda_a)
    cover = greedy_clique_cover(graph)
    posts = dataset.posts
    duration = max(p.timestamp for p in posts) - min(p.timestamp for p in posts)
    windows = max(1.0, duration / thresholds.lambda_t)
    runs = compare_algorithms(thresholds, graph, posts, cover=cover)
    retention = runs[0].retention_ratio
    params = parameters_from_run(
        graph,
        cover,
        posts_in_window=len(posts) / windows,
        retention_ratio=retention,
    )
    estimates = {e.algorithm: e for e in estimate_all(params)}
    rows = []
    for run in runs:
        est = estimates[run.algorithm]
        rows.append(
            {
                "algorithm": run.algorithm,
                "ram_predicted": round(est.ram_copies, 1),
                "ram_measured": run.peak_stored_copies,
                "cmp_per_window_predicted": round(est.comparisons, 0),
                "cmp_per_window_measured": round(run.comparisons / windows, 0),
                "ins_per_window_predicted": round(est.insertions, 1),
                "ins_per_window_measured": round(run.insertions / windows, 1),
            }
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Analytical cost model (sec 4.4) vs measured counts",
        parameters={
            "m": params.m,
            "n_per_window": round(params.n, 1),
            "r": round(params.r, 3),
            "d": round(params.d, 2),
            "c": round(params.c, 2),
            "s": round(params.s, 2),
            "q": round(params.clique_overlap_q(), 3),
        },
        rows=rows,
        notes=[
            "the model is an order-of-magnitude estimate under uniformity "
            "assumptions; predicted/measured should agree within a small "
            "constant factor and, critically, in the *ordering* of the "
            "three algorithms on every metric"
        ],
    )


def table3_properties() -> ExperimentResult:
    """Table 3: qualitative comparison of the three algorithms."""
    rows = [
        {
            "algorithm": profile.name,
            "data_structures": "; ".join(profile.data_structures),
            "ram": profile.ram,
            "comparisons": profile.comparisons,
            "insertions": profile.insertions,
        }
        for profile in describe_algorithms()
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Differences between the three algorithms for SPSD",
        parameters={},
        rows=rows,
    )


def table4_use_cases() -> ExperimentResult:
    """Table 4: use-case guidance (also backing the advisor)."""
    return ExperimentResult(
        experiment_id="table4",
        title="Use cases of the three algorithms for SPSD",
        parameters={},
        rows=list(table4_rows()),
    )


# ---------------------------------------------------------------------------
# Registry for the CLI / EXPERIMENTS.md generation
# ---------------------------------------------------------------------------

def _with_dataset(fn):
    def runner(scale: str) -> ExperimentResult:
        return fn(default_dataset(scale))

    return runner


def _no_dataset(fn):
    def runner(scale: str) -> ExperimentResult:  # noqa: ARG001 - uniform signature
        return fn()

    return runner


EXPERIMENTS: dict[str, object] = {
    "figure2": _no_dataset(figure2_hamming_distribution),
    "table1": _no_dataset(table1_example_pairs),
    "figure3": _no_dataset(figure3_pr_raw),
    "figure4": _no_dataset(figure4_pr_normalized),
    "sec3_cosine": _no_dataset(sec3_cosine_baseline),
    "figure9": _with_dataset(figure9_author_similarity),
    "sec62_topology": _with_dataset(topology_statistics),
    "figure10": _with_dataset(figure10_dimension_effect),
    "figure11": _with_dataset(figure11_vary_time_threshold),
    "figure12": _with_dataset(figure12_vary_content_threshold),
    "figure13": _with_dataset(figure13_vary_author_threshold),
    "figure14": _with_dataset(figure14_vary_post_rate),
    "figure15": _with_dataset(figure15_vary_subscriptions),
    "sec622_tiny_lambda_t": _with_dataset(sec622_tiny_lambda_t),
    "figure16": _with_dataset(figure16_multiuser),
    "table2": _with_dataset(table2_cost_model),
    "table3": _no_dataset(table3_properties),
    "table4": _no_dataset(table4_use_cases),
}


def run_experiment(experiment_id: str, *, scale: str = "medium") -> ExperimentResult:
    """Run one registered experiment by id at the given dataset scale."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale)  # type: ignore[operator]
