"""Run harness: timed ingestion of a stream by any algorithm.

The harness is what every figure-level experiment calls: build the
algorithm, push the whole stream through it, and collect the four
quantities the paper plots (running time, RAM proxy, comparisons,
insertions) plus retention and the admitted-id set for verification.
"""

from __future__ import annotations

import time

from ..authors import AuthorGraph, CliqueCover
from ..core import Post, StreamDiversifier, Thresholds, make_diversifier
from ..multiuser import MultiUserDiversifier, SubscriptionTable, make_multiuser
from .metrics import MeasuredRun


def _purge_interval(posts: list[Post], purge_every: int | None) -> int:
    """Periodic-GC interval: every ~5% of the stream unless overridden."""
    if purge_every is not None:
        return max(1, purge_every)
    return max(1, min(500, len(posts) // 8) or 1, len(posts) // 40)


def run_diversifier(
    diversifier: StreamDiversifier,
    posts: list[Post],
    *,
    purge_every: int | None = None,
) -> MeasuredRun:
    """Ingest ``posts`` (already timestamp-ordered) and measure.

    Every ``purge_every`` posts the diversifier's expired copies are
    evicted (a real deployment's periodic GC); the purge cost is included
    in the measured time.
    """
    interval = _purge_interval(posts, purge_every)
    admitted: list[int] = []
    offer = diversifier.offer
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for i, post in enumerate(posts):
        if offer(post):
            admitted.append(post.post_id)
        if i % interval == interval - 1:
            diversifier.purge(post.timestamp)
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    stats = diversifier.stats
    return MeasuredRun(
        algorithm=diversifier.name,
        posts_processed=stats.posts_processed,
        posts_admitted=stats.posts_admitted,
        comparisons=stats.comparisons,
        insertions=stats.insertions,
        peak_stored_copies=stats.peak_stored_copies,
        wall_time=wall,
        cpu_time=cpu,
        admitted_ids=frozenset(admitted),
    )


def run_algorithm(
    name: str,
    thresholds: Thresholds,
    graph: AuthorGraph | None,
    posts: list[Post],
    *,
    cover: CliqueCover | None = None,
) -> MeasuredRun:
    """Build algorithm ``name`` and run it over ``posts``.

    ``cover`` injects a precomputed clique cover into CliqueBin so sweeps
    don't recompute it per run (the paper treats cover computation as
    offline precomputation, like the author graph itself).
    """
    kwargs = {}
    if name == "cliquebin" and cover is not None:
        kwargs["cover"] = cover
    diversifier = make_diversifier(name, thresholds, graph, **kwargs)
    return run_diversifier(diversifier, posts)


def compare_algorithms(
    thresholds: Thresholds,
    graph: AuthorGraph,
    posts: list[Post],
    *,
    algorithms: tuple[str, ...] = ("unibin", "neighborbin", "cliquebin"),
    cover: CliqueCover | None = None,
) -> list[MeasuredRun]:
    """Run several algorithms on the same stream (one figure data point)."""
    return [
        run_algorithm(name, thresholds, graph, posts, cover=cover)
        for name in algorithms
    ]


def run_multiuser(
    engine: MultiUserDiversifier,
    posts: list[Post],
    *,
    purge_every: int | None = None,
) -> MeasuredRun:
    """Ingest ``posts`` through an M-SPSD engine and measure.

    ``posts_admitted`` counts *deliveries* summed over users' timelines;
    ``admitted_ids`` is the set of posts delivered to at least one user.
    Periodic purging matches :func:`run_diversifier`.
    """
    interval = _purge_interval(posts, purge_every)
    delivered_ids: set[int] = set()
    deliveries = 0
    peak_live_copies = 0
    offer = engine.offer
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for i, post in enumerate(posts):
        receivers = offer(post)
        if receivers:
            delivered_ids.add(post.post_id)
            deliveries += len(receivers)
        if i % interval == interval - 1:
            # Sample the *live* footprint right after GC. Summing the
            # per-instance peaks instead would overstate RAM, and by a
            # partition-dependent amount (finer partitions inflate more),
            # making M_*/S_* incomparable.
            engine.purge(post.timestamp)
            peak_live_copies = max(peak_live_copies, engine.stored_copies())
    if posts:
        engine.purge(posts[-1].timestamp)
        peak_live_copies = max(peak_live_copies, engine.stored_copies())
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    stats = engine.aggregate_stats()
    return MeasuredRun(
        algorithm=engine.name,
        posts_processed=len(posts),
        posts_admitted=deliveries,
        comparisons=stats.comparisons,
        insertions=stats.insertions,
        peak_stored_copies=peak_live_copies,
        wall_time=wall,
        cpu_time=cpu,
        admitted_ids=frozenset(delivered_ids),
    )


def run_multiuser_by_name(
    name: str,
    thresholds: Thresholds,
    graph: AuthorGraph,
    subscriptions: SubscriptionTable,
    posts: list[Post],
) -> MeasuredRun:
    """Construct engine ``name`` (e.g. ``"s_unibin"``) and run it.

    Engine construction (per-user subgraphs, component catalogs) is *not*
    included in the measured time, matching the paper's treatment of graph
    preparation as offline work.
    """
    engine = make_multiuser(name, thresholds, graph, subscriptions)
    return run_multiuser(engine, posts)
