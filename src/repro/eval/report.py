"""Full-evaluation markdown report generation.

``python -m repro report --output results.md`` reruns every registered
experiment and ablation at the chosen scale and writes a single markdown
document — the regenerable counterpart of the repository's curated
EXPERIMENTS.md. Useful for checking a code change against the whole
evaluation in one command.
"""

from __future__ import annotations

import time

from .ablations import ABLATIONS
from .experiments import EXPERIMENTS, ExperimentResult


def _render_markdown(result: ExperimentResult, elapsed: float) -> str:
    lines = [
        f"## {result.experiment_id} — {result.title}",
        "",
        "parameters: "
        + (
            ", ".join(f"{k}={v}" for k, v in result.parameters.items())
            or "(none)"
        )
        + f"  *(generated in {elapsed:.1f}s)*",
        "",
    ]
    if result.rows:
        columns = list(result.rows[0].keys())
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "---|" * len(columns))
        for row in result.rows:
            lines.append(
                "| " + " | ".join(str(row.get(c, "")) for c in columns) + " |"
            )
        lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)


def generate_report(
    *,
    scale: str = "medium",
    experiment_ids: list[str] | None = None,
) -> str:
    """Run the selected experiments (default: all) and return markdown."""
    runners: dict[str, object] = dict(EXPERIMENTS)
    runners.update(ABLATIONS)
    if experiment_ids is not None:
        unknown = [e for e in experiment_ids if e not in runners]
        if unknown:
            raise KeyError(f"unknown experiments: {unknown}")
        runners = {e: runners[e] for e in experiment_ids}

    sections = [
        "# Evaluation report",
        "",
        f"Synthetic dataset scale: `{scale}`. Every section regenerates one "
        "paper figure/table or ablation; see EXPERIMENTS.md for the curated "
        "paper-vs-measured discussion.",
        "",
    ]
    for experiment_id, runner in runners.items():
        start = time.perf_counter()
        result = runner(scale)  # type: ignore[operator]
        sections.append(_render_markdown(result, time.perf_counter() - start))
    return "\n".join(sections)
