"""ASCII rendering of experiment results.

Every experiment driver returns rows of plain dicts; this module turns them
into aligned monospace tables so benchmarks and the CLI print the same
series the paper's figures plot.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned ASCII table.

    ``columns`` fixes the column order (default: keys of the first row).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row_cells)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> str:
    """Render a figure-style multi-series table: one row per x value, one
    column per series (e.g. per algorithm)."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return render_table(rows, title=title)
