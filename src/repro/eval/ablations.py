"""Ablation studies for the design choices DESIGN.md calls out.

These are not paper figures; they substantiate decisions the paper makes in
prose — SimHash over cosine for speed (§3), linear scan over the permuted
index at large λc (§3, end), the greedy clique cover (§4.3), newest-first
bin scans (§4).
"""

from __future__ import annotations

import random
import time

from ..authors import greedy_clique_cover, per_edge_cover
from ..core import Thresholds, make_diversifier
from ..simhash import SimHashIndex, TfVector, hamming, simhash
from ..social import Dataset, TextGenerator, Vocabulary
from .experiments import ExperimentResult, default_dataset
from .harness import run_diversifier


def ablation_simhash_speed(
    *, n_texts: int = 2000, n_comparisons: int = 200_000, seed: int = 13
) -> ExperimentResult:
    """SimHash vs cosine: cost of one pairwise comparison.

    Fingerprints/TF vectors are precomputed for both (matching how the
    diversifiers amortise per-post preparation); the measured loop is pure
    comparison work, which is what scales with r·n² in UniBin.
    """
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    texts = [
        generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng).text
        for _ in range(n_texts)
    ]
    fingerprints = [simhash(t) for t in texts]
    vectors = [TfVector.from_text(t) for t in texts]
    pair_indices = [
        (rng.randrange(n_texts), rng.randrange(n_texts)) for _ in range(n_comparisons)
    ]

    start = time.perf_counter()
    checksum = 0
    for i, j in pair_indices:
        checksum += hamming(fingerprints[i], fingerprints[j])
    simhash_time = time.perf_counter() - start

    start = time.perf_counter()
    acc = 0.0
    for i, j in pair_indices:
        acc += vectors[i].cosine(vectors[j])
    cosine_time = time.perf_counter() - start

    rows = [
        {
            "measure": "simhash_hamming",
            "comparisons": n_comparisons,
            "total_s": round(simhash_time, 4),
            "ns_per_comparison": round(1e9 * simhash_time / n_comparisons, 1),
        },
        {
            "measure": "cosine_tf",
            "comparisons": n_comparisons,
            "total_s": round(cosine_time, 4),
            "ns_per_comparison": round(1e9 * cosine_time / n_comparisons, 1),
        },
    ]
    return ExperimentResult(
        experiment_id="ablation_simhash_speed",
        title="Per-comparison cost: SimHash Hamming vs TF cosine",
        parameters={"n_texts": n_texts, "checksum": checksum, "acc": round(acc, 1)},
        rows=rows,
        notes=[
            f"speedup: {cosine_time / simhash_time:.1f}x — the paper picks "
            "SimHash because it matches cosine's quality at a fraction of "
            "the comparison cost"
        ],
    )


def ablation_permuted_index(
    *,
    radii: tuple[int, ...] = (2, 4, 6, 10, 14, 18),
    n_fingerprints: int = 5000,
    n_queries: int = 500,
    seed: int = 19,
) -> ExperimentResult:
    """Pigeonhole index vs linear scan across Hamming radii.

    The paper rules the index out at λc = 18; this measures why — the
    candidate set the index must verify approaches the whole table as the
    radius grows (blocks shrink to ~3 bits, so block collisions are common).
    """
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    fingerprints = [
        simhash(generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng).text)
        for _ in range(n_fingerprints)
    ]
    queries = [
        simhash(generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng).text)
        for _ in range(n_queries)
    ]
    rows = []
    for radius in radii:
        index = SimHashIndex(radius)
        for key, fp in enumerate(fingerprints):
            index.add(fp, key)
        candidates = sum(index.candidate_count(q) for q in queries)
        avg_candidates = candidates / n_queries
        rows.append(
            {
                "radius": radius,
                "tables": index.table_count,
                "avg_candidates_per_query": round(avg_candidates, 1),
                "linear_scan_candidates": n_fingerprints,
                "candidate_fraction": round(avg_candidates / n_fingerprints, 4),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_permuted_index",
        title="Pigeonhole SimHash index: candidate blow-up with radius",
        parameters={"fingerprints": n_fingerprints, "queries": n_queries},
        rows=rows,
        notes=[
            "small radii prune candidates by orders of magnitude; at the "
            "paper's lambda_c=18 the candidate fraction nears 1, i.e. the "
            "index degenerates to a (more expensive) linear scan"
        ],
    )


def ablation_clique_cover(
    dataset: Dataset | None = None, *, lambda_a: float = 0.7
) -> ExperimentResult:
    """Greedy clique edge cover vs the trivial per-edge cover."""
    dataset = dataset or default_dataset()
    graph = dataset.graph(lambda_a)
    greedy = greedy_clique_cover(graph)
    trivial = per_edge_cover(graph)
    rows = [
        {
            "cover": "greedy (paper 4.3)",
            "cliques": len(greedy),
            "total_membership": greedy.total_membership,
            "c_cliques_per_author": round(greedy.average_cliques_per_author(), 2),
            "s_avg_clique_size": round(greedy.average_clique_size(), 2),
        },
        {
            "cover": "per-edge (trivial)",
            "cliques": len(trivial),
            "total_membership": trivial.total_membership,
            "c_cliques_per_author": round(trivial.average_cliques_per_author(), 2),
            "s_avg_clique_size": round(trivial.average_clique_size(), 2),
        },
    ]
    return ExperimentResult(
        experiment_id="ablation_clique_cover",
        title="Clique edge cover quality: greedy vs per-edge",
        parameters={"lambda_a": lambda_a, "edges": graph.edge_count},
        rows=rows,
        notes=[
            "CliqueBin stores one post copy per clique membership of the "
            "author, so total_membership/authors = c is the replication "
            "factor the greedy heuristic minimises"
        ],
    )


def ablation_scan_order(
    dataset: Dataset | None = None, *, thresholds: Thresholds = Thresholds()
) -> ExperimentResult:
    """Newest-first vs oldest-first bin scans (UniBin).

    Duplicates cluster in time near their source, so scanning from the
    newest post finds a covering post sooner; both orders admit the same Z.
    """
    dataset = dataset or default_dataset()
    graph = dataset.graph(thresholds.lambda_a)
    rows = []
    admitted: dict[bool, frozenset[int]] = {}
    for newest_first in (True, False):
        diversifier = make_diversifier(
            "unibin", thresholds, graph, newest_first=newest_first
        )
        run = run_diversifier(diversifier, dataset.posts)
        admitted[newest_first] = run.admitted_ids
        rows.append(
            {
                "scan_order": "newest_first" if newest_first else "oldest_first",
                "comparisons": run.comparisons,
                "time_s": round(run.wall_time, 4),
                "admitted": run.posts_admitted,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_scan_order",
        title="Bin scan order: newest-first vs oldest-first",
        parameters={"posts": len(dataset.posts)},
        rows=rows,
        notes=[
            "identical output either way: "
            f"{'yes' if admitted[True] == admitted[False] else 'NO (bug!)'}"
        ],
    )


def ablation_preprocessing(
    *, pairs_per_distance: int = 40, seed: int = 101
) -> ExperimentResult:
    """§3's preprocessing trials: URL canonicalisation, mention/hashtag
    re-weighting, abbreviation expansion.

    The paper tried each and found "no significant impact to the precision
    and recall" over plain normalisation; this ablation re-measures the
    crossover P/R (and its F1) for every variant on the simulated study
    pairs.
    """
    from ..simhash import PreprocessOptions, hamming, simhash_preprocessed
    from .userstudy import PRPoint, generate_labeled_pairs

    pairs = generate_labeled_pairs(pairs_per_distance=pairs_per_distance, seed=seed)
    variants: list[tuple[str, PreprocessOptions]] = [
        ("normalized (default)", PreprocessOptions()),
        ("+ canonicalize URLs", PreprocessOptions(canonicalize_urls=True)),
        ("+ hashtag weight x3", PreprocessOptions(hashtag_weight=3.0)),
        ("+ strip mentions", PreprocessOptions(mention_weight=0.0)),
        ("+ expand abbreviations", PreprocessOptions(expand_abbreviations=True)),
        (
            "+ all of the above",
            PreprocessOptions(
                canonicalize_urls=True,
                hashtag_weight=3.0,
                mention_weight=0.0,
                expand_abbreviations=True,
            ),
        ),
    ]

    total_redundant = sum(1 for p in pairs if p.redundant)
    rows = []
    base_f1 = None
    for label, options in variants:
        distances = [
            (
                hamming(
                    simhash_preprocessed(p.text_a, options),
                    simhash_preprocessed(p.text_b, options),
                ),
                p.redundant,
            )
            for p in pairs
        ]
        cross: PRPoint | None = None
        for threshold in range(0, 33):
            predicted = [(d, r) for d, r in distances if d <= threshold]
            tp = sum(1 for _, r in predicted if r)
            precision = tp / len(predicted) if predicted else 1.0
            recall = tp / total_redundant if total_redundant else 0.0
            if recall >= precision:
                cross = PRPoint(threshold, precision, recall, len(predicted))
                break
        assert cross is not None
        f1 = (
            2 * cross.precision * cross.recall / (cross.precision + cross.recall)
            if cross.precision + cross.recall
            else 0.0
        )
        if base_f1 is None:
            base_f1 = f1
        rows.append(
            {
                "variant": label,
                "crossover_h": cross.threshold,
                "precision": round(cross.precision, 4),
                "recall": round(cross.recall, 4),
                "f1": round(f1, 4),
                "delta_f1_vs_default": round(f1 - base_f1, 4),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_preprocessing",
        title="Text preprocessing variants (sec 3 trials)",
        parameters={"pairs": len(pairs)},
        rows=rows,
        notes=[
            "paper: these methods had no significant impact to precision "
            "and recall — expect every delta_f1 within a few points of 0"
        ],
    )


def ablation_indexed_unibin(
    dataset: Dataset | None = None,
    *,
    lambda_cs: tuple[int, ...] = (3, 6, 12, 18),
) -> ExperimentResult:
    """Index-accelerated UniBin vs the linear scan, across λc.

    Quantifies §3's regime boundary from the diversifier's seat: at small
    λc the pigeonhole index eliminates nearly all candidate verifications;
    at the paper's λc = 18 it verifies almost as much as the scan while
    paying index maintenance — the reason the paper's algorithms prune via
    the time and author dimensions instead.
    """
    from ..core import IndexedUniBin, UniBin

    dataset = dataset or default_dataset()
    rows = []
    for lambda_c in lambda_cs:
        thresholds = Thresholds(lambda_c=lambda_c)
        graph = dataset.graph(thresholds.lambda_a)
        plain = run_diversifier(UniBin(thresholds, graph), dataset.posts)
        indexed = run_diversifier(IndexedUniBin(thresholds, graph), dataset.posts)
        if plain.admitted_ids != indexed.admitted_ids:
            raise AssertionError("indexed and plain UniBin outputs diverged")
        rows.append(
            {
                "lambda_c": lambda_c,
                "unibin_comparisons": plain.comparisons,
                "indexed_verified_candidates": indexed.comparisons,
                "candidate_reduction": round(
                    1 - indexed.comparisons / max(1, plain.comparisons), 4
                ),
                "unibin_time_s": round(plain.wall_time, 4),
                "indexed_time_s": round(indexed.wall_time, 4),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_indexed_unibin",
        title="Pigeonhole-indexed UniBin vs linear-scan UniBin",
        parameters={"posts": len(dataset.posts)},
        rows=rows,
        notes=[
            "identical outputs at every lambda_c; the index wins outright "
            "at small radii and loses to maintenance cost near lambda_c=18"
        ],
    )


def baseline_comparison(
    dataset: Dataset | None = None,
    *,
    thresholds: Thresholds = Thresholds(),
    maxmin_k: int = 50,
) -> ExperimentResult:
    """§7 made measurable: SPSD vs sliding-window MaxMin top-k vs leader
    stream clustering, on the same stream and ground truth."""
    from ..baselines import compare_baselines

    dataset = dataset or default_dataset()
    outcomes = compare_baselines(
        dataset.stream,
        dataset.graph(thresholds.lambda_a),
        thresholds,
        maxmin_k=maxmin_k,
    )
    return ExperimentResult(
        experiment_id="baseline_comparison",
        title="SPSD vs related-work baseline models (sec 7)",
        parameters={"posts": len(dataset.posts), "maxmin_k": maxmin_k},
        rows=[o.as_row() for o in outcomes],
        notes=[
            "SPSD must show zero Definition-1 coverage violations; the "
            "top-k and clustering models hide uncovered posts (budgeted "
            "selection) or collapse across the author/time dimensions "
            "(collateral prunes) — the paper's argument for a new model"
        ],
    )


def service_capacity(
    dataset: Dataset | None = None, *, thresholds: Thresholds = Thresholds()
) -> ExperimentResult:
    """The paper's real-time claim, quantified: per-decision latency and
    the sustainable real-time speedup of each algorithm.

    "Sustainable speedup" is the largest stream-clock compression at which
    a single-threaded engine still keeps up (utilisation < 1); e.g. 1,000
    means the engine could absorb a day of this stream in ~86 seconds.
    """
    from ..core import make_diversifier
    from ..service import capacity_sweep

    dataset = dataset or default_dataset()
    graph = dataset.graph(thresholds.lambda_a)
    rows = capacity_sweep(
        lambda name: make_diversifier(name, thresholds, graph),
        dataset.posts,
        algorithms=("unibin", "neighborbin", "cliquebin"),
    )
    return ExperimentResult(
        experiment_id="service_capacity",
        title="Real-time capacity: decision latency and sustainable speedup",
        parameters={"posts": len(dataset.posts), "authors": len(dataset.authors)},
        rows=rows,
        notes=[
            "every algorithm must sustain speedup >> 1 (the paper's "
            "real-time requirement); the binned algorithms' headroom over "
            "UniBin mirrors their Figure-11 running-time advantage"
        ],
    )


def burst_behaviour(
    *, thresholds: Thresholds = Thresholds(lambda_t=900.0), seed: int = 42
) -> ExperimentResult:
    """Flash-crowd behaviour: a breaking-news burst mid-stream.

    The firehose motivation of the paper is exactly this pattern — a story
    breaks, echoes flood in. The experiment generates a stream whose
    arrival rate jumps 9× for half an hour, runs UniBin, and reports the
    per-window arrivals / prune rate / resident copies. Expected shape:
    pruning and memory spike *during* the burst (echoes are redundant and
    the window fills), and both relax immediately after — the coverage
    guarantee holds throughout.
    """
    from ..core import make_diversifier
    from ..social import (
        DatasetConfig,
        NetworkConfig,
        StreamConfig,
        build_dataset,
    )
    from .metrics import find_uncovered
    from .timeseries import windowed_timeseries

    duration = 6 * 3600.0
    burst = (3 * 3600.0, 1800.0, 8.0)
    dataset = build_dataset(
        DatasetConfig(
            network=NetworkConfig(
                n_authors=400, n_communities=20, mean_followees=25, seed=seed
            ),
            stream=StreamConfig(
                duration=duration,
                posts_per_author_per_day=40.0,
                bursts=(burst,),
                seed=seed + 1,
            ),
            sample_size=250,
        )
    )
    graph = dataset.graph(thresholds.lambda_a)
    diversifier = make_diversifier("unibin", thresholds, graph)
    rows = [
        row.as_dict()
        for row in windowed_timeseries(diversifier, dataset.posts, window=1800.0)
    ]
    from ..core import CoverageChecker

    # Independent verification pass over the same stream.
    verifier = make_diversifier("unibin", thresholds, graph)
    admitted = frozenset(p.post_id for p in verifier.diversify(dataset.posts))
    violations = find_uncovered(
        dataset.posts, admitted, CoverageChecker(thresholds, graph)
    )
    center, width, intensity = burst
    return ExperimentResult(
        experiment_id="burst_behaviour",
        title="Flash-crowd burst: per-window arrivals, pruning and memory",
        parameters={
            "posts": len(dataset.posts),
            "burst_center_s": center,
            "burst_width_s": width,
            "burst_intensity": intensity,
            "coverage_violations": len(violations),
        },
        rows=rows,
        notes=[
            "arrivals, prune rate and resident copies must peak in the "
            "burst windows and relax after; coverage_violations must be 0"
        ],
    )


ABLATIONS = {
    "ablation_simhash_speed": lambda scale: ablation_simhash_speed(),
    "ablation_permuted_index": lambda scale: ablation_permuted_index(),
    "ablation_clique_cover": lambda scale: ablation_clique_cover(default_dataset(scale)),
    "ablation_scan_order": lambda scale: ablation_scan_order(default_dataset(scale)),
    "ablation_preprocessing": lambda scale: ablation_preprocessing(),
    "ablation_indexed_unibin": lambda scale: ablation_indexed_unibin(default_dataset(scale)),
    "baseline_comparison": lambda scale: baseline_comparison(default_dataset(scale)),
    "service_capacity": lambda scale: service_capacity(default_dataset(scale)),
    "burst_behaviour": lambda scale: burst_behaviour(),
}
