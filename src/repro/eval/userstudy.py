"""Simulated user study (paper §3: Figures 3, 4 and Table 1).

The paper collected 2000 tweet pairs with raw-SimHash distances 3–22 (100
per distance value) and had students label each pair redundant/not. We
replace the students with the generator's ground-truth labels (semantic
damage of the applied perturbation plan) and reproduce the analyses:

* precision/recall of "Hamming ≤ h ⇒ redundant" for raw fingerprints
  (Figure 3) and normalised fingerprints (Figure 4);
* the crossing point of the two curves (the paper's λc = 18 calibration);
* the cosine-similarity baseline crossover (§3's 0.7 similarity);
* example pairs at representative distances (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..simhash import cosine_similarity, hamming, simhash
from ..social import DuplicateFactory, DuplicatePair, TextGenerator, Vocabulary


@dataclass(frozen=True, slots=True)
class LabeledPair:
    """A tweet pair with fingerprints and the ground-truth label."""

    text_a: str
    text_b: str
    raw_distance: int
    normalized_distance: int
    redundant: bool


@dataclass(frozen=True, slots=True)
class PRPoint:
    """Precision/recall of the threshold classifier at one Hamming value."""

    threshold: int
    precision: float
    recall: float
    predicted_positive: int


def generate_labeled_pairs(
    *,
    pairs_per_distance: int = 100,
    distance_range: tuple[int, int] = (3, 22),
    seed: int = 101,
    max_attempts_factor: int = 400,
) -> list[LabeledPair]:
    """Build the study dataset: ``pairs_per_distance`` pairs per raw-SimHash
    distance in ``distance_range`` (inclusive), like the paper's 100×20.

    Pairs are produced by perturbing fresh posts at random intensities until
    every distance bucket fills; buckets that the generator cannot populate
    within the attempt budget are left short (reported by the caller).
    """
    lo, hi = distance_range
    if lo > hi or lo < 0:
        raise ValueError(f"bad distance range {distance_range}")
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    factory = DuplicateFactory(generator, seed=seed + 2)

    buckets: dict[int, list[LabeledPair]] = {d: [] for d in range(lo, hi + 1)}
    needed = (hi - lo + 1) * pairs_per_distance
    filled = 0
    attempts = 0
    max_attempts = needed * max_attempts_factor
    while filled < needed and attempts < max_attempts:
        attempts += 1
        base = generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng)
        pair: DuplicatePair = factory.variant_of(
            base, intensity=rng.random(), rng=rng
        )
        raw_distance = hamming(
            simhash(pair.original, normalized=False),
            simhash(pair.variant, normalized=False),
        )
        bucket = buckets.get(raw_distance)
        if bucket is None or len(bucket) >= pairs_per_distance:
            continue
        bucket.append(
            LabeledPair(
                text_a=pair.original,
                text_b=pair.variant,
                raw_distance=raw_distance,
                normalized_distance=hamming(
                    simhash(pair.original, normalized=True),
                    simhash(pair.variant, normalized=True),
                ),
                redundant=pair.redundant,
            )
        )
        filled += 1
    return [pair for d in range(lo, hi + 1) for pair in buckets[d]]


def precision_recall_curve(
    pairs: list[LabeledPair], *, normalized: bool, max_threshold: int = 32
) -> list[PRPoint]:
    """P/R of the classifier "distance ≤ h ⇒ redundant" for h = 0..max.

    ``normalized`` picks which fingerprint distance is thresholded —
    False reproduces Figure 3, True reproduces Figure 4. Precision with no
    predicted positives is reported as 1.0 (vacuous).
    """
    total_redundant = sum(1 for p in pairs if p.redundant)
    points: list[PRPoint] = []
    for threshold in range(max_threshold + 1):
        predicted = [
            p
            for p in pairs
            if (p.normalized_distance if normalized else p.raw_distance) <= threshold
        ]
        true_positive = sum(1 for p in predicted if p.redundant)
        precision = true_positive / len(predicted) if predicted else 1.0
        recall = true_positive / total_redundant if total_redundant else 0.0
        points.append(
            PRPoint(
                threshold=threshold,
                precision=precision,
                recall=recall,
                predicted_positive=len(predicted),
            )
        )
    return points


def crossover(points: list[PRPoint]) -> PRPoint:
    """The point where recall first reaches precision (the curves cross).

    The paper reads its λc = 18 default off this crossing (P = 0.96,
    R = 0.95 on normalised text). If the curves never cross, the last point
    is returned.
    """
    for point in points:
        if point.recall >= point.precision:
            return point
    return points[-1]


@dataclass(frozen=True, slots=True)
class CosinePoint:
    """P/R of "cosine ≥ s ⇒ redundant" at one similarity threshold."""

    threshold: float
    precision: float
    recall: float


def cosine_curve(
    pairs: list[LabeledPair], *, steps: int = 20
) -> list[CosinePoint]:
    """The cosine-baseline sweep of §3 (thresholds 0, 0.05, …, 1)."""
    scored = [
        (cosine_similarity(p.text_a, p.text_b), p.redundant) for p in pairs
    ]
    total_redundant = sum(1 for _, r in scored if r)
    points: list[CosinePoint] = []
    for i in range(steps + 1):
        threshold = i / steps
        predicted = [(s, r) for s, r in scored if s >= threshold]
        true_positive = sum(1 for _, r in predicted if r)
        precision = true_positive / len(predicted) if predicted else 1.0
        recall = true_positive / total_redundant if total_redundant else 0.0
        points.append(CosinePoint(threshold, precision, recall))
    return points


def cosine_crossover(points: list[CosinePoint]) -> CosinePoint:
    """Where precision first reaches recall as the threshold rises.

    (Cosine is a similarity: precision rises and recall falls with the
    threshold, opposite to Hamming.) The paper finds the cross at 0.7."""
    for point in points:
        if point.precision >= point.recall:
            return point
    return points[-1]


def example_pairs(
    *, seed: int = 77, targets: tuple[int, ...] = (3, 8, 13)
) -> list[LabeledPair]:
    """Table-1-style examples: redundant pairs near the target distances."""
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    factory = DuplicateFactory(generator, seed=seed + 2)
    examples: list[LabeledPair] = []
    for target in targets:
        best: LabeledPair | None = None
        for _ in range(4000):
            base = generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng)
            pair = factory.variant_of(base, intensity=rng.random() * 0.5, rng=rng)
            if not pair.redundant:
                continue
            distance = hamming(
                simhash(pair.original, normalized=False),
                simhash(pair.variant, normalized=False),
            )
            candidate = LabeledPair(
                text_a=pair.original,
                text_b=pair.variant,
                raw_distance=distance,
                normalized_distance=hamming(
                    simhash(pair.original), simhash(pair.variant)
                ),
                redundant=True,
            )
            if best is None or abs(distance - target) < abs(best.raw_distance - target):
                best = candidate
            if best.raw_distance == target:
                break
        assert best is not None
        examples.append(best)
    return examples
