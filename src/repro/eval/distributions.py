"""Distribution studies: Figure 2 (Hamming) and Figure 9 (author similarity).

Figure 2: SimHash distances between random, unrelated tweets are binomially
distributed around 32 bits (each bit agrees with probability ~1/2) — the
paper's "perfect normal distribution with mean value 32, … most of the
distances between 24 to 40".

Figure 9: the complementary CDF of pairwise author similarity — the paper
reports 2.3% of pairs ≥ 0.2 and 0.6% ≥ 0.3 on its Twitter sample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..authors import FriendVectors, similarity_values
from ..simhash import hamming_bulk, simhash
from ..social import TextGenerator, Vocabulary


@dataclass(frozen=True, slots=True)
class HammingDistribution:
    """Histogram of pairwise SimHash distances between random posts."""

    counts: dict[int, int]
    mean: float
    std: float
    total_pairs: int

    def fraction_between(self, lo: int, hi: int) -> float:
        """Fraction of distances in [lo, hi] (paper checks 24–40)."""
        if self.total_pairs == 0:
            return 0.0
        inside = sum(c for d, c in self.counts.items() if lo <= d <= hi)
        return inside / self.total_pairs


def hamming_distribution(
    *, n_posts: int = 20_000, n_pairs: int = 200_000, seed: int = 31
) -> HammingDistribution:
    """Figure 2: distance histogram over random pairs of random posts."""
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    fingerprints = np.array(
        [
            simhash(generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng).text)
            for _ in range(n_posts)
        ],
        dtype=np.uint64,
    )
    idx_a = np.array([rng.randrange(n_posts) for _ in range(n_pairs)])
    idx_b = np.array([rng.randrange(n_posts) for _ in range(n_pairs)])
    distinct = idx_a != idx_b
    distances = hamming_bulk(fingerprints[idx_a[distinct]], fingerprints[idx_b[distinct]])
    values, counts = np.unique(distances, return_counts=True)
    return HammingDistribution(
        counts={int(v): int(c) for v, c in zip(values, counts)},
        mean=float(distances.mean()),
        std=float(distances.std()),
        total_pairs=int(distances.size),
    )


@dataclass(frozen=True, slots=True)
class SimilarityCcdf:
    """CCDF of pairwise author similarity over *all* author pairs."""

    thresholds: tuple[float, ...]
    fractions: tuple[float, ...]
    total_pairs: int
    positive_pairs: int

    def fraction_at_least(self, threshold: float) -> float:
        """Fraction of pairs with similarity ≥ threshold (interpolating the
        precomputed grid exactly at grid points)."""
        for t, f in zip(self.thresholds, self.fractions):
            if abs(t - threshold) < 1e-12:
                return f
        raise KeyError(f"threshold {threshold} not on the computed grid")


def author_similarity_ccdf(
    vectors: FriendVectors,
    *,
    thresholds: tuple[float, ...] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
) -> SimilarityCcdf:
    """Figure 9: fraction of author pairs with similarity ≥ x.

    Zero-similarity pairs (the overwhelming majority — no shared followee)
    are counted in the denominator without being enumerated.
    """
    m = len(vectors)
    total_pairs = m * (m - 1) // 2
    values = similarity_values(vectors)
    fractions = tuple(
        (sum(1 for v in values if v >= t) / total_pairs) if total_pairs else 0.0
        for t in thresholds
    )
    return SimilarityCcdf(
        thresholds=thresholds,
        fractions=fractions,
        total_pairs=total_pairs,
        positive_pairs=len(values),
    )
