"""Measurement containers and the exact coverage verifier.

The verifier is the ground truth behind the library's central invariant:
after any run, every input post must be covered (Definition 1) by some
admitted post. It re-checks the guarantee offline with a time-indexed scan,
independent of any algorithm's data structures.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from ..core import CoverageChecker, Post


@dataclass(frozen=True, slots=True)
class MeasuredRun:
    """One algorithm's measured ingestion of one stream.

    ``wall_time``/``cpu_time`` are seconds for the full ingest loop;
    counter semantics match :class:`repro.core.RunStats`.
    """

    algorithm: str
    posts_processed: int
    posts_admitted: int
    comparisons: int
    insertions: int
    peak_stored_copies: int
    wall_time: float
    cpu_time: float
    admitted_ids: frozenset[int] = field(repr=False)

    @property
    def retention_ratio(self) -> float:
        """Admitted over processed. For multi-user runs ``posts_admitted``
        counts deliveries across users, so this can exceed 1 (deliveries
        per stream post)."""
        if self.posts_processed == 0:
            return 0.0
        return self.posts_admitted / self.posts_processed

    @property
    def posts_rejected(self) -> int:
        """Pruned posts (single-user runs)."""
        return self.posts_processed - self.posts_admitted

    @property
    def throughput(self) -> float:
        """Posts ingested per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return self.posts_processed / self.wall_time

    def as_row(self) -> dict[str, float | int | str]:
        """Reporting row (drops the admitted-id set)."""
        return {
            "algorithm": self.algorithm,
            "posts": self.posts_processed,
            "admitted": self.posts_admitted,
            "retention": round(self.retention_ratio, 4),
            "time_s": round(self.wall_time, 4),
            "cpu_s": round(self.cpu_time, 4),
            "ram_copies": self.peak_stored_copies,
            "comparisons": self.comparisons,
            "insertions": self.insertions,
        }


def find_uncovered(
    posts: list[Post], admitted_ids: frozenset[int], checker: CoverageChecker
) -> list[Post]:
    """Posts violating the SPSD guarantee (should always be empty).

    A post satisfies the guarantee if it was admitted, or some *earlier*
    admitted post within λt covers it — the streaming algorithms only look
    backward, so we verify that stricter condition. Returns the violators.
    """
    admitted = [p for p in posts if p.post_id in admitted_ids]
    admitted.sort(key=lambda p: p.timestamp)
    admitted_times = [p.timestamp for p in admitted]
    lambda_t = checker.thresholds.lambda_t

    uncovered: list[Post] = []
    for post in posts:
        if post.post_id in admitted_ids:
            continue
        lo = bisect_left(admitted_times, post.timestamp - lambda_t)
        hi = bisect_right(admitted_times, post.timestamp)
        # Newest-first mirrors the algorithms' scan and exits early on
        # duplicate-heavy streams.
        if not any(
            checker.covers(post, admitted[i]) for i in range(hi - 1, lo - 1, -1)
        ):
            uncovered.append(post)
    return uncovered


def verify_coverage(
    posts: list[Post], admitted_ids: frozenset[int], checker: CoverageChecker
) -> None:
    """Raise ``AssertionError`` with the first violators if coverage fails."""
    violations = find_uncovered(posts, admitted_ids, checker)
    if violations:
        sample = [p.post_id for p in violations[:5]]
        raise AssertionError(
            f"{len(violations)} posts violate the coverage guarantee; "
            f"first ids: {sample}"
        )


def pruning_audit(
    posts: list[Post],
    admitted_ids: frozenset[int],
    redundant_ids: set[int],
) -> dict[str, float | int]:
    """Compare pruning decisions against generator ground truth.

    ``redundant_ids`` are post ids the generator created as true
    near-duplicates. Pruned truly-redundant posts are correct prunes; pruned
    non-redundant posts are collateral (the algorithm is still *correct* —
    coverage held — but the post's content differed more). Returns counts
    and the fraction of pruned posts that were ground-truth redundant.
    """
    pruned = {p.post_id for p in posts} - admitted_ids
    true_prunes = len(pruned & redundant_ids)
    result: dict[str, float | int] = {
        "pruned": len(pruned),
        "pruned_ground_truth_redundant": true_prunes,
        "pruned_other": len(pruned) - true_prunes,
    }
    result["prune_precision"] = true_prunes / len(pruned) if pruned else 1.0
    return result
