"""Evaluation harness: measurement, verification and per-figure drivers.

Public surface:

* :func:`run_algorithm` / :func:`compare_algorithms` /
  :func:`run_multiuser_by_name` — timed runs.
* :func:`verify_coverage` / :func:`find_uncovered` — the exact offline
  checker of the SPSD guarantee.
* :mod:`~repro.eval.experiments` — one driver per paper figure/table
  (``run_experiment("figure11")`` etc.).
* :mod:`~repro.eval.ablations` — design-choice ablations.
"""

from .ablations import (
    ABLATIONS,
    ablation_clique_cover,
    ablation_indexed_unibin,
    ablation_permuted_index,
    ablation_preprocessing,
    ablation_scan_order,
    ablation_simhash_speed,
    baseline_comparison,
    burst_behaviour,
    service_capacity,
)
from .distributions import (
    HammingDistribution,
    SimilarityCcdf,
    author_similarity_ccdf,
    hamming_distribution,
)
from .experiments import (
    EXPERIMENTS,
    SCALES,
    ExperimentResult,
    default_dataset,
    run_experiment,
)
from .harness import (
    compare_algorithms,
    run_algorithm,
    run_diversifier,
    run_multiuser,
    run_multiuser_by_name,
)
from .report import generate_report
from .metrics import (
    MeasuredRun,
    find_uncovered,
    pruning_audit,
    verify_coverage,
)
from .tables import render_series, render_table
from .timeseries import WindowRow, windowed_timeseries
from .userstudy import (
    CosinePoint,
    LabeledPair,
    PRPoint,
    cosine_crossover,
    cosine_curve,
    crossover,
    example_pairs,
    generate_labeled_pairs,
    precision_recall_curve,
)

__all__ = [
    "ABLATIONS",
    "EXPERIMENTS",
    "SCALES",
    "CosinePoint",
    "ExperimentResult",
    "HammingDistribution",
    "LabeledPair",
    "MeasuredRun",
    "PRPoint",
    "SimilarityCcdf",
    "ablation_clique_cover",
    "ablation_indexed_unibin",
    "ablation_permuted_index",
    "ablation_preprocessing",
    "ablation_scan_order",
    "ablation_simhash_speed",
    "author_similarity_ccdf",
    "baseline_comparison",
    "burst_behaviour",
    "compare_algorithms",
    "cosine_crossover",
    "cosine_curve",
    "crossover",
    "default_dataset",
    "example_pairs",
    "find_uncovered",
    "generate_report",
    "generate_labeled_pairs",
    "hamming_distribution",
    "precision_recall_curve",
    "pruning_audit",
    "render_series",
    "render_table",
    "WindowRow",
    "windowed_timeseries",
    "run_algorithm",
    "run_diversifier",
    "run_experiment",
    "run_multiuser",
    "run_multiuser_by_name",
    "service_capacity",
    "verify_coverage",
]
