"""Windowed time-series of a diversification run.

Operational visibility for deployments: chop the stream into fixed wall-
clock windows and report, per window, what arrived, what was shown, the
prune rate, and the work done (comparisons / insertions / resident
copies). The benchmarks use it to sanity-check steady-state behaviour; a
service would feed the rows into its metrics system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Post, StreamDiversifier


@dataclass(frozen=True, slots=True)
class WindowRow:
    """Aggregates for one wall-clock window of the stream."""

    window_start: float
    window_end: float
    arrivals: int
    admitted: int
    comparisons: int
    insertions: int
    stored_copies: int

    @property
    def prune_rate(self) -> float:
        if self.arrivals == 0:
            return 0.0
        return 1.0 - self.admitted / self.arrivals

    def as_dict(self) -> dict[str, float | int]:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "prune_rate": round(self.prune_rate, 4),
            "comparisons": self.comparisons,
            "insertions": self.insertions,
            "stored_copies": self.stored_copies,
        }


def windowed_timeseries(
    diversifier: StreamDiversifier,
    posts: list[Post],
    *,
    window: float = 3600.0,
) -> list[WindowRow]:
    """Run ``diversifier`` over ``posts`` collecting one row per window.

    Windows are aligned to the first post's timestamp. The diversifier is
    purged at each window boundary, so ``stored_copies`` is the live
    footprint at window end.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if not posts:
        return []

    rows: list[WindowRow] = []
    stats = diversifier.stats
    window_start = posts[0].timestamp
    arrivals = admitted = 0
    cmp_base, ins_base = stats.comparisons, stats.insertions

    def close_window(end: float) -> None:
        nonlocal arrivals, admitted, cmp_base, ins_base, window_start
        diversifier.purge(end)
        rows.append(
            WindowRow(
                window_start=window_start,
                window_end=end,
                arrivals=arrivals,
                admitted=admitted,
                comparisons=stats.comparisons - cmp_base,
                insertions=stats.insertions - ins_base,
                stored_copies=diversifier.stored_copies(),
            )
        )
        window_start = end
        arrivals = admitted = 0
        cmp_base, ins_base = stats.comparisons, stats.insertions

    for post in posts:
        while post.timestamp >= window_start + window:
            close_window(window_start + window)
        arrivals += 1
        if diversifier.offer(post):
            admitted += 1
    close_window(posts[-1].timestamp if arrivals else window_start + window)
    return rows
