"""ResilientIngest: the fault-tolerant wrapper around any engine.

Composes the resilience components into one ingestion pipeline::

    arriving post
       │  semantic validation (finite/non-negative time, known author)
       │        └── bad → Quarantine (counted, optionally retained)
       ▼
    ReorderBuffer (absorbs ≤ max_skew clock skew; late policy drop/clamp/raise)
       ▼  released in timestamp order
    engine.offer  (StreamDiversifier or MultiUserDiversifier)
       │        └── UnknownAuthorError → Quarantine
       ▼
    IngestEvent(admitted / rejected / …)

The wrapper never reorders *decisions*: released posts reach the engine in
timestamp order, so the engine's greedy semantics — and therefore the
coverage invariant over every non-quarantined post — are untouched. The
whole pipeline checkpoints as one JSON object (engine state + buffered
posts + counters) and restores to a bit-identical continuation.
"""

from __future__ import annotations

from collections.abc import Container, Iterable
from dataclasses import dataclass

from ..core import Post, StreamDiversifier
from ..errors import UnknownAuthorError
from ..multiuser import MultiUserDiversifier
from .checkpoint import (
    CHECKPOINT_VERSION,
    restore_engine,
    snapshot_engine,
)
from .quarantine import Quarantine, validate_post
from .reorder import ReorderBuffer

#: Event statuses emitted by :meth:`ResilientIngest.ingest`.
STATUSES = ("admitted", "rejected", "quarantined", "late_dropped")


@dataclass(frozen=True, slots=True)
class IngestEvent:
    """One pipeline outcome.

    ``verdict`` carries the engine's answer for processed posts: a bool for
    single-user engines, the receiver set for multi-user engines, ``None``
    for posts that never reached the engine.
    """

    post: Post
    status: str
    verdict: object = None

    @property
    def admitted(self) -> bool:
        return self.status == "admitted"


class ResilientIngest:
    """Fault-tolerant ingestion around a diversification engine.

    Args:
        engine: any :class:`StreamDiversifier` or
            :class:`MultiUserDiversifier`.
        max_skew: reorder window (seconds); see :class:`ReorderBuffer`.
        late_policy: ``drop`` / ``clamp`` / ``raise`` for posts beyond the
            skew window.
        quarantine: dead-letter sink; created internally when omitted.
        known_authors: optional author universe — posts by authors outside
            it are quarantined *before* the engine sees them (engines like
            NeighborBin raise on unknown authors; quarantining up front
            keeps their counters clean).
        require_nonnegative_time: quarantine posts with ``timestamp < 0``
            (non-finite timestamps are always quarantined).
    """

    def __init__(
        self,
        engine: StreamDiversifier | MultiUserDiversifier,
        *,
        max_skew: float = 0.0,
        late_policy: str = "drop",
        max_buffered: int | None = None,
        quarantine: Quarantine | None = None,
        known_authors: Container[int] | None = None,
        require_nonnegative_time: bool = True,
    ):
        self.engine = engine
        self.reorder = ReorderBuffer(
            max_skew=max_skew,
            late_policy=late_policy,
            max_buffered=max_buffered,
        )
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.known_authors = known_authors
        self.require_nonnegative_time = require_nonnegative_time

    @property
    def is_multiuser(self) -> bool:
        return isinstance(self.engine, MultiUserDiversifier)

    def bind_metrics(self, registry, *, tracer=None, per_user: bool = False) -> None:
        """Attach observability to the whole pipeline.

        Binds the wrapped engine (forwarding ``tracer`` to single-user
        engines, ``per_user`` to multi-user ones) and re-exports the
        pipeline's own exact counters — reorder-buffer depth and late/
        forced accounting, quarantine volume — as collection-time
        callbacks, so the ingest path itself gains no new work.
        """
        if isinstance(self.engine, StreamDiversifier):
            self.engine.bind_metrics(registry, tracer=tracer)
        else:
            self.engine.bind_metrics(registry, per_user=per_user)
        if registry is not None and not getattr(registry, "is_noop", False):
            from ..obs.instruments import PipelineInstruments

            PipelineInstruments(registry, self)

    def ingest(self, post: Post) -> list[IngestEvent]:
        """Feed one arriving post; return the events it produced (its own
        quarantine/late outcome, plus a decision event for every post the
        reorder buffer released)."""
        problem = validate_post(
            post,
            known_authors=self.known_authors,
        )
        if problem is not None:
            reason, detail = problem
            if not self.require_nonnegative_time and reason == "negative_timestamp":
                problem = None
            else:
                self.quarantine.add_post(post, reason, detail)
                return [IngestEvent(post, "quarantined")]
        before_dropped = self.reorder.counters.late_dropped
        released = self.reorder.offer(post)
        events: list[IngestEvent] = []
        if self.reorder.counters.late_dropped > before_dropped:
            events.append(IngestEvent(post, "late_dropped"))
        events.extend(self._decide(p) for p in released)
        return events

    def flush(self) -> list[IngestEvent]:
        """Drain the reorder buffer through the engine (end of stream)."""
        return [self._decide(p) for p in self.reorder.flush()]

    def _decide(self, post: Post) -> IngestEvent:
        try:
            verdict = self.engine.offer(post)
        except UnknownAuthorError as exc:
            self.quarantine.add_post(post, "unknown_author", str(exc))
            return IngestEvent(post, "quarantined")
        admitted = bool(verdict)  # nonempty receiver set or True
        return IngestEvent(post, "admitted" if admitted else "rejected", verdict)

    def diversify(self, posts: Iterable[Post]) -> list[Post]:
        """Run a whole (possibly disordered, possibly dirty) iterable;
        return the admitted posts in decision order."""
        admitted: list[Post] = []
        for post in posts:
            for event in self.ingest(post):
                if event.admitted:
                    admitted.append(event.post)
        for event in self.flush():
            if event.admitted:
                admitted.append(event.post)
        return admitted

    def counters(self) -> dict[str, object]:
        """Exact accounting across all pipeline stages."""
        engine_stats = (
            self.engine.stats
            if isinstance(self.engine, StreamDiversifier)
            else self.engine.aggregate_stats()
        )
        return {
            "reorder": self.reorder.counters.snapshot(),
            "quarantine": self.quarantine.snapshot(),
            "engine": engine_stats.snapshot(),
        }

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> dict[str, object]:
        """One JSON-able object capturing the whole pipeline."""
        from ..io import post_to_dict

        reorder_state = self.reorder.state_dict()
        reorder_state["pending"] = [
            post_to_dict(p) for p in reorder_state["pending"]  # type: ignore[union-attr]
        ]
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "pipeline",
            "engine": snapshot_engine(self.engine),
            "reorder": reorder_state,
            "require_nonnegative_time": self.require_nonnegative_time,
            "quarantine": self.quarantine.snapshot(),
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict[str, object],
        *,
        graph=None,
        subscriptions=None,
        quarantine: Quarantine | None = None,
        known_authors: Container[int] | None = None,
    ) -> "ResilientIngest":
        """Rebuild a pipeline from :meth:`checkpoint` output. Quarantined
        *records* are not carried across restarts (the dead-letter file is
        the durable artifact); counters restart at the counts snapshot."""
        from ..errors import CheckpointError
        from ..io import post_from_dict

        if snapshot.get("kind") != "pipeline":
            raise CheckpointError(
                f"expected a pipeline checkpoint, got kind={snapshot.get('kind')!r}"
            )
        engine = restore_engine(
            snapshot["engine"],  # type: ignore[arg-type]
            graph=graph,
            subscriptions=subscriptions,
        )
        reorder_state = dict(snapshot["reorder"])  # type: ignore[arg-type]
        reorder_state["pending"] = [
            post_from_dict(p) for p in reorder_state["pending"]
        ]
        pipeline = cls(
            engine,
            max_skew=float(reorder_state["max_skew"]),
            late_policy=str(reorder_state["late_policy"]),
            max_buffered=reorder_state["max_buffered"],
            quarantine=quarantine,
            known_authors=known_authors,
            require_nonnegative_time=bool(snapshot["require_nonnegative_time"]),
        )
        pipeline.reorder.load_state(reorder_state)
        return pipeline


def ingest_jsonl(
    pipeline: ResilientIngest,
    path,
    *,
    on_error: str = "strict",
) -> list[IngestEvent]:
    """Convenience: decode a JSONL trace under an error policy and feed it
    through ``pipeline`` (decode-level refusals land in the pipeline's own
    quarantine sink), returning all events including the final flush."""
    from ..io import read_posts_jsonl

    events: list[IngestEvent] = []
    for post in read_posts_jsonl(
        path, on_error=on_error, quarantine=pipeline.quarantine
    ):
        events.extend(pipeline.ingest(post))
    events.extend(pipeline.flush())
    return events
