"""Overload control: graceful degradation when the engine falls behind.

The queueing replay (:mod:`repro.service`) measures whether an engine keeps
up with a stream at a given speedup — but until now an overloaded replay
just accumulated unbounded virtual backlog, silently pretending infinite
capacity. :class:`OverloadController` turns that into an explicit control
loop: when the backlog delay of the virtual single-server queue exceeds a
budget, the service *sheds* arriving posts instead of diversifying them,
and resumes normal processing only once the backlog has drained below a
lower resume threshold (hysteresis, so the system does not flap at the
boundary).

Two shedding policies:

* ``drop`` — the post is not delivered at all; an exact ``shed_dropped``
  count replaces silent unbounded delay.
* ``passthrough`` — the post is delivered *undiversified* (the cheap
  degraded mode: users briefly see an unfiltered firehose rather than
  nothing), counted as ``shed_passthrough``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Accepted shedding policies.
SHED_POLICIES = ("drop", "passthrough")


@dataclass(slots=True)
class OverloadCounters:
    """Exact accounting of the controller's decisions."""

    processed: int = 0
    shed_dropped: int = 0
    shed_passthrough: int = 0
    #: distinct contiguous shedding episodes entered
    episodes: int = 0

    @property
    def shed_total(self) -> int:
        return self.shed_dropped + self.shed_passthrough

    def snapshot(self) -> dict[str, int]:
        return {
            "processed": self.processed,
            "shed_dropped": self.shed_dropped,
            "shed_passthrough": self.shed_passthrough,
            "shed_total": self.shed_total,
            "shed_episodes": self.episodes,
        }


class OverloadController:
    """Hysteresis thermostat over queue backlog delay.

    Args:
        max_delay: backlog delay (seconds) above which shedding starts.
        resume_delay: backlog delay below which shedding stops; defaults to
            ``max_delay / 2``. Must be strictly below ``max_delay``.
        policy: ``"drop"`` or ``"passthrough"`` (see module docstring).
    """

    def __init__(
        self,
        *,
        max_delay: float,
        resume_delay: float | None = None,
        policy: str = "drop",
    ):
        if max_delay <= 0:
            raise ConfigurationError(f"max_delay must be > 0, got {max_delay}")
        if resume_delay is None:
            resume_delay = max_delay / 2.0
        if not 0 <= resume_delay < max_delay:
            raise ConfigurationError(
                f"resume_delay must be in [0, max_delay), got {resume_delay}"
            )
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.max_delay = max_delay
        self.resume_delay = resume_delay
        self.policy = policy
        self.shedding = False
        self.memory_pressure = False
        self.counters = OverloadCounters()

    def should_shed(self, backlog_delay: float) -> bool:
        """Advance the hysteresis state machine with the current backlog
        delay; returns True iff the arriving post should be shed."""
        if self.memory_pressure:
            return True
        if self.shedding:
            if backlog_delay <= self.resume_delay:
                self.shedding = False
        elif backlog_delay > self.max_delay:
            self.shedding = True
            self.counters.episodes += 1
        return self.shedding

    def set_memory_pressure(self, active: bool) -> None:
        """The memory governor's shed rung, riding the same machinery.

        While active every arriving post is shed regardless of backlog,
        through the same exact-accounting paths (``record_shed``,
        ``shed_episodes``) as backlog shedding. Entering pressure while
        not already shedding opens one episode; release hands control
        back to the backlog hysteresis, which drains normally — so the
        two control loops compose without double-counting or flapping.
        """
        if active and not self.memory_pressure and not self.shedding:
            self.shedding = True
            self.counters.episodes += 1
        self.memory_pressure = active

    def record_shed(self) -> None:
        if self.policy == "drop":
            self.counters.shed_dropped += 1
        else:
            self.counters.shed_passthrough += 1

    def record_processed(self) -> None:
        self.counters.processed += 1

    def snapshot(self) -> dict[str, object]:
        result: dict[str, object] = {
            "policy": self.policy,
            "max_delay": self.max_delay,
            "resume_delay": self.resume_delay,
            "shedding": self.shedding,
            "memory_pressure": self.memory_pressure,
        }
        result.update(self.counters.snapshot())
        return result
