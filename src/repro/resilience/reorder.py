"""Watermark reorder buffer: out-of-order tolerance for the stream model.

Every SPSD engine requires non-decreasing timestamps (:class:`StreamOrderError`
otherwise) because the greedy decision is defined over the arrival order.
Real firehoses are only *approximately* ordered — producer clock skew and
fan-in race posts a few seconds out of place. :class:`ReorderBuffer` absorbs
that skew: posts are held in a small min-heap until the **watermark** (the
largest timestamp seen, minus the configured ``max_skew``) passes them, then
released in exact timestamp order. A post arriving *behind* the watermark is
too late to reorder safely; what happens to it is an explicit, counted
policy decision (``drop`` / ``clamp`` / ``raise``) instead of a crash.

If the arrival order is a permutation of the timestamp order with no post
displaced by more than ``max_skew`` seconds, the released stream is exactly
the timestamp-sorted stream — a diversifier fed through the buffer produces
the identical retained set as one fed the clean ordered stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

from ..core import Post
from ..errors import ConfigurationError, StreamOrderError

#: Accepted late-post policies.
LATE_POLICIES = ("drop", "clamp", "raise")


@dataclass(slots=True)
class ReorderCounters:
    """Exact accounting of what the buffer did to the stream."""

    received: int = 0
    released: int = 0
    #: released posts that had been overtaken by a later-timestamped arrival
    reordered: int = 0
    late_dropped: int = 0
    late_clamped: int = 0
    #: posts force-released early because the buffer hit ``max_buffered``
    forced_releases: int = 0
    peak_buffered: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "received": self.received,
            "released": self.released,
            "reordered": self.reordered,
            "late_dropped": self.late_dropped,
            "late_clamped": self.late_clamped,
            "forced_releases": self.forced_releases,
            "peak_buffered": self.peak_buffered,
        }


@dataclass(slots=True)
class _Pending:
    """Heap entry: timestamp order, arrival order as tie-break (stable)."""

    timestamp: float
    seq: int
    post: Post = field(compare=False)

    def __lt__(self, other: "_Pending") -> bool:
        return (self.timestamp, self.seq) < (other.timestamp, other.seq)


class ReorderBuffer:
    """Bounded buffer releasing posts in timestamp order up to a watermark.

    Args:
        max_skew: how far (seconds) a post may arrive out of place and still
            be reordered. 0 means pass-through with order *checking* only.
        late_policy: what to do with a post whose timestamp is behind the
            release floor: ``"drop"`` (discard, counted), ``"clamp"``
            (rewrite its timestamp to the floor, counted) or ``"raise"``
            (propagate :class:`StreamOrderError`, the legacy behaviour).
        max_buffered: hard cap on held posts; exceeding it force-releases
            the earliest held post (advancing the release floor past the
            watermark), bounding memory on pathological streams.
    """

    def __init__(
        self,
        *,
        max_skew: float = 0.0,
        late_policy: str = "drop",
        max_buffered: int | None = None,
    ):
        if max_skew < 0:
            raise ConfigurationError(f"max_skew must be >= 0, got {max_skew}")
        if late_policy not in LATE_POLICIES:
            raise ConfigurationError(
                f"late_policy must be one of {LATE_POLICIES}, got {late_policy!r}"
            )
        if max_buffered is not None and max_buffered < 1:
            raise ConfigurationError(
                f"max_buffered must be >= 1, got {max_buffered}"
            )
        self.max_skew = max_skew
        self.late_policy = late_policy
        self.max_buffered = max_buffered
        self.counters = ReorderCounters()
        self._heap: list[_Pending] = []
        self._seq = 0
        self._max_seen = float("-inf")
        #: no post below this timestamp may be released any more
        self._release_floor = float("-inf")

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """Timestamps at or below this are safe to release."""
        return self._max_seen - self.max_skew

    @property
    def release_floor(self) -> float:
        """Largest timestamp already released (or forced); arrivals behind
        it are late."""
        return self._release_floor

    def offer(self, post: Post) -> list[Post]:
        """Accept one arriving post; return the posts released by it, in
        timestamp order (possibly empty, possibly several)."""
        self.counters.received += 1
        if post.timestamp < self._release_floor:
            post = self._handle_late(post)
            if post is None:
                return []
        if post.timestamp < self._max_seen:
            self.counters.reordered += 1
        self._push(post)
        if post.timestamp > self._max_seen:
            self._max_seen = post.timestamp
        released = self._drain(self.watermark)
        if self.max_buffered is not None:
            while len(self._heap) > self.max_buffered:
                released.append(self._pop())
                self.counters.forced_releases += 1
        return released

    def flush(self) -> list[Post]:
        """Release everything still held (end of stream / checkpoint)."""
        return self._drain(float("inf"))

    def _handle_late(self, post: Post) -> Post | None:
        if self.late_policy == "drop":
            self.counters.late_dropped += 1
            return None
        if self.late_policy == "clamp":
            self.counters.late_clamped += 1
            return replace(post, timestamp=self._release_floor)
        raise StreamOrderError(
            f"post {post.post_id} at t={post.timestamp} arrived behind the "
            f"release floor t={self._release_floor} "
            f"(skew beyond max_skew={self.max_skew})"
        )

    def _push(self, post: Post) -> None:
        heapq.heappush(self._heap, _Pending(post.timestamp, self._seq, post))
        self._seq += 1
        if len(self._heap) > self.counters.peak_buffered:
            self.counters.peak_buffered = len(self._heap)

    def _pop(self) -> Post:
        entry = heapq.heappop(self._heap)
        self.counters.released += 1
        if entry.timestamp > self._release_floor:
            self._release_floor = entry.timestamp
        return entry.post

    def _drain(self, up_to: float) -> list[Post]:
        released: list[Post] = []
        while self._heap and self._heap[0].timestamp <= up_to:
            released.append(self._pop())
        return released

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Buffer contents and cursors (posts stay :class:`Post` objects)."""
        ordered = sorted(self._heap)
        return {
            "max_skew": self.max_skew,
            "late_policy": self.late_policy,
            "max_buffered": self.max_buffered,
            "max_seen": self._max_seen,
            "release_floor": self._release_floor,
            "pending": [entry.post for entry in ordered],
            "counters": self.counters.snapshot(),
        }

    def load_state(self, state: dict[str, object]) -> None:
        self.max_skew = float(state["max_skew"])  # type: ignore[arg-type]
        self.late_policy = str(state["late_policy"])
        self.max_buffered = state["max_buffered"]  # type: ignore[assignment]
        self._max_seen = float(state["max_seen"])  # type: ignore[arg-type]
        self._release_floor = float(state["release_floor"])  # type: ignore[arg-type]
        self._heap = []
        self._seq = 0
        for post in state["pending"]:  # type: ignore[union-attr]
            self._push(post)
        self.counters = ReorderCounters(**state["counters"])  # type: ignore[arg-type]
        self.counters.peak_buffered = max(
            self.counters.peak_buffered, len(self._heap)
        )
