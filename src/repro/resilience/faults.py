"""Fault-injection harness: seeded, composable stream corruption.

The resilience claims are only as good as the adversary they are tested
against. This module builds that adversary: wrappers that take a clean
stream and hand back a damaged one, with **exact counters** of every fault
injected so tests can assert the pipeline's accounting to the post —
"quarantined == malformed injected", "late_dropped == displacements beyond
the watermark", and so on.

Three layers of damage:

* :class:`ArrivalShuffler` — permutes *arrival order* within a bounded
  time displacement, leaving timestamps intact. A ReorderBuffer with
  ``max_skew`` ≥ the displacement recovers the exact ordered stream.
* :class:`PostFaultInjector` — duplicates posts and jitters timestamps
  (producer clock skew), i.e. faults that survive decoding.
* :class:`LineFaultInjector` — damages the JSONL transport: malformed
  (non-JSON) lines, torn (truncated mid-record) lines, records with
  missing fields or non-numeric/NaN timestamps, duplicated lines.

Plus :class:`LatencySpikes`, an engine wrapper injecting service-time
spikes (seeded busy-wait) to drive the overload controller in benchmarks.

Process-level damage lives in :class:`WorkerFaultPlan`: a picklable plan
that rides inside a shard worker's startup spec and makes the worker
*process* crash, hang, corrupt or slow its reply on an exact batch number
— the adversary for the supervision layer (:mod:`repro.supervise`). The
plan is executed only inside worker main loops, never by in-parent
engines, so a fault can never take down the coordinator.

Everything is driven by an explicit ``random.Random(seed)`` — the same
seed always produces the same fault schedule.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace

from ..core import Post, StreamDiversifier
from ..errors import ConfigurationError


@dataclass(slots=True)
class FaultCounts:
    """What an injector actually did (exact, for assertion)."""

    passed: int = 0
    shuffled: int = 0
    duplicated: int = 0
    skewed: int = 0
    malformed: int = 0
    torn: int = 0
    missing_field: int = 0
    bad_timestamp: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "passed": self.passed,
            "shuffled": self.shuffled,
            "duplicated": self.duplicated,
            "skewed": self.skewed,
            "malformed": self.malformed,
            "torn": self.torn,
            "missing_field": self.missing_field,
            "bad_timestamp": self.bad_timestamp,
        }


class ArrivalShuffler:
    """Permute arrival order with bounded timestamp displacement.

    Holds each post for a random number of "slots" drawn from
    ``[0, max_hold]``; a post is emitted once every post that must precede
    it by more than ``max_displacement`` seconds has been emitted. The
    guarantee tests rely on: **no post is displaced past another by more
    than ``max_displacement`` seconds of timestamp**, so a reorder buffer
    with ``max_skew >= max_displacement`` restores the exact order.
    """

    def __init__(self, *, seed: int, max_displacement: float):
        if max_displacement < 0:
            raise ValueError("max_displacement must be >= 0")
        self.rng = random.Random(seed)
        self.max_displacement = max_displacement
        self.counts = FaultCounts()

    def apply(self, posts: Iterable[Post]) -> Iterator[Post]:
        held: list[Post] = []
        for post in posts:
            # Release every held post that can no longer wait: once the
            # incoming post's timestamp is beyond held.timestamp +
            # max_displacement, holding it longer would break the bound.
            ready = [
                h
                for h in held
                if post.timestamp > h.timestamp + self.max_displacement
            ]
            if ready:
                self.rng.shuffle(ready)
                for h in ready:
                    held.remove(h)
                    self.counts.passed += 1
                    yield h
            held.append(post)
            # Randomly emit some of the held set early, out of order.
            emit_now = [h for h in held if self.rng.random() < 0.5]
            self.rng.shuffle(emit_now)
            for h in emit_now:
                held.remove(h)
                self.counts.passed += 1
                if h is not post:
                    self.counts.shuffled += 1
                yield h
        self.rng.shuffle(held)
        self.counts.shuffled += sum(1 for _ in held[1:])
        for h in held:
            self.counts.passed += 1
            yield h


class PostFaultInjector:
    """Duplicate posts and jitter timestamps (clock skew) at the Post level.

    ``skew_range`` jitters a post's timestamp by ``uniform(-skew, +skew)``
    (clamped at 0); ``duplicate_prob`` re-emits a post immediately after
    itself (same id, same content — the duplicate is covered by the
    original and must be pruned, never doubled into the output).
    """

    def __init__(
        self,
        *,
        seed: int,
        skew_prob: float = 0.0,
        skew_range: float = 0.0,
        duplicate_prob: float = 0.0,
    ):
        self.rng = random.Random(seed)
        self.skew_prob = skew_prob
        self.skew_range = skew_range
        self.duplicate_prob = duplicate_prob
        self.counts = FaultCounts()

    def apply(self, posts: Iterable[Post]) -> Iterator[Post]:
        for post in posts:
            if self.skew_range > 0 and self.rng.random() < self.skew_prob:
                jitter = self.rng.uniform(-self.skew_range, self.skew_range)
                post = replace(
                    post, timestamp=max(0.0, post.timestamp + jitter)
                )
                self.counts.skewed += 1
            self.counts.passed += 1
            yield post
            if self.rng.random() < self.duplicate_prob:
                self.counts.duplicated += 1
                yield post


class LineFaultInjector:
    """Damage a JSONL trace at the transport layer.

    Every fault produces a line the strict decoder must reject (malformed
    JSON, torn records, missing required fields, non-numeric or NaN
    timestamps), so ``counts`` gives the exact expected quarantine volume.
    """

    def __init__(
        self,
        *,
        seed: int,
        malformed_prob: float = 0.0,
        torn_prob: float = 0.0,
        missing_field_prob: float = 0.0,
        bad_timestamp_prob: float = 0.0,
        duplicate_prob: float = 0.0,
    ):
        self.rng = random.Random(seed)
        self.malformed_prob = malformed_prob
        self.torn_prob = torn_prob
        self.missing_field_prob = missing_field_prob
        self.bad_timestamp_prob = bad_timestamp_prob
        self.duplicate_prob = duplicate_prob
        self.counts = FaultCounts()

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in lines:
            line = line.rstrip("\n")
            if not line:
                continue
            roll = self.rng.random()
            if roll < self.malformed_prob:
                self.counts.malformed += 1
                yield "%% not json at all %%"
                continue
            roll -= self.malformed_prob
            if roll < self.torn_prob and len(line) > 2:
                # Truncating a JSON object before its closing brace always
                # leaves unbalanced braces — guaranteed invalid JSON.
                cut = self.rng.randrange(1, len(line) - 1)
                self.counts.torn += 1
                yield line[:cut]
                continue
            roll -= self.torn_prob
            if roll < self.missing_field_prob:
                try:
                    record = json.loads(line)
                    record.pop("timestamp", None)
                    self.counts.missing_field += 1
                    yield json.dumps(record, sort_keys=True)
                    continue
                except json.JSONDecodeError:
                    pass
            roll -= self.missing_field_prob
            if roll < self.bad_timestamp_prob:
                try:
                    record = json.loads(line)
                    record["timestamp"] = self.rng.choice(
                        ["NaN", "not-a-number", None]
                    )
                    self.counts.bad_timestamp += 1
                    yield json.dumps(record, sort_keys=True)
                    continue
                except json.JSONDecodeError:
                    pass
            self.counts.passed += 1
            yield line
            if self.rng.random() < self.duplicate_prob:
                self.counts.duplicated += 1
                yield line


class LatencySpikes(StreamDiversifier):
    """Engine wrapper injecting seeded service-time spikes.

    Delegates every decision to the wrapped engine but occasionally
    busy-waits ``spike_seconds`` first — a deterministic stand-in for GC
    pauses or page faults, used to exercise the overload controller.
    """

    name = "latency_spikes"

    def __init__(
        self,
        engine: StreamDiversifier,
        *,
        seed: int,
        spike_prob: float = 0.05,
        spike_seconds: float = 0.001,
    ):
        # Deliberately skip StreamDiversifier.__init__: all state/behaviour
        # is the wrapped engine's; this class only adds the delay.
        self.engine = engine
        self.rng = random.Random(seed)
        self.spike_prob = spike_prob
        self.spike_seconds = spike_seconds
        self.spikes_injected = 0

    def __getattr__(self, name: str):
        return getattr(self.engine, name)

    def offer(self, post: Post) -> bool:
        if self.rng.random() < self.spike_prob:
            self.spikes_injected += 1
            deadline = time.perf_counter() + self.spike_seconds
            while time.perf_counter() < deadline:
                pass
        return self.engine.offer(post)

    def _is_covered(self, post: Post) -> bool:  # pragma: no cover - delegated
        return self.engine._is_covered(post)

    def _admit(self, post: Post) -> None:  # pragma: no cover - delegated
        self.engine._admit(post)

    def _index_state(self) -> dict[str, object]:
        return self.engine._index_state()

    def _load_index_state(self, state: dict[str, object]) -> None:
        self.engine._load_index_state(state)

    def purge(self, now: float | None = None) -> None:
        self.engine.purge(now)

    def stored_copies(self) -> int:
        return self.engine.stored_copies()


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic process-level faults for one shard worker.

    Batch numbers are 1-based and count the ``batch`` commands the worker
    has served; every fault fires *after* the worker's engines applied the
    batch but *before* the reply reaches the parent — the window where a
    naive coordinator loses acknowledged work. ``crash`` kills the process
    (``os._exit``), ``hang`` stops it replying forever, ``corrupt`` sends
    a reply that is not a valid protocol tuple, ``slow`` delays the reply
    by ``slow_seconds`` on every ``slow_every``-th batch.

    By default the plan dies with the process: a supervisor strips it when
    respawning, so a crash-once worker recovers clean. Set
    ``survive_restarts=True`` to keep the plan across respawns — the knob
    that turns a shard into a *poison shard* for restart-budget tests.
    """

    crash_on_batch: int | None = None
    hang_on_batch: int | None = None
    corrupt_on_batch: int | None = None
    slow_every: int | None = None
    slow_seconds: float = 0.0
    survive_restarts: bool = False

    def action_for(self, batch_number: int) -> str | None:
        """The fault (if any) to execute after serving this batch."""
        if self.crash_on_batch is not None and batch_number == self.crash_on_batch:
            return "crash"
        if self.hang_on_batch is not None and batch_number == self.hang_on_batch:
            return "hang"
        if self.corrupt_on_batch is not None and batch_number == self.corrupt_on_batch:
            return "corrupt"
        if self.slow_every and batch_number % self.slow_every == 0:
            return "slow"
        return None


def execute_worker_fault(action: str, plan: WorkerFaultPlan, conn) -> bool:
    """Run one :class:`WorkerFaultPlan` action inside a worker process.

    Returns ``True`` when the fault already produced a (corrupt) reply and
    the worker must *not* send the real one. ``crash`` and ``hang`` never
    return. Call this only from a worker main loop — ``crash`` uses
    ``os._exit`` and would take the caller's whole process with it.
    """
    if action == "crash":
        try:
            conn.close()
        finally:
            os._exit(17)
    if action == "hang":
        # Ignore SIGTERM so only the parent's kill escalation can reap the
        # process — the worst-case zombie the hardened shutdown must handle.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        while True:  # pragma: no cover - killed externally
            time.sleep(3600.0)
    if action == "slow":
        time.sleep(plan.slow_seconds)
        return False
    if action == "corrupt":
        conn.send(["garbage", "corrupt-reply-injected"])
        return True
    return False


#: Test seam for :class:`FeedFaultPlan`'s process kills; tests that only
#: want the side effects (partial frames on disk) monkeypatch this.
_exit = os._exit


@dataclass(slots=True)
class FeedFaultPlan:
    """Deterministic serving-layer faults for the durable feed.

    The adversary for :mod:`repro.feed.durable`: counters tick inside the
    write-ahead log and snapshot store, and each fault fires at an exact,
    reproducible instant of the durability pipeline:

    * ``kill_on_append`` — the process dies (``os._exit``) immediately
      after the N-th WAL record reaches the file, *before* the mailbox
      fanout applies — the crash-mid-fanout window where an unlogged
      coordinator loses acknowledged feeds.
    * ``torn_tail_on_append`` — the N-th WAL append writes only
      ``torn_tail_bytes`` of its frame and then dies: the torn-tail case
      recovery must truncate, not trust.
    * ``fail_snapshots`` — the next N snapshot saves raise ``OSError``
      (full disk); the service must keep serving on the WAL alone and
      surface the failure in metrics/health, not crash.
    * ``slow_fsync_seconds`` — every WAL fsync sleeps first, the adversary
      for per-request deadlines on the HTTP front end.

    Counters are mutable run state, so instances are per-run, not shared.
    """

    kill_on_append: int | None = None
    torn_tail_on_append: int | None = None
    torn_tail_bytes: int = 7
    fail_snapshots: int = 0
    slow_fsync_seconds: float = 0.0
    _appends: int = 0
    _snapshot_failures_left: int | None = None

    @classmethod
    def from_dict(cls, spec: dict) -> "FeedFaultPlan":
        """Build a plan from a JSON dict (the ``REPRO_FEED_FAULT_PLAN``
        environment hook the chaos smoke drives ``repro serve`` with)."""
        allowed = {
            "kill_on_append",
            "torn_tail_on_append",
            "torn_tail_bytes",
            "fail_snapshots",
            "slow_fsync_seconds",
        }
        unknown = set(spec) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown FeedFaultPlan fields {sorted(unknown)}"
            )
        return cls(**spec)

    def on_append(self, frame: bytes, fh) -> bool:
        """Called by the WAL with the encoded frame *instead of* writing
        it; returns True when the plan wrote (all or part of) the frame
        itself. ``kill``/``torn`` never return."""
        self._appends += 1
        if self.torn_tail_on_append is not None and (
            self._appends == self.torn_tail_on_append
        ):
            fh.write(frame[: self.torn_tail_bytes])
            fh.flush()
            os.fsync(fh.fileno())
            _exit(23)
        if self.kill_on_append is not None and self._appends == self.kill_on_append:
            fh.write(frame)
            fh.flush()
            os.fsync(fh.fileno())
            _exit(23)
        return False

    def on_fsync(self) -> None:
        """Called before every WAL fsync."""
        if self.slow_fsync_seconds > 0:
            time.sleep(self.slow_fsync_seconds)

    def on_snapshot(self) -> None:
        """Called before a snapshot write; raises ``OSError`` while the
        injected full-disk budget lasts."""
        if self._snapshot_failures_left is None:
            self._snapshot_failures_left = self.fail_snapshots
        if self._snapshot_failures_left > 0:
            self._snapshot_failures_left -= 1
            raise OSError(28, "No space left on device (injected)")


@dataclass(slots=True)
class FaultSchedule:
    """A composed, seeded fault scenario over a clean post list.

    ``build`` wires the layers in transport → post → arrival order, the
    order a real ingest path would see them, and keeps every injector (and
    its exact counts) accessible for assertions.
    """

    seed: int
    max_displacement: float = 0.0
    skew_prob: float = 0.0
    skew_range: float = 0.0
    duplicate_prob: float = 0.0
    shuffler: ArrivalShuffler | None = field(default=None, init=False)
    post_faults: PostFaultInjector | None = field(default=None, init=False)

    def apply(self, posts: Iterable[Post]) -> Iterator[Post]:
        stream: Iterable[Post] = posts
        if self.skew_prob > 0 or self.duplicate_prob > 0:
            self.post_faults = PostFaultInjector(
                seed=self.seed + 1,
                skew_prob=self.skew_prob,
                skew_range=self.skew_range,
                duplicate_prob=self.duplicate_prob,
            )
            stream = self.post_faults.apply(stream)
        if self.max_displacement > 0:
            self.shuffler = ArrivalShuffler(
                seed=self.seed + 2, max_displacement=self.max_displacement
            )
            stream = self.shuffler.apply(stream)
        return iter(stream)
