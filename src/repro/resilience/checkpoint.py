"""Checkpoint/restore: JSON snapshots of engine (and pipeline) state.

A crashed service should resume mid-stream, not replay from the epoch. The
snapshot captures everything the greedy decision depends on — the admitted
posts still inside the λt window (per bin), the order cursor, the run
counters, and (for the resilient pipeline) the reorder-buffer contents and
quarantine/shed accounting. Restoring into an engine built from the same
thresholds, author graph and subscriptions, then feeding the remaining
stream, yields the **bit-identical** retained set of an uninterrupted run —
the round-trip the test suite asserts for every algorithm.

Format notes: one JSON object, ``sort_keys`` for clean diffs. Non-finite
floats (the ``-inf`` order cursor before any post, ``inf`` λt when the time
dimension is off) use Python's JSON extension literals (``-Infinity``),
which round-trip through :mod:`json`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core import Post, StreamDiversifier, Thresholds, make_diversifier
from ..errors import CheckpointError
from ..io import post_from_dict, post_to_dict
from ..multiuser import MultiUserDiversifier, SubscriptionTable, make_multiuser
from ..authors import AuthorGraph

#: Bumped on incompatible snapshot layout changes.
CHECKPOINT_VERSION = 1


def _thresholds_to_dict(thresholds: Thresholds) -> dict[str, object]:
    return {
        "lambda_c": thresholds.lambda_c,
        "lambda_t": thresholds.lambda_t,
        "lambda_a": thresholds.lambda_a,
    }


def _thresholds_from_dict(payload: dict[str, object]) -> Thresholds:
    return Thresholds(
        lambda_c=int(payload["lambda_c"]),  # type: ignore[arg-type]
        lambda_t=float(payload["lambda_t"]),  # type: ignore[arg-type]
        lambda_a=float(payload["lambda_a"]),  # type: ignore[arg-type]
    )


def _encode_single(state: dict[str, object]) -> dict[str, object]:
    index = dict(state["index"])  # type: ignore[arg-type]
    if "bin" in index:
        index["bin"] = [post_to_dict(p) for p in index["bin"]]
    if "queue" in index:
        index["queue"] = [post_to_dict(p) for p in index["queue"]]
    if "posts" in index:
        index["posts"] = {
            str(post_id): post_to_dict(post)
            for post_id, post in index["posts"].items()
        }
    if "bins" in index:
        index["bins"] = {str(key): list(ids) for key, ids in index["bins"].items()}
    encoded = dict(state)
    encoded["index"] = index
    return encoded


def _decode_single(state: dict[str, object]) -> dict[str, object]:
    index = dict(state["index"])  # type: ignore[arg-type]
    if "bin" in index:
        index["bin"] = [post_from_dict(p) for p in index["bin"]]
    if "queue" in index:
        index["queue"] = [post_from_dict(p) for p in index["queue"]]
    if "posts" in index:
        index["posts"] = {
            int(post_id): post_from_dict(post)
            for post_id, post in index["posts"].items()
        }
    if "bins" in index:
        index["bins"] = {
            int(key): [int(i) for i in ids] for key, ids in index["bins"].items()
        }
    decoded = dict(state)
    decoded["index"] = index
    return decoded


def snapshot_engine(
    engine: StreamDiversifier | MultiUserDiversifier,
) -> dict[str, object]:
    """JSON-able snapshot of a single-user, multi-user or dynamic engine."""
    from ..dynamic import DynamicDiversifier, DynamicMultiUser

    if isinstance(engine, DynamicMultiUser):
        state = engine.state_dict()
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "dynamic",
            "engine": engine.name,
            "thresholds": _thresholds_to_dict(engine.thresholds),
            "workers": state["workers"],
            "graph_version": state["graph_version"],
            # The follow relation travels inside the snapshot: unlike the
            # static engines, the graph at checkpoint time is run state.
            "friends": {
                str(author): sorted(followees)
                for author, followees in state["friends"].items()  # type: ignore[union-attr]
            },
            "instances": [
                {
                    "nodes": spec["nodes"],
                    "users": spec["users"],
                    "state": _encode_single(spec["state"]),
                }
                for spec in state["instances"]  # type: ignore[union-attr]
            ],
            "retired_stats": state["retired_stats"],
            "pending_deltas": state["pending_deltas"],
        }
    if isinstance(engine, DynamicDiversifier):
        state = engine.state_dict()
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "dynamic_single",
            "engine": engine.name,
            "algorithm": engine.algorithm,
            "thresholds": _thresholds_to_dict(engine.thresholds),
            "graph_version": state["graph_version"],
            "friends": {
                str(author): sorted(followees)
                for author, followees in state["friends"].items()  # type: ignore[union-attr]
            },
            "state": _encode_single(state["state"]),  # type: ignore[arg-type]
        }
    if isinstance(engine, StreamDiversifier):
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "single",
            "algorithm": engine.name,
            "thresholds": _thresholds_to_dict(engine.thresholds),
            "state": _encode_single(engine.state_dict()),
        }
    if isinstance(engine, MultiUserDiversifier):
        state = engine.state_dict()
        snap: dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "kind": "multi",
            "engine": engine.name,
            "thresholds": _thresholds_to_dict(engine.thresholds),  # type: ignore[attr-defined]
        }
        if "users" in state:
            instances: dict[str, object] = {}
            per_user_thresholds: dict[str, object] = {}
            for user, instance_state in state["users"].items():  # type: ignore[union-attr]
                instances[str(user)] = _encode_single(instance_state)
                per_user_thresholds[str(user)] = _thresholds_to_dict(
                    engine.instance_of(user).thresholds  # type: ignore[attr-defined]
                )
            snap["users"] = instances
            snap["per_user_thresholds"] = per_user_thresholds
        else:
            snap["components"] = [
                _encode_single(s) for s in state["components"]  # type: ignore[union-attr]
            ]
            # The sharded p_* engines record their worker count so restore
            # rebuilds the same pool; the serial s_* layout is otherwise
            # identical (components in catalog order), so the two restore
            # into each other.
            if "workers" in state:
                snap["workers"] = state["workers"]
        return snap
    raise CheckpointError(f"cannot snapshot object of type {type(engine)!r}")


def restore_engine(
    snapshot: dict[str, object],
    *,
    graph: AuthorGraph | None = None,
    subscriptions: SubscriptionTable | None = None,
    workers: int | None = None,
    supervised: bool = False,
    supervision=None,
    shard_deadline: float | None = 120.0,
) -> StreamDiversifier | MultiUserDiversifier:
    """Rebuild an engine from :func:`snapshot_engine` output.

    ``graph`` (and, for multi-user engines, ``subscriptions``) must be the
    same ones the checkpointed engine was built from; the snapshot carries
    only the mutable run state, the static structures are reconstructed.
    Dynamic snapshots carry their follow relation (the graph is run state
    there) and need only ``subscriptions``; ``workers`` overrides the
    recorded pool size, so a serial checkpoint restores into a parallel
    engine and vice versa. ``supervised``/``supervision``/
    ``shard_deadline`` configure the restored pool's self-healing exactly
    as in :func:`~repro.multiuser.make_multiuser` (crash recovery is
    orthogonal to checkpoint layout, so any snapshot restores into a
    supervised engine).
    """
    version = snapshot.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    thresholds = _thresholds_from_dict(snapshot["thresholds"])  # type: ignore[arg-type]
    kind = snapshot.get("kind")
    if kind == "dynamic":
        if subscriptions is None:
            raise CheckpointError(
                "restoring a dynamic engine requires the subscription table "
                "(the follow relation travels inside the snapshot)"
            )
        from ..dynamic import DynamicMultiUser

        friends = {
            int(author): {int(f) for f in followees}
            for author, followees in snapshot["friends"].items()  # type: ignore[union-attr]
        }
        name = str(snapshot["engine"])
        dynamic = DynamicMultiUser(
            name.partition("_")[2],
            thresholds,
            friends,
            subscriptions,
            workers=workers if workers is not None else int(snapshot.get("workers", 1)),  # type: ignore[arg-type]
            supervised=supervised,
            supervision=supervision,
            shard_deadline=shard_deadline,
        )
        dynamic.load_state(
            {
                "engine": name,
                "graph_version": snapshot["graph_version"],
                "friends": friends,
                "instances": [
                    {
                        "nodes": [int(n) for n in spec["nodes"]],
                        "users": [int(u) for u in spec["users"]],
                        "state": _decode_single(spec["state"]),
                    }
                    for spec in snapshot["instances"]  # type: ignore[union-attr]
                ],
                "retired_stats": snapshot["retired_stats"],
                "pending_deltas": snapshot.get("pending_deltas", []),
            }
        )
        return dynamic
    if kind == "dynamic_single":
        from ..dynamic import DynamicDiversifier

        friends = {
            int(author): {int(f) for f in followees}
            for author, followees in snapshot["friends"].items()  # type: ignore[union-attr]
        }
        single = DynamicDiversifier(str(snapshot["algorithm"]), thresholds, friends)
        single.load_state(
            {
                "engine": snapshot["engine"],
                "graph_version": snapshot["graph_version"],
                "friends": friends,
                "state": _decode_single(snapshot["state"]),  # type: ignore[arg-type]
            }
        )
        return single
    if kind == "single":
        engine = make_diversifier(
            str(snapshot["algorithm"]), thresholds, graph
        )
        engine.load_state(_decode_single(snapshot["state"]))  # type: ignore[arg-type]
        return engine
    if kind == "multi":
        if graph is None or subscriptions is None:
            raise CheckpointError(
                "restoring a multi-user engine requires the original graph "
                "and subscription table"
            )
        name = str(snapshot["engine"])
        if "users" in snapshot:
            overrides = {
                int(user): _thresholds_from_dict(payload)  # type: ignore[arg-type]
                for user, payload in snapshot["per_user_thresholds"].items()  # type: ignore[union-attr]
            }
            defaults = {
                user: override
                for user, override in overrides.items()
                if override != thresholds
            }
            from ..multiuser import IndependentMultiUser

            algorithm = name.partition("_")[2]
            multi: MultiUserDiversifier = IndependentMultiUser(
                algorithm,
                thresholds,
                graph,
                subscriptions,
                per_user_thresholds=defaults,
            )
            multi.load_state(
                {
                    "engine": name,
                    "users": {
                        int(user): _decode_single(state)  # type: ignore[arg-type]
                        for user, state in snapshot["users"].items()  # type: ignore[union-attr]
                    },
                }
            )
            return multi
        multi = make_multiuser(
            name,
            thresholds,
            graph,
            subscriptions,
            workers=workers if workers is not None else int(snapshot.get("workers", 1)),  # type: ignore[arg-type]
            supervised=supervised,
            supervision=supervision,
            shard_deadline=shard_deadline,
        )
        multi.load_state(
            {
                "engine": name,
                "components": [
                    _decode_single(state)  # type: ignore[arg-type]
                    for state in snapshot["components"]  # type: ignore[union-attr]
                ],
            }
        )
        return multi
    raise CheckpointError(f"unknown checkpoint kind {kind!r}")


def load_engine_state(
    engine: StreamDiversifier | MultiUserDiversifier,
    snapshot: dict[str, object],
) -> None:
    """Restore :func:`snapshot_engine` output *into an existing engine*.

    :func:`restore_engine` builds a fresh engine; this variant keeps the
    one the caller already wired into a service (worker pool, governor
    hooks, mailbox fanout) and swaps only the mutable run state — the
    feed-recovery path. The snapshot must describe the same algorithm
    family the engine runs; a mismatch is a deployment error and raises
    :class:`CheckpointError` before any state is touched.
    """
    version = snapshot.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    kind = snapshot.get("kind")
    recorded = str(snapshot.get("engine", snapshot.get("algorithm", "")))
    current = str(getattr(engine, "name", ""))
    if recorded.partition("_")[2] != current.partition("_")[2]:
        raise CheckpointError(
            f"snapshot was taken from engine {recorded!r}, cannot load it "
            f"into {current!r} (different algorithm)"
        )
    if kind == "single":
        engine.load_state(_decode_single(snapshot["state"]))  # type: ignore[arg-type]
        return
    if kind == "multi":
        if "users" in snapshot:
            engine.load_state(
                {
                    "engine": recorded,
                    "users": {
                        int(user): _decode_single(state)  # type: ignore[arg-type]
                        for user, state in snapshot["users"].items()  # type: ignore[union-attr]
                    },
                }
            )
        else:
            engine.load_state(
                {
                    "engine": recorded,
                    "components": [
                        _decode_single(state)  # type: ignore[arg-type]
                        for state in snapshot["components"]  # type: ignore[union-attr]
                    ],
                }
            )
        return
    if kind in ("dynamic", "dynamic_single"):
        friends = {
            int(author): {int(f) for f in followees}
            for author, followees in snapshot["friends"].items()  # type: ignore[union-attr]
        }
        if kind == "dynamic":
            engine.load_state(
                {
                    "engine": recorded,
                    "graph_version": snapshot["graph_version"],
                    "friends": friends,
                    "instances": [
                        {
                            "nodes": [int(n) for n in spec["nodes"]],
                            "users": [int(u) for u in spec["users"]],
                            "state": _decode_single(spec["state"]),
                        }
                        for spec in snapshot["instances"]  # type: ignore[union-attr]
                    ],
                    "retired_stats": snapshot["retired_stats"],
                    "pending_deltas": snapshot.get("pending_deltas", []),
                }
            )
        else:
            engine.load_state(
                {
                    "engine": snapshot["engine"],
                    "graph_version": snapshot["graph_version"],
                    "friends": friends,
                    "state": _decode_single(snapshot["state"]),  # type: ignore[arg-type]
                }
            )
        return
    raise CheckpointError(f"unknown checkpoint kind {kind!r}")


def save_checkpoint(snapshot: dict[str, object], path: str | Path) -> None:
    """Write a snapshot dict as one sorted JSON object, atomically.

    The write goes to a same-directory temp file, is flushed and fsynced,
    then renamed over ``path`` — a crash at any instant leaves either the
    previous complete checkpoint or the new complete checkpoint, never a
    torn file. (A partial temp file may survive a crash; it is ignored by
    :func:`load_checkpoint` and overwritten by the next save.)
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def load_checkpoint(path: str | Path) -> dict[str, object]:
    """Read a snapshot written by :func:`save_checkpoint`.

    A file that does not parse as a complete JSON object — including one
    truncated by a crash mid-write under a non-atomic writer — is rejected
    with :class:`CheckpointError` rather than restored partially.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path}: not a valid checkpoint (truncated or corrupt "
                f"JSON — possibly a torn write): {exc}"
            ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: expected a JSON object")
    return payload
