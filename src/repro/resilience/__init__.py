"""Resilient ingestion: fault tolerance around the SPSD engines.

The paper's engines assume a perfect stream — monotone timestamps, clean
records, an engine that always keeps up. This package makes the imperfect
case a first-class, *measured* regime instead of a crash:

* :class:`ReorderBuffer` — bounded watermark buffer absorbing out-of-order
  arrivals up to a skew window; late posts follow an explicit policy
  (``drop`` / ``clamp`` / ``raise``) with exact counts.
* :class:`Quarantine` + error-policy decoding — malformed or semantically
  invalid records go to a dead-letter sink with line numbers, instead of
  aborting the run (CLI: ``--on-error {strict,skip,quarantine}``).
* :class:`OverloadController` — queue-backlog budget with hysteresis;
  overload sheds (drop or pass-through) with exact accounting (wired into
  :class:`repro.service.DiversificationService`).
* :class:`MemoryGovernor` — byte-accounted memory budget driving a
  hysteresis degradation ladder (spill tiered windows → cap probe
  fan-out → shed via the overload controller's memory-pressure hook).
* :func:`snapshot_engine` / :func:`restore_engine` — JSON checkpoints that
  resume mid-stream to a bit-identical retained set.
* :class:`ResilientIngest` — the composed pipeline around any engine.
* :mod:`repro.resilience.faults` — the seeded fault-injection harness the
  test suite and benchmarks drive all of the above with.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    load_engine_state,
    restore_engine,
    save_checkpoint,
    snapshot_engine,
)
from .faults import (
    ArrivalShuffler,
    FaultCounts,
    FaultSchedule,
    FeedFaultPlan,
    LatencySpikes,
    LineFaultInjector,
    PostFaultInjector,
    WorkerFaultPlan,
)
from .governor import (
    GOVERNOR_LEVELS,
    GovernorConfig,
    GovernorTransition,
    MemoryGovernor,
)
from .overload import SHED_POLICIES, OverloadController, OverloadCounters
from .pipeline import IngestEvent, ResilientIngest, ingest_jsonl
from .quarantine import (
    ERROR_POLICIES,
    Quarantine,
    QuarantinedRecord,
    check_policy,
    validate_post,
)
from .reorder import LATE_POLICIES, ReorderBuffer, ReorderCounters

__all__ = [
    "ArrivalShuffler",
    "CHECKPOINT_VERSION",
    "ERROR_POLICIES",
    "FaultCounts",
    "FaultSchedule",
    "FeedFaultPlan",
    "GOVERNOR_LEVELS",
    "GovernorConfig",
    "GovernorTransition",
    "IngestEvent",
    "LATE_POLICIES",
    "LatencySpikes",
    "LineFaultInjector",
    "MemoryGovernor",
    "OverloadController",
    "OverloadCounters",
    "PostFaultInjector",
    "Quarantine",
    "QuarantinedRecord",
    "ReorderBuffer",
    "ReorderCounters",
    "ResilientIngest",
    "SHED_POLICIES",
    "WorkerFaultPlan",
    "check_policy",
    "ingest_jsonl",
    "load_checkpoint",
    "load_engine_state",
    "restore_engine",
    "save_checkpoint",
    "snapshot_engine",
    "validate_post",
]
