"""MemoryGovernor: a byte-accounted budget with a degradation ladder.

The engines' windows, the SimHash index, the supervisor's journals and
the service's buffers all grow with the stream; on a real deployment they
share one finite memory budget. This module closes that loop the same way
:class:`~repro.resilience.OverloadController` closes the latency loop —
an explicit, *measured* control policy instead of an OOM kill:

1. **Account** — named accountants report bytes per family (``window``,
   ``index``, ``journal``, ``mailbox``, …) using the deterministic
   estimators of :mod:`repro.storage.accounting`; every tick's totals
   feed the ``repro_memory_*`` gauges.
2. **Degrade, one rung at a time** — while the total exceeds the budget
   the governor climbs a ladder of progressively lossy levers, one rung
   per tick so cheap relief gets a chance before expensive sacrifice:

   * ``spill`` — flush tiered window heads to disk
     (:meth:`~repro.core.base.StreamDiversifier.spill`): zero semantic
     cost, needs tiered storage to have any effect.
   * ``probe`` — cap per-scan candidate probes
     (:meth:`~repro.core.base.StreamDiversifier.set_probe_limit`): scans
     stop touching cold spilled segments, at the cost of occasional
     duplicate leakage (fail-open — never a lost post).
   * ``shed`` — raise memory pressure on the
     :class:`~repro.resilience.OverloadController`, which sheds arriving
     posts through its exact-accounting paths.

3. **Recover with hysteresis** — rungs release one per tick only once the
   total drops below ``resume_fraction × budget``, so the ladder cannot
   oscillate at the budget boundary.

Every transition is counted and recorded (:attr:`MemoryGovernor.
transitions`), and the current rung is surfaced by ``/healthz`` as
``degraded: memory governor at <rung> …``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import MemoryBudgetError

#: Ladder rungs, mildest first; index = escalation level.
GOVERNOR_LEVELS = ("normal", "spill", "probe", "shed")


@dataclass(frozen=True)
class GovernorConfig:
    """Tuning knobs for one :class:`MemoryGovernor`.

    ``budget_bytes`` is the accounted-byte ceiling; ``resume_fraction``
    sets the hysteresis release threshold (de-escalate only below
    ``resume_fraction * budget_bytes``); ``check_every`` paces ticks in
    posts observed; ``probe_limit`` is the per-scan candidate cap the
    ``probe`` rung imposes.
    """

    budget_bytes: int
    resume_fraction: float = 0.75
    check_every: int = 256
    probe_limit: int = 64

    def __post_init__(self) -> None:
        if self.budget_bytes < 1:
            raise MemoryBudgetError(
                f"budget_bytes must be >= 1, got {self.budget_bytes}"
            )
        if not 0.0 < self.resume_fraction < 1.0:
            raise MemoryBudgetError(
                "resume_fraction must be in (0, 1) — at 1.0 the ladder "
                f"oscillates at the budget boundary; got {self.resume_fraction}"
            )
        if self.check_every < 1:
            raise MemoryBudgetError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if self.probe_limit < 1:
            raise MemoryBudgetError(
                f"probe_limit must be >= 1, got {self.probe_limit}"
            )


@dataclass
class GovernorTransition:
    """One recorded ladder move (for logs, tests, and the report)."""

    direction: str  # "escalate" | "release"
    level: str  # rung entered, by name
    total_bytes: int


class MemoryGovernor:
    """Drive the degradation ladder from accounted memory usage.

    Args:
        engine: any single- or multi-user engine exposing the
            bounded-memory hooks (``memory_breakdown`` / ``spill`` /
            ``set_probe_limit``).
        config: the budget and pacing knobs.
        overload: the service's :class:`~repro.resilience.
            OverloadController`; without one the ladder tops out at
            ``probe`` (there is nobody to shed for us).

    Extra byte sources (the service mailbox, a reorder buffer, the
    supervisor's journals when not already reported by the engine) join
    the accounting via :meth:`add_source`.
    """

    def __init__(self, engine, config: GovernorConfig, *, overload=None):
        self.engine = engine
        self.config = config
        self.overload = overload
        self.level = 0
        self.ticks = 0
        self.escalations = 0
        self.releases = 0
        self.transitions: list[GovernorTransition] = []
        self.last_usage: dict[str, int] = {}
        self._since_check = 0
        self._sources: dict[str, Callable[[], int]] = {}

    # -- accounting ----------------------------------------------------------

    def add_source(self, name: str, fn: Callable[[], int]) -> None:
        """Register an extra accountant: ``fn()`` returns current bytes
        for family ``name`` (added to the engine's own families)."""
        self._sources[name] = fn

    def usage(self) -> dict[str, int]:
        """Current accounted bytes by family (engine + extra sources)."""
        totals = dict(self.engine.memory_breakdown())
        for name, fn in self._sources.items():
            totals[name] = totals.get(name, 0) + fn()
        return totals

    def total_bytes(self) -> int:
        return sum(self.usage().values())

    # -- the control loop ----------------------------------------------------

    def observe(self, posts: int = 1) -> None:
        """Account ``posts`` processed; run one tick per ``check_every``."""
        self._since_check += posts
        if self._since_check >= self.config.check_every:
            self._since_check = 0
            self.tick()

    def tick(self) -> None:
        """One control decision: measure, then move at most one rung."""
        self.ticks += 1
        usage = self.usage()
        self.last_usage = usage
        total = sum(usage.values())
        config = self.config
        if total > config.budget_bytes:
            self._escalate(total)
        elif total < config.resume_fraction * config.budget_bytes:
            self._release(total)
        # Between the two thresholds: hold the current rung (hysteresis
        # dead band). While at or above `spill`, keep flushing — new
        # arrivals keep landing in the in-memory heads.
        if self.level >= 1:
            self.engine.spill()

    def _escalate(self, total: int) -> None:
        top = len(GOVERNOR_LEVELS) - 1 if self.overload is not None else 2
        if self.level >= top:
            return
        self.level += 1
        self.escalations += 1
        name = GOVERNOR_LEVELS[self.level]
        self.transitions.append(GovernorTransition("escalate", name, total))
        if name == "probe":
            self.engine.set_probe_limit(self.config.probe_limit)
        elif name == "shed":
            self.overload.set_memory_pressure(True)

    def _release(self, total: int) -> None:
        if self.level == 0:
            return
        leaving = GOVERNOR_LEVELS[self.level]
        self.level -= 1
        self.releases += 1
        self.transitions.append(
            GovernorTransition("release", GOVERNOR_LEVELS[self.level], total)
        )
        if leaving == "shed":
            self.overload.set_memory_pressure(False)
        elif leaving == "probe":
            self.engine.set_probe_limit(None)
        # Leaving `spill` needs no undo: segments migrate back into the
        # head lazily as scans touch them; forcing them back would just
        # re-create the pressure the governor released.

    # -- reporting -----------------------------------------------------------

    @property
    def level_name(self) -> str:
        return GOVERNOR_LEVELS[self.level]

    @property
    def degraded(self) -> bool:
        """True while any rung above ``normal`` is engaged."""
        return self.level > 0

    def status(self) -> dict[str, object]:
        """JSON-able summary (the /healthz.json ``memory`` section)."""
        return {
            "level": self.level_name,
            "budget_bytes": self.config.budget_bytes,
            "total_bytes": sum(self.last_usage.values()),
            "usage": dict(self.last_usage),
            "ticks": self.ticks,
            "escalations": self.escalations,
            "releases": self.releases,
        }
