"""Poison-post quarantine: error-policy decoding and a dead-letter sink.

One malformed JSONL line used to abort an entire ``diversify`` run. Under a
non-strict policy, bad records are instead routed — with their 1-based line
number and a machine-readable reason — to a :class:`Quarantine` dead-letter
sink, and the stream continues. The same sink collects posts that decode
fine but fail semantic validation (non-finite or negative timestamps,
authors unknown to the graph), so "how many inputs did we refuse, and why"
is always an exact number, never a guess.

Policies (:data:`ERROR_POLICIES`):

* ``strict`` — first bad record raises :class:`DatasetError` (legacy).
* ``skip`` — bad records are dropped and counted, nothing retained.
* ``quarantine`` — bad records are retained in the sink for later
  inspection / replay (``Quarantine.write_jsonl``).
"""

from __future__ import annotations

import json
import math
from collections.abc import Container
from dataclasses import dataclass
from pathlib import Path

from ..core import Post
from ..errors import ConfigurationError

#: Accepted decoding policies.
ERROR_POLICIES = ("strict", "skip", "quarantine")


@dataclass(frozen=True, slots=True)
class QuarantinedRecord:
    """One refused input: where it came from and why it was refused.

    ``line_number`` is 1-based for file sources and 0 for in-memory posts;
    ``raw`` carries the offending line (or the post's JSON form) so a fixed
    decoder can re-ingest the dead-letter file.
    """

    line_number: int
    reason: str
    detail: str
    raw: str

    def as_dict(self) -> dict[str, object]:
        return {
            "line_number": self.line_number,
            "reason": self.reason,
            "detail": self.detail,
            "raw": self.raw,
        }


class Quarantine:
    """Dead-letter sink with exact per-reason accounting."""

    def __init__(self, *, max_retained: int | None = None):
        if max_retained is not None and max_retained < 0:
            raise ConfigurationError(
                f"max_retained must be >= 0, got {max_retained}"
            )
        self.max_retained = max_retained
        self.records: list[QuarantinedRecord] = []
        self.total = 0
        self.by_reason: dict[str, int] = {}

    def __len__(self) -> int:
        return self.total

    def add(
        self, line_number: int, reason: str, detail: str, raw: str
    ) -> QuarantinedRecord:
        """Record one refusal; retains the record unless over capacity."""
        record = QuarantinedRecord(line_number, reason, detail, raw)
        self.total += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        if self.max_retained is None or len(self.records) < self.max_retained:
            self.records.append(record)
        return record

    def add_post(self, post: Post, reason: str, detail: str) -> QuarantinedRecord:
        """Quarantine an already-decoded post (semantic validation failure)."""
        raw = json.dumps(
            {
                "post_id": post.post_id,
                "author": post.author,
                "text": post.text,
                "timestamp": repr(post.timestamp),
            },
            sort_keys=True,
        )
        return self.add(0, reason, detail, raw)

    def snapshot(self) -> dict[str, object]:
        """Reporting dict: total plus per-reason counts."""
        return {"quarantined": self.total, "by_reason": dict(self.by_reason)}

    def write_jsonl(self, path: str | Path) -> int:
        """Dump retained records as JSONL; returns how many were written
        (≤ ``total`` when ``max_retained`` truncated retention)."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.records)


def check_policy(on_error: str, quarantine: Quarantine | None) -> None:
    """Validate an (on_error, sink) pair; raises :class:`ConfigurationError`."""
    if on_error not in ERROR_POLICIES:
        raise ConfigurationError(
            f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
        )
    if on_error == "quarantine" and quarantine is None:
        raise ConfigurationError(
            "on_error='quarantine' requires a Quarantine sink"
        )


def validate_post(
    post: Post,
    *,
    known_authors: Container[int] | None = None,
) -> tuple[str, str] | None:
    """Semantic validation of a decoded post.

    Returns ``None`` when the post is acceptable, else a
    ``(reason, detail)`` pair: ``non_finite_timestamp``,
    ``negative_timestamp`` or ``unknown_author``.
    """
    if not math.isfinite(post.timestamp):
        return (
            "non_finite_timestamp",
            f"post {post.post_id}: timestamp={post.timestamp!r}",
        )
    if post.timestamp < 0:
        return (
            "negative_timestamp",
            f"post {post.post_id}: timestamp={post.timestamp!r}",
        )
    if known_authors is not None and post.author not in known_authors:
        return (
            "unknown_author",
            f"post {post.post_id}: author={post.author!r}",
        )
    return None
