"""Supervisor-driven shard autoscaling: split hot shards, merge cold ones.

The static shard plan (:mod:`.sharding`) bin-packs components by the §4.4
cost *estimates* — priors struck before a single post arrives. Real
streams drift: one component's authors go viral and its shard's windows
balloon, another goes quiet and its worker idles at near-zero residency.
This module closes the loop at runtime using the two signals the paper's
cost model says matter:

* **Memory accounting** (:mod:`repro.storage.accounting`): per-shard
  accounted bytes from the ``memory`` worker command — the ground truth
  of which shard is actually hot.
* **The §4.4 cost model**: per-component estimated cost, used to pick
  *which* components leave a hot shard (an LPT two-way split) so the
  halves come out balanced.

Decisions are made by :class:`AutoscalePolicy` thresholds with hysteresis
(a shard must stay hot/cold for ``patience`` consecutive evaluations) and
executed by :class:`ShardAutoscaler` through
:meth:`~repro.parallel.ParallelSharedMultiUser.split_shard` /
:meth:`~repro.parallel.ParallelSharedMultiUser.merge_shards`, which run
entirely on the supervisor's journalled checkpoint/migration machinery —
a worker crash mid-split or mid-merge recovers byte-identical to a
fault-free run, which the chaos suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class AutoscalePolicy:
    """When to split and when to merge.

    ``split_bytes``: a shard whose accounted bytes exceed this is hot.
    ``merge_bytes``: two shards whose *combined* accounted bytes stay
    under this are cold enough to merge (defaults to ``split_bytes / 2``,
    leaving a dead band between the thresholds so a merged shard is never
    immediately hot again).
    ``min_shards``/``max_shards`` clamp the live topology;
    ``check_every`` paces evaluations in posts observed; ``patience`` is
    the number of *consecutive* hot (cold) evaluations required before a
    split (merge) fires — the anti-flapping hysteresis.
    """

    split_bytes: int
    merge_bytes: int | None = None
    min_shards: int = 1
    max_shards: int = 64
    check_every: int = 4096
    patience: int = 2

    def __post_init__(self) -> None:
        if self.split_bytes < 1:
            raise ConfigurationError(
                f"split_bytes must be >= 1, got {self.split_bytes}"
            )
        merge = self.effective_merge_bytes
        if merge >= self.split_bytes:
            raise ConfigurationError(
                f"merge_bytes ({merge}) must stay below split_bytes "
                f"({self.split_bytes}) or splits and merges oscillate"
            )
        if self.min_shards < 1:
            raise ConfigurationError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ConfigurationError(
                f"max_shards ({self.max_shards}) < min_shards ({self.min_shards})"
            )
        if self.check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if self.patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {self.patience}")

    @property
    def effective_merge_bytes(self) -> int:
        return (
            self.split_bytes // 2 if self.merge_bytes is None else self.merge_bytes
        )


@dataclass
class AutoscaleEvent:
    """One executed topology change, for logs and tests."""

    action: str  # "split" | "merge"
    shard: int
    other: int  # the new shard (split) or the retired source (merge)
    bytes_before: int


class ShardAutoscaler:
    """Evaluate the policy on a cadence and execute splits/merges.

    Drive it with :meth:`observe` from the engine's batch path (the same
    piggyback pattern as the supervisor's heartbeats: no background
    thread), or call :meth:`evaluate` directly from tests.
    """

    def __init__(self, engine, policy: AutoscalePolicy):
        self.engine = engine
        self.policy = policy
        self.splits = 0
        self.merges = 0
        self.events: list[AutoscaleEvent] = []
        self._since_check = 0
        self._hot_streak: dict[int, int] = {}
        self._cold_streak = 0

    def observe(self, posts: int) -> None:
        """Account ``posts`` processed; evaluate once per ``check_every``."""
        self._since_check += posts
        if self._since_check >= self.policy.check_every:
            self._since_check = 0
            self.evaluate()

    def evaluate(self) -> AutoscaleEvent | None:
        """Run one policy evaluation; returns the executed event, if any.

        At most one topology change per evaluation — splits and merges
        are rare, expensive, and serialising them keeps every
        intermediate state trivially recoverable.
        """
        engine = self.engine
        supervisor = engine.supervisor
        if supervisor is None:
            return None
        usage = {
            shard: sum(breakdown.values())
            for shard, breakdown in engine.memory_by_shard().items()
            if not supervisor.is_retired(shard)
        }
        if not usage:
            return None
        event = self._maybe_split(usage)
        if event is None:
            event = self._maybe_merge(usage)
        if event is not None:
            self.events.append(event)
        return event

    # -- decisions ----------------------------------------------------------

    def _maybe_split(self, usage: dict[int, int]) -> AutoscaleEvent | None:
        policy = self.policy
        engine = self.engine
        hot = {
            shard
            for shard, used in usage.items()
            if used > policy.split_bytes
            and len(engine.components_of_shard(shard)) >= 2
        }
        # Hysteresis: a shard must be hot for `patience` consecutive
        # evaluations; any cool-off resets its streak.
        streaks = self._hot_streak
        for shard in list(streaks):
            if shard not in hot:
                del streaks[shard]
        for shard in hot:
            streaks[shard] = streaks.get(shard, 0) + 1
        if len(usage) >= policy.max_shards:
            return None
        ripe = [s for s in hot if streaks[s] >= policy.patience]
        if not ripe:
            return None
        shard = max(ripe, key=lambda s: usage[s])
        before = usage[shard]
        new_index = engine.split_shard(shard)
        del streaks[shard]
        self.splits += 1
        return AutoscaleEvent("split", shard, new_index, before)

    def _maybe_merge(self, usage: dict[int, int]) -> AutoscaleEvent | None:
        policy = self.policy
        if len(usage) <= policy.min_shards or len(usage) < 2:
            self._cold_streak = 0
            return None
        coldest = sorted(usage, key=lambda s: usage[s])[:2]
        combined = usage[coldest[0]] + usage[coldest[1]]
        if combined >= policy.effective_merge_bytes:
            self._cold_streak = 0
            return None
        self._cold_streak += 1
        if self._cold_streak < policy.patience:
            return None
        self._cold_streak = 0
        target, source = sorted(coldest)
        self.merges += 1
        self.engine.merge_shards(target, source)
        return AutoscaleEvent("merge", target, source, combined)

    def status(self) -> dict[str, object]:
        """JSON-able summary for /healthz and the supervision report."""
        return {
            "splits": self.splits,
            "merges": self.merges,
            "shards": self.engine.shard_count(),
        }
