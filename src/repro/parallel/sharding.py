"""Cost-driven partitioning of distinct components across shards.

The sharing theorem (paper §5) makes connected components of the author
similarity graph provably independent units of work: no post in one
component can ever cover — or be covered by — a post in another. That
independence is exactly what a stream partitioner needs (the same move
Storm/Kafka consumers make when they shard by key), so the parallel
execution layer assigns each *distinct* component of a
:class:`~repro.authors.ComponentCatalog` to one shard and routes arriving
posts by their author's components.

Components are far from uniform — one hub component can dwarf hundreds of
singletons — so shards are bin-packed by an analytical cost estimate from
:mod:`repro.core.costmodel` (§4.4): comparisons plus insertions per λt
window, with the post volume ``n`` scaled by component size. The classic
LPT greedy (largest component first, onto the least-loaded shard) keeps the
makespan within 4/3 of optimal, which is all the balance a stream router
needs; the residual skew is exported as the shard-imbalance gauge.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..authors import AuthorGraph
from ..core.costmodel import WorkloadParameters, estimate
from ..errors import ConfigurationError


def component_cost(
    algorithm: str,
    graph: AuthorGraph,
    component: frozenset[int],
    *,
    posts_per_author: float = 1.0,
    retention: float = 0.5,
) -> float:
    """Estimated per-λt-window work for one component, from §4.4.

    ``n`` scales with component size (uniform author post rates — the best
    prior before any posts arrive), ``d`` is measured on the induced
    subgraph, and the clique parameters use the paper's ``c·(s−1)·q = d``
    identity at ``s = 2, q = 1`` so planning never has to compute a clique
    cover. The +1 floor gives singleton components nonzero weight, so a
    world of thousands of singletons still spreads across shards.
    """
    m = len(component)
    if m == 0:
        return 1.0
    d = graph.subgraph(component).average_degree()
    params = WorkloadParameters(
        m=m,
        n=posts_per_author * m,
        r=retention,
        d=d,
        c=max(d, 1.0),
        s=2.0,
    )
    # indexed_unibin shares UniBin's bin structure; every other registry
    # name has its own §4.4 column.
    name = algorithm if algorithm in ("unibin", "neighborbin", "cliquebin") else "unibin"
    est = estimate(name, params)
    return est.comparisons + est.insertions + 1.0


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """A deterministic assignment of component indices to shards.

    Attributes:
        assignments: per shard, the component indices it owns (each sorted
            ascending so workers build engines in catalog order).
        loads: per shard, the summed estimated cost.
    """

    assignments: tuple[tuple[int, ...], ...]
    loads: tuple[float, ...]

    @property
    def shard_count(self) -> int:
        return len(self.assignments)

    def shard_of_component(self) -> dict[int, int]:
        """component index → owning shard index."""
        owner: dict[int, int] = {}
        for shard, indices in enumerate(self.assignments):
            for idx in indices:
                owner[idx] = shard
        return owner

    def imbalance(self) -> float:
        """Relative makespan skew ``(max − mean) / mean`` of planned loads.

        0 means perfectly balanced; 1 means the fullest shard carries twice
        the mean. This is the value the shard-imbalance gauge exports and
        the tuning guide's first diagnostic: when one giant component
        dominates, imbalance tends toward ``workers − 1`` and adding
        workers cannot help.
        """
        if not self.loads:
            return 0.0
        mean = sum(self.loads) / len(self.loads)
        if mean <= 0.0:
            return 0.0
        return (max(self.loads) - mean) / mean


def plan_shards(costs: Sequence[float], workers: int) -> ShardPlan:
    """Bin-pack component costs onto ``workers`` shards with LPT greedy.

    Deterministic: ties in cost break by component index, ties in load by
    shard index, so the same catalog and worker count always produce the
    same plan — a precondition for checkpoint compatibility across runs.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    shards: list[list[int]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for idx in order:
        target = min(range(workers), key=lambda s: (loads[s], s))
        shards[target].append(idx)
        loads[target] += costs[idx]
    return ShardPlan(
        assignments=tuple(tuple(sorted(s)) for s in shards),
        loads=tuple(loads),
    )
