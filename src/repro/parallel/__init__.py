"""Parallel sharded execution for M-SPSD (builds on paper §5).

The sharing theorem makes connected components of the author similarity
graph independent units of work; this package partitions the distinct
components of a :class:`~repro.authors.ComponentCatalog` across worker
processes and recombines per-shard admissions into the exact serial
answer.

Public surface:

* :class:`ParallelSharedMultiUser` — the drop-in sharded engine
  (``workers=1`` is the zero-IPC in-process fast path; ``supervised=True``
  wraps the pool in a :class:`~repro.supervise.ShardSupervisor`).
* :func:`plan_shards` / :func:`component_cost` / :class:`ShardPlan` — the
  cost-model-driven bin-packing behind shard assignment.
* :class:`ShardSpec` / :class:`ShardServer` — the worker startup spec and
  its command dispatcher (shared with supervised degraded mode).
* :class:`AutoscalePolicy` / :class:`ShardAutoscaler` — runtime shard
  split/merge driven by memory accounting and the §4.4 cost model, on
  the supervisor's journalled migration machinery.
* :class:`ShmRing` / :data:`ROW_DTYPE` — the binary post codec and
  per-shard shared-memory rings behind ``transport="shm"`` (:mod:`.shm`).
"""

from .autoscale import AutoscaleEvent, AutoscalePolicy, ShardAutoscaler
from .engine import DEFAULT_RING_CAPACITY, ParallelSharedMultiUser
from .sharding import ShardPlan, component_cost, plan_shards
from .shm import RING_PREFIX, ROW_DTYPE, ShmRing, shared_memory_available
from .worker import ShardServer, ShardSpec

__all__ = [
    "AutoscaleEvent",
    "AutoscalePolicy",
    "DEFAULT_RING_CAPACITY",
    "ParallelSharedMultiUser",
    "RING_PREFIX",
    "ROW_DTYPE",
    "ShardAutoscaler",
    "ShardPlan",
    "ShardServer",
    "ShardSpec",
    "ShmRing",
    "component_cost",
    "plan_shards",
    "shared_memory_available",
]
