"""Parallel sharded execution for M-SPSD (builds on paper §5).

The sharing theorem makes connected components of the author similarity
graph independent units of work; this package partitions the distinct
components of a :class:`~repro.authors.ComponentCatalog` across worker
processes and recombines per-shard admissions into the exact serial
answer.

Public surface:

* :class:`ParallelSharedMultiUser` — the drop-in sharded engine
  (``workers=1`` is the zero-IPC in-process fast path; ``supervised=True``
  wraps the pool in a :class:`~repro.supervise.ShardSupervisor`).
* :func:`plan_shards` / :func:`component_cost` / :class:`ShardPlan` — the
  cost-model-driven bin-packing behind shard assignment.
* :class:`ShardSpec` / :class:`ShardServer` — the worker startup spec and
  its command dispatcher (shared with supervised degraded mode).
* :class:`AutoscalePolicy` / :class:`ShardAutoscaler` — runtime shard
  split/merge driven by memory accounting and the §4.4 cost model, on
  the supervisor's journalled migration machinery.
"""

from .autoscale import AutoscaleEvent, AutoscalePolicy, ShardAutoscaler
from .engine import ParallelSharedMultiUser
from .sharding import ShardPlan, component_cost, plan_shards
from .worker import ShardServer, ShardSpec

__all__ = [
    "AutoscaleEvent",
    "AutoscalePolicy",
    "ParallelSharedMultiUser",
    "ShardAutoscaler",
    "ShardPlan",
    "ShardServer",
    "ShardSpec",
    "component_cost",
    "plan_shards",
]
