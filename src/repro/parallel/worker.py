"""Shard worker: one process owning a subset of distinct components.

Each worker builds the single-user engines for *its* components only —
under the ``fork`` start method nothing is pickled, under ``spawn`` the
spec (algorithm, thresholds, component node sets, author graph) travels
once at startup — and then serves a tiny command protocol over its pipe:

===========  =======================================  ======================
command      payload                                  reply payload
===========  =======================================  ======================
batch        [(seq, post, [component idx, ...]), …]   [(seq, [admitting idx, …]), …]
shm_batch    ring name, offset, nrows, nidx, texts    [(seq, [admitting idx, …]), …]
shm_batch_payload  packed bytes, nrows, nidx, texts   [(seq, [admitting idx, …]), …]
stats        —                                        merged RunStats state dict
stored       —                                        resident post copies
purge        now                                      None
state        —                                        [(idx, engine state dict), …]
load         [(idx, engine state dict), …]            None
memory       —                                        accounted bytes by family
spill        —                                        posts force-spilled to disk
probe_limit  limit or None                            None
drop         [component idx, …]                       None (shard split: give up)
adopt        [(idx, nodes, state or None), …]         None (shard merge: take on)
ping         —                                        "pong" (liveness probe)
stop         —                                        None (worker exits)
===========  =======================================  ======================

Every reply is ``("ok", payload)`` or ``("error", type_name, message)``;
the parent converts errors into :class:`~repro.errors.ParallelError`.
Posts inside a batch are offered to each named component's engine in
catalog-index order, so per-engine streams — and therefore every verdict
and counter — are identical to the serial engine's. The three batch
commands are one logical command with three framings: ``batch`` carries
pickled tuples (the slow path), ``shm_batch`` a descriptor into the
shard's shared-memory ring (:mod:`.shm`, the hot path), and
``shm_batch_payload`` the same packed bytes inline (the journal's
self-contained replay form). All three decode to identical items and run
the identical offer loop.

Command dispatch lives in :class:`ShardServer`, which the worker main
loop, the supervisor's journal replay, and the degraded in-parent mode
all share — identical semantics via identical code. A
:class:`~repro.resilience.WorkerFaultPlan` on the spec is executed *only*
in :func:`shard_worker_main` (the process boundary), after the engines
applied a batch but before the reply is sent — the window where a crash
loses acknowledged work unless the supervisor's journal saves it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..authors import AuthorGraph
from ..core import RunStats, StreamDiversifier, Thresholds, make_diversifier
from ..resilience.faults import WorkerFaultPlan, execute_worker_fault
from ..supervise import WorkerProtocol
from .shm import (
    attach_ring,
    batch_nbytes,
    close_attached_rings,
    detach_shm_batch,
    unpack_batch,
)


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to build its engines (picklable).

    ``storage`` (a :class:`repro.storage.SpillConfig`) makes the shard's
    window bins tiered; each worker spills into the configured directory
    with process-unique segment names, so shards never collide.
    """

    algorithm: str
    thresholds: Thresholds
    graph: AuthorGraph
    components: tuple[tuple[int, frozenset[int]], ...]
    faults: WorkerFaultPlan | None = None
    storage: object | None = None


def build_shard_engines(spec: ShardSpec) -> dict[int, StreamDiversifier]:
    """Construct one engine per owned component, keyed by catalog index.

    Mirrors :class:`~repro.multiuser.SharedComponentMultiUser` exactly —
    same ``graph.subgraph(component)`` call on the same frozenset — so
    derived structures (e.g. CliqueBin's greedy cover) come out identical
    to the serial engine's and outputs stay byte-for-byte equal.
    """
    return {
        idx: make_diversifier(
            spec.algorithm,
            spec.thresholds,
            spec.graph.subgraph(component),
            storage=spec.storage,
        )
        for idx, component in spec.components
    }


class ShardServer:
    """Dispatch one shard's commands against its component engines.

    Fault-free by construction: injection happens only at the process
    boundary in :func:`shard_worker_main`, so the supervisor can run this
    same class in-parent (degraded mode, journal replay) without a fault
    plan ever touching the coordinator process.
    """

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.engines = build_shard_engines(spec)
        self._probe_limit: int | None = None

    def _offer_items(self, items) -> list:
        """The one offer loop behind all three batch framings."""
        engines = self.engines
        out = []
        for seq, post, indices in items:
            admitted = [idx for idx in indices if engines[idx].offer(post)]
            out.append((seq, admitted))
        return out

    def handle(self, message: tuple):
        """Execute one command tuple; return the reply payload."""
        command = message[0]
        engines = self.engines
        if command == "batch":
            return self._offer_items(message[1])
        if command == "shm_batch":
            _, name, offset, nrows, nidx, texts = message
            ring = attach_ring(name)
            region = ring.read(offset, batch_nbytes(nrows, nidx))
            return self._offer_items(unpack_batch(region, nrows, nidx, texts))
        if command == "shm_batch_payload":
            # The journal's detached form: same bytes, shipped inline.
            _, blob, nrows, nidx, texts = message
            return self._offer_items(unpack_batch(blob, nrows, nidx, texts))
        if command == "stats":
            total = RunStats()
            for engine in engines.values():
                total.merge(engine.stats)
            return total.state_dict()
        if command == "stored":
            return sum(engine.stored_copies() for engine in engines.values())
        if command == "purge":
            for engine in engines.values():
                engine.purge(message[1])
            return None
        if command == "state":
            return [(idx, engines[idx].state_dict()) for idx in sorted(engines)]
        if command == "load":
            # Unknown indices are skipped, not errors: after a shard split
            # the respawn spec may own fewer components than an older
            # checkpoint covers, and the journalled "drop" that follows in
            # replay would discard them anyway.
            for idx, state in message[1]:
                engine = engines.get(idx)
                if engine is not None:
                    engine.load_state(state)
            return None
        if command == "memory":
            total: dict[str, int] = {}
            for engine in engines.values():
                for family, amount in engine.memory_breakdown().items():
                    total[family] = total.get(family, 0) + amount
            return total
        if command == "spill":
            return sum(engine.spill() for engine in engines.values())
        if command == "probe_limit":
            self._probe_limit = message[1]
            for engine in engines.values():
                engine.set_probe_limit(message[1])
            return None
        if command == "drop":
            # Shard split: this shard gives up the named components.
            # Idempotent (missing indices ignored) so journal replay that
            # races a spec update stays byte-exact.
            for idx in message[1]:
                engines.pop(idx, None)
            return None
        if command == "adopt":
            # Shard merge: take ownership of components migrated from a
            # retiring shard. Rebuilds unconditionally — replaying an
            # adopt lands on the same carried state either way — and the
            # adopted engines inherit this shard's active probe limit.
            spec = self.spec
            for idx, nodes, state in message[1]:
                engine = make_diversifier(
                    spec.algorithm,
                    spec.thresholds,
                    spec.graph.subgraph(frozenset(nodes)),
                    storage=spec.storage,
                )
                if state is not None:
                    engine.load_state(state)
                if self._probe_limit is not None:
                    engine.set_probe_limit(self._probe_limit)
                engines[idx] = engine
            return None
        if command == "ping":
            return "pong"
        if command == "stop":
            return None
        raise ValueError(f"unknown command {command!r}")


#: The three framings of the batch command: fault-plan ordinals count any
#: of them, so a chaos schedule keyed on "the Nth batch" fires at the
#: same stream position whichever transport carried it.
BATCH_COMMANDS = frozenset({"batch", "shm_batch", "shm_batch_payload"})


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker process entry point: build engines, serve commands, exit on
    ``stop`` or when the parent's end of the pipe closes. Borrowed
    shared-memory mappings are closed on every return path (the
    coordinator owns — and eventually unlinks — the segments)."""
    try:
        server = ShardServer(spec)
    except BaseException as exc:  # startup failure: report, then die
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        finally:
            conn.close()
        return
    faults = spec.faults
    batches = 0
    conn.send(("ok", "ready"))
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            command = message[0]
            try:
                payload = server.handle(message)
            except Exception as exc:
                # Engine errors (StreamOrderError, CheckpointError, …) are
                # reported, not fatal: the worker keeps serving so the parent
                # can still checkpoint or shut down cleanly.
                conn.send(("error", type(exc).__name__, str(exc)))
                continue
            if command in BATCH_COMMANDS and faults is not None:
                batches += 1
                action = faults.action_for(batches)
                if action is not None and execute_worker_fault(action, faults, conn):
                    continue  # corrupt reply already sent
            conn.send(("ok", payload))
            if command == "stop":
                break
        conn.close()
    finally:
        close_attached_rings()


#: Commands that change worker state and therefore must be journalled.
#: ``spill`` is deliberately absent: it moves posts between residency
#: tiers without changing any verdict-relevant state, so replaying it
#: after a crash is unnecessary. ``shm_batch`` is journalled in its
#: detached ``shm_batch_payload`` form (see ``supervision_protocol``).
MUTATING_COMMANDS = frozenset(
    {"batch", "shm_batch", "shm_batch_payload", "purge", "load", "probe_limit", "drop", "adopt"}
)


def _posts_of(message: tuple) -> int:
    command = message[0]
    if command == "batch":
        return len(message[1])
    if command in ("shm_batch", "shm_batch_payload"):
        return message[3] if command == "shm_batch" else message[2]
    return 0


def supervision_protocol() -> WorkerProtocol:
    """The static-shard family's adapter for :class:`ShardSupervisor`.

    A shard's checkpoint is its ``state`` reply — the positional
    ``(idx, engine state dict)`` list — and restoring is one ``load`` of
    that same payload, so checkpoint/restore reuse the exact wire shapes
    the engine's own :meth:`state_dict`/:meth:`load_state` speak.

    ``journal_form`` detaches ``shm_batch`` descriptors into
    self-contained payload bytes at commit time: a journalled ring
    reference would dangle once the ring region is overwritten, so the
    journal must never hold one.
    """
    return WorkerProtocol(
        target=shard_worker_main,
        mutating=MUTATING_COMMANDS,
        checkpoint_command=("state",),
        restore_messages=lambda payload: [("load", payload)],
        make_server=ShardServer,
        strip_faults=lambda spec: replace(spec, faults=None),
        posts_of=_posts_of,
        journal_form=detach_shm_batch,
    )
