"""Shard worker: one process owning a subset of distinct components.

Each worker builds the single-user engines for *its* components only —
under the ``fork`` start method nothing is pickled, under ``spawn`` the
spec (algorithm, thresholds, component node sets, author graph) travels
once at startup — and then serves a tiny command protocol over its pipe:

========  =======================================  ======================
command   payload                                  reply payload
========  =======================================  ======================
batch     [(seq, post, [component idx, ...]), …]   [(seq, [admitting idx, …]), …]
stats     —                                        merged RunStats state dict
stored    —                                        resident post copies
purge     now                                      None
state     —                                        [(idx, engine state dict), …]
load      [(idx, engine state dict), …]            None
ping      —                                        "pong" (liveness probe)
stop      —                                        None (worker exits)
========  =======================================  ======================

Every reply is ``("ok", payload)`` or ``("error", type_name, message)``;
the parent converts errors into :class:`~repro.errors.ParallelError`.
Posts inside a batch are offered to each named component's engine in
catalog-index order, so per-engine streams — and therefore every verdict
and counter — are identical to the serial engine's.

Command dispatch lives in :class:`ShardServer`, which the worker main
loop, the supervisor's journal replay, and the degraded in-parent mode
all share — identical semantics via identical code. A
:class:`~repro.resilience.WorkerFaultPlan` on the spec is executed *only*
in :func:`shard_worker_main` (the process boundary), after the engines
applied a batch but before the reply is sent — the window where a crash
loses acknowledged work unless the supervisor's journal saves it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..authors import AuthorGraph
from ..core import RunStats, StreamDiversifier, Thresholds, make_diversifier
from ..resilience.faults import WorkerFaultPlan, execute_worker_fault
from ..supervise import WorkerProtocol


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to build its engines (picklable)."""

    algorithm: str
    thresholds: Thresholds
    graph: AuthorGraph
    components: tuple[tuple[int, frozenset[int]], ...]
    faults: WorkerFaultPlan | None = None


def build_shard_engines(spec: ShardSpec) -> dict[int, StreamDiversifier]:
    """Construct one engine per owned component, keyed by catalog index.

    Mirrors :class:`~repro.multiuser.SharedComponentMultiUser` exactly —
    same ``graph.subgraph(component)`` call on the same frozenset — so
    derived structures (e.g. CliqueBin's greedy cover) come out identical
    to the serial engine's and outputs stay byte-for-byte equal.
    """
    return {
        idx: make_diversifier(spec.algorithm, spec.thresholds, spec.graph.subgraph(component))
        for idx, component in spec.components
    }


class ShardServer:
    """Dispatch one shard's commands against its component engines.

    Fault-free by construction: injection happens only at the process
    boundary in :func:`shard_worker_main`, so the supervisor can run this
    same class in-parent (degraded mode, journal replay) without a fault
    plan ever touching the coordinator process.
    """

    def __init__(self, spec: ShardSpec):
        self.engines = build_shard_engines(spec)

    def handle(self, message: tuple):
        """Execute one command tuple; return the reply payload."""
        command = message[0]
        engines = self.engines
        if command == "batch":
            out = []
            for seq, post, indices in message[1]:
                admitted = [idx for idx in indices if engines[idx].offer(post)]
                out.append((seq, admitted))
            return out
        if command == "stats":
            total = RunStats()
            for engine in engines.values():
                total.merge(engine.stats)
            return total.state_dict()
        if command == "stored":
            return sum(engine.stored_copies() for engine in engines.values())
        if command == "purge":
            for engine in engines.values():
                engine.purge(message[1])
            return None
        if command == "state":
            return [(idx, engines[idx].state_dict()) for idx in sorted(engines)]
        if command == "load":
            for idx, state in message[1]:
                engines[idx].load_state(state)
            return None
        if command == "ping":
            return "pong"
        if command == "stop":
            return None
        raise ValueError(f"unknown command {command!r}")


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker process entry point: build engines, serve commands, exit on
    ``stop`` or when the parent's end of the pipe closes."""
    try:
        server = ShardServer(spec)
    except BaseException as exc:  # startup failure: report, then die
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        finally:
            conn.close()
        return
    faults = spec.faults
    batches = 0
    conn.send(("ok", "ready"))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            payload = server.handle(message)
        except Exception as exc:
            # Engine errors (StreamOrderError, CheckpointError, …) are
            # reported, not fatal: the worker keeps serving so the parent
            # can still checkpoint or shut down cleanly.
            conn.send(("error", type(exc).__name__, str(exc)))
            continue
        if command == "batch" and faults is not None:
            batches += 1
            action = faults.action_for(batches)
            if action is not None and execute_worker_fault(action, faults, conn):
                continue  # corrupt reply already sent
        conn.send(("ok", payload))
        if command == "stop":
            break
    conn.close()


#: Commands that change worker state and therefore must be journalled.
MUTATING_COMMANDS = frozenset({"batch", "purge", "load"})


def _posts_of(message: tuple) -> int:
    return len(message[1]) if message[0] == "batch" else 0


def supervision_protocol() -> WorkerProtocol:
    """The static-shard family's adapter for :class:`ShardSupervisor`.

    A shard's checkpoint is its ``state`` reply — the positional
    ``(idx, engine state dict)`` list — and restoring is one ``load`` of
    that same payload, so checkpoint/restore reuse the exact wire shapes
    the engine's own :meth:`state_dict`/:meth:`load_state` speak.
    """
    return WorkerProtocol(
        target=shard_worker_main,
        mutating=MUTATING_COMMANDS,
        checkpoint_command=("state",),
        restore_messages=lambda payload: [("load", payload)],
        make_server=ShardServer,
        strip_faults=lambda spec: replace(spec, faults=None),
        posts_of=_posts_of,
    )
