"""Shard worker: one process owning a subset of distinct components.

Each worker builds the single-user engines for *its* components only —
under the ``fork`` start method nothing is pickled, under ``spawn`` the
spec (algorithm, thresholds, component node sets, author graph) travels
once at startup — and then serves a tiny command protocol over its pipe:

========  =======================================  ======================
command   payload                                  reply payload
========  =======================================  ======================
batch     [(seq, post, [component idx, ...]), …]   [(seq, [admitting idx, …]), …]
stats     —                                        merged RunStats state dict
stored    —                                        resident post copies
purge     now                                      None
state     —                                        [(idx, engine state dict), …]
load      [(idx, engine state dict), …]            None
stop      —                                        None (worker exits)
========  =======================================  ======================

Every reply is ``("ok", payload)`` or ``("error", type_name, message)``;
the parent converts errors into :class:`~repro.errors.ParallelError`.
Posts inside a batch are offered to each named component's engine in
catalog-index order, so per-engine streams — and therefore every verdict
and counter — are identical to the serial engine's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..authors import AuthorGraph
from ..core import RunStats, StreamDiversifier, Thresholds, make_diversifier


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to build its engines (picklable)."""

    algorithm: str
    thresholds: Thresholds
    graph: AuthorGraph
    components: tuple[tuple[int, frozenset[int]], ...]


def build_shard_engines(spec: ShardSpec) -> dict[int, StreamDiversifier]:
    """Construct one engine per owned component, keyed by catalog index.

    Mirrors :class:`~repro.multiuser.SharedComponentMultiUser` exactly —
    same ``graph.subgraph(component)`` call on the same frozenset — so
    derived structures (e.g. CliqueBin's greedy cover) come out identical
    to the serial engine's and outputs stay byte-for-byte equal.
    """
    return {
        idx: make_diversifier(spec.algorithm, spec.thresholds, spec.graph.subgraph(component))
        for idx, component in spec.components
    }


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker process entry point: build engines, serve commands, exit on
    ``stop`` or when the parent's end of the pipe closes."""
    try:
        engines = build_shard_engines(spec)
    except BaseException as exc:  # startup failure: report, then die
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        finally:
            conn.close()
        return
    conn.send(("ok", "ready"))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            if command == "batch":
                out = []
                for seq, post, indices in message[1]:
                    admitted = [idx for idx in indices if engines[idx].offer(post)]
                    out.append((seq, admitted))
                conn.send(("ok", out))
            elif command == "stats":
                total = RunStats()
                for engine in engines.values():
                    total.merge(engine.stats)
                conn.send(("ok", total.state_dict()))
            elif command == "stored":
                conn.send(
                    ("ok", sum(engine.stored_copies() for engine in engines.values()))
                )
            elif command == "purge":
                for engine in engines.values():
                    engine.purge(message[1])
                conn.send(("ok", None))
            elif command == "state":
                conn.send(
                    ("ok", [(idx, engines[idx].state_dict()) for idx in sorted(engines)])
                )
            elif command == "load":
                for idx, state in message[1]:
                    engines[idx].load_state(state)
                conn.send(("ok", None))
            elif command == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", "ValueError", f"unknown command {command!r}"))
        except Exception as exc:
            # Engine errors (StreamOrderError, CheckpointError, …) are
            # reported, not fatal: the worker keeps serving so the parent
            # can still checkpoint or shut down cleanly.
            conn.send(("error", type(exc).__name__, str(exc)))
    conn.close()
