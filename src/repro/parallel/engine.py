"""ParallelSharedMultiUser: the sharded M-SPSD execution engine.

Drop-in :class:`~repro.multiuser.MultiUserDiversifier` that runs the
shared-component decomposition of :class:`SharedComponentMultiUser` across
``workers`` processes. Distinct components are bin-packed onto shards by
estimated cost (:mod:`.sharding`), each worker process owns its shard's
single-user engines (:mod:`.worker`), and the coordinator routes arriving
posts to the shards owning their author's components, merging per-shard
admissions back into the exact serial receiver set.

Exactness: components are provably independent (§5), each component's
engine sees precisely the same post subsequence in the same order as in
the serial engine, and the receiver set of a post is the union over its
author's components of that component's users — a union that commutes
across shards. Verdicts, per-user timelines and every RunStats counter are
therefore byte-identical to ``SharedComponentMultiUser``, which the
differential suite asserts.

Throughput: IPC is amortized with :meth:`offer_batch` — one round-trip per
shard per chunk instead of one per post — and ``workers=1`` (or a
single-component world) short-circuits to an in-process engine with zero
IPC, so the batched 1-worker path is never slower than the serial engine.
"""

from __future__ import annotations

import multiprocessing
import weakref
from collections import defaultdict
from dataclasses import replace

from ..authors import AuthorGraph, ComponentCatalog
from ..core import Post, RunStats, Thresholds, make_diversifier
from ..errors import ConfigurationError, ParallelError
from ..multiuser.base import MultiUserDiversifier
from ..multiuser.routing import SubscriptionTable
from ..supervise import ShardSupervisor, SupervisionConfig, shutdown_workers
from .sharding import ShardPlan, component_cost, plan_shards
from .shm import ShmRing, encode_batch, shared_memory_available
from .worker import ShardSpec, shard_worker_main, supervision_protocol

# Historical alias: the hardened teardown (terminate → kill escalation,
# join verification) now lives in repro.supervise and is shared by every
# worker pool in the library.
_shutdown_workers = shutdown_workers


def _preferred_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    # fork is cheapest by far (no pickling of graph/spec, instant startup);
    # spawn is the portable fallback (Windows, macOS default).
    return "fork" if "fork" in methods else methods[0]


#: Default per-shard shared-memory ring size. A packed post row is 40
#: bytes plus 8 per component index, so 1 MiB holds far more than any
#: sane ``batch_size``; batches that still do not fit take the pipe.
DEFAULT_RING_CAPACITY = 1 << 20


def _unlink_rings(rings: list) -> None:
    """Finalizer target: destroy every ring the engine still owns. Holds
    the live list object, so split/merge churn stays covered."""
    for ring in rings:
        ring.close()
        ring.unlink()
    rings.clear()


class ParallelSharedMultiUser(MultiUserDiversifier):
    """Sharded S_* engine: shared components spread over worker processes.

    Args:
        algorithm: any single-user registry name (``unibin`` …
            ``indexed_unibin``).
        thresholds: shared diversity thresholds (sharing requires them to
            be uniform across users, exactly as for the serial S_*).
        graph: the author similarity graph.
        subscriptions: the user ⇄ author table.
        workers: shard/process count. Clamped to the number of distinct
            components; ``1`` runs fully in-process (no IPC, no worker
            processes) and is the fast serial path.
        batch_size: default chunk length for :meth:`run`'s internal
            batching; :meth:`offer_batch` always uses the chunk it is given.
        posts_per_author / retention: priors for the §4.4 cost estimates
            that drive shard bin-packing.
        start_method: multiprocessing start method; default prefers
            ``fork`` and falls back to the platform default.
        supervised: run the pool under a
            :class:`~repro.supervise.ShardSupervisor` — heartbeats,
            journalled crash recovery, and serial degradation of poison
            shards (see :mod:`repro.supervise`).
        supervision: supervisor tuning knobs; defaults to
            :class:`~repro.supervise.SupervisionConfig`'s.
        shard_deadline: unsupervised per-request reply deadline in
            seconds (``None`` waits forever, the pre-supervision
            behaviour); a breach raises :class:`~repro.errors.
            ParallelError` naming the shard and command. Supervised pools
            use ``supervision.deadline`` instead.
        fault_plans: shard index → :class:`~repro.resilience.
            WorkerFaultPlan`, injected into worker processes for chaos
            tests and the recovery benchmark.
        storage: a :class:`repro.storage.SpillConfig` making every
            shard's window bins tiered (in-memory head + disk spill
            segments). Verdict-neutral; the governor's rung-1 lever.
        autoscale: an :class:`~repro.parallel.AutoscalePolicy` enabling
            runtime shard split/merge on the supervisor's migration
            machinery. Requires ``supervised=True``; evaluated on the
            batch path, one topology change at a time. Quietly inert
            when the component count clamps the pool to one worker.
        transport: how post batches reach the shard workers. ``"shm"``
            packs each shard's slice into a per-shard shared-memory
            ring (:mod:`.shm`) and pipes only a tiny descriptor;
            ``"pipe"`` is the legacy fully-pickled path; ``"auto"``
            (default) picks ``shm`` whenever the platform supports it.
            Per-batch fallback to the pipe (unencodable fields,
            oversized batch) keeps outputs byte-identical either way.
        ring_capacity: bytes per shard ring under the shm transport.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        graph: AuthorGraph,
        subscriptions: SubscriptionTable,
        *,
        workers: int = 1,
        batch_size: int = 512,
        posts_per_author: float = 1.0,
        retention: float = 0.5,
        start_method: str | None = None,
        supervised: bool = False,
        supervision: SupervisionConfig | None = None,
        shard_deadline: float | None = 120.0,
        fault_plans=None,
        storage=None,
        autoscale=None,
        transport: str = "auto",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if shard_deadline is not None and shard_deadline <= 0:
            raise ConfigurationError(
                f"shard_deadline must be > 0 or None, got {shard_deadline}"
            )
        if transport not in ("auto", "shm", "pipe"):
            raise ConfigurationError(
                f"transport must be 'auto', 'shm' or 'pipe', got {transport!r}"
            )
        if ring_capacity < 1:
            raise ConfigurationError(
                f"ring_capacity must be >= 1, got {ring_capacity}"
            )
        if transport == "shm" and not shared_memory_available():
            raise ConfigurationError(
                "transport='shm' but multiprocessing.shared_memory is "
                "unavailable on this platform; use 'auto' or 'pipe'"
            )
        self.name = f"p_{algorithm}"
        self.algorithm = algorithm
        self.thresholds = thresholds
        self.subscriptions = subscriptions
        self.batch_size = batch_size
        self.catalog = ComponentCatalog(graph, subscriptions.as_dict())
        self._users_of: list[frozenset[int]] = [
            frozenset(users) for users in self.catalog.users_of
        ]
        self._components_of_author: dict[int, list[int]] = defaultdict(list)
        for idx, component in enumerate(self.catalog.components):
            for author in component:
                self._components_of_author[author].append(idx)

        distinct = self.catalog.distinct_count
        self.workers = max(1, min(workers, distinct)) if distinct else 1
        costs = [
            component_cost(
                algorithm,
                graph,
                component,
                posts_per_author=posts_per_author,
                retention=retention,
            )
            for component in self.catalog.components
        ]
        self._costs = costs
        self._storage = storage
        self.plan: ShardPlan = plan_shards(costs, self.workers)
        self._shard_of = self.plan.shard_of_component()
        self._closed = False
        self._finalizer = None
        self._supervisor: ShardSupervisor | None = None
        self._deadline = shard_deadline
        self.autoscaler = None
        self._ring_capacity = ring_capacity
        self._rings: dict[int, ShmRing] = {}
        #: The live list the ring finalizer holds; split/merge keep it
        #: current so GC-time cleanup always reaps what exists *now*.
        self._owned_rings: list[ShmRing] = []
        self._ring_finalizer = None
        if autoscale is not None and not supervised:
            raise ConfigurationError(
                "autoscale needs the supervisor's journalled migration "
                "machinery; construct the engine with supervised=True"
            )
        plans = dict(fault_plans) if fault_plans else {}

        if self.workers == 1:
            # In-process fast path: the exact serial engines, no IPC —
            # and therefore no transport at all.
            self.transport = "inline"
            self._engines: dict[int, object] | None = {
                idx: make_diversifier(
                    algorithm, thresholds, graph.subgraph(component), storage=storage
                )
                for idx, component in enumerate(self.catalog.components)
            }
            self._connections: list = []
            self._processes: list = []
            return

        self.transport = (
            "shm"
            if transport == "shm"
            or (transport == "auto" and shared_memory_available())
            else "pipe"
        )
        if self.transport == "shm":
            # Rings exist before the workers fork, so fork-started
            # children inherit the mappings outright; spawn-started (or
            # respawned) workers attach lazily by name instead.
            for shard in range(self.plan.shard_count):
                ring = ShmRing.create(ring_capacity)
                self._rings[shard] = ring
                self._owned_rings.append(ring)
            self._ring_finalizer = weakref.finalize(
                self, _unlink_rings, self._owned_rings
            )
        self._engines = None
        context = multiprocessing.get_context(
            start_method if start_method is not None else _preferred_start_method()
        )
        specs = [
            ShardSpec(
                algorithm=algorithm,
                thresholds=thresholds,
                graph=graph,
                components=tuple(
                    (idx, self.catalog.components[idx]) for idx in shard_indices
                ),
                faults=plans.get(shard),
                storage=storage,
            )
            for shard, shard_indices in enumerate(self.plan.assignments)
        ]
        self._connections = []
        self._processes = []
        if supervised:
            self._supervisor = ShardSupervisor(
                specs,
                context=context,
                protocol=supervision_protocol(),
                config=supervision,
                name=self.name,
            )
            if autoscale is not None:
                from .autoscale import ShardAutoscaler

                self.autoscaler = ShardAutoscaler(self, autoscale)
            return
        for spec in specs:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=shard_worker_main,
                args=(child_conn, spec),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._finalizer = weakref.finalize(
            self, shutdown_workers, list(self._processes), list(self._connections)
        )
        for shard, conn in enumerate(self._connections):
            self._receive(shard, conn, "ready")  # startup handshake

    # -- worker protocol ---------------------------------------------------

    def _receive(self, shard: int, conn, command: str = "?"):
        deadline = self._deadline
        try:
            if deadline is not None and not conn.poll(deadline):
                raise ParallelError(
                    f"{self.name} shard {shard} sent no reply to {command!r} "
                    f"within {deadline:.1f}s (worker hung; run with "
                    f"supervised=True to recover automatically)"
                )
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise ParallelError(
                f"{self.name} shard {shard} worker died awaiting reply to "
                f"{command!r} (pipe closed): {exc}"
            ) from exc
        if (
            not isinstance(reply, tuple)
            or len(reply) < 2
            or reply[0] not in ("ok", "error")
        ):
            raise ParallelError(
                f"{self.name} shard {shard} sent a corrupt reply to "
                f"{command!r}: {str(reply)[:80]!r}"
            )
        if reply[0] == "error":
            raise ParallelError(
                f"{self.name} shard {shard} worker {reply[1]}: {reply[2]}"
            )
        return reply[1]

    def _request_all(self, message):
        """Send ``message`` to every shard, then collect replies — sends
        complete before the first receive so shards work concurrently."""
        if self._closed:
            raise ParallelError(f"{self.name} engine already closed")
        if self._supervisor is not None:
            return self._supervisor.request_all(message)
        targets = range(len(self._connections))
        for shard in targets:
            self._connections[shard].send(message)
        return {
            shard: self._receive(shard, self._connections[shard], message[0])
            for shard in targets
        }

    # -- offers ------------------------------------------------------------

    def offer(self, post: Post) -> frozenset[int]:
        return self.offer_batch((post,))[0]

    def offer_batch(self, posts) -> list[frozenset[int]]:
        """One IPC round-trip per shard for a whole timestamp-ordered chunk."""
        posts = list(posts)
        components_of_author = self._components_of_author
        users_of = self._users_of
        if self._engines is not None:
            # In-process path — identical to the serial shared engine.
            engines = self._engines
            metrics = self._metrics
            out: list[frozenset[int]] = []
            for post in posts:
                components = components_of_author.get(post.author, ())
                receivers: set[int] = set()
                for idx in components:
                    if engines[idx].offer(post):
                        receivers.update(users_of[idx])
                result = frozenset(receivers)
                if metrics is not None:
                    metrics.record(len(components), result)
                out.append(result)
            return out

        shard_of = self._shard_of
        consulted: list[int] = []
        per_shard: dict[int, list[tuple[int, Post, list[int]]]] = defaultdict(list)
        for seq, post in enumerate(posts):
            components = components_of_author.get(post.author, ())
            consulted.append(len(components))
            by_shard: dict[int, list[int]] = {}
            for idx in components:
                by_shard.setdefault(shard_of[idx], []).append(idx)
            for shard, indices in by_shard.items():
                per_shard[shard].append((seq, post, indices))

        merged: list[set[int]] = [set() for _ in posts]
        if per_shard:
            replies = self._request_batches(per_shard)
            for reply in replies.values():
                for seq, admitted in reply:
                    receivers = merged[seq]
                    for idx in admitted:
                        receivers.update(users_of[idx])
        results = [frozenset(r) for r in merged]
        if self._metrics is not None:
            record = self._metrics.record
            for count, result in zip(consulted, results):
                record(count, result)
        if self.autoscaler is not None:
            self.autoscaler.observe(len(posts))
        return results

    def _encode_shard_batch(self, shard: int, items) -> tuple:
        """One shard's batch message: a shared-memory descriptor on the
        hot path, the legacy pickled form whenever the ring cannot carry
        this batch (no ring, unencodable post fields, oversized batch).
        Either framing decodes to identical items in the worker."""
        ring = self._rings.get(shard)
        if ring is None:
            return ("batch", items)
        encoded = encode_batch(items)
        if encoded is None:
            return ("batch", items)
        rows, idx_offsets, idx_values, texts = encoded
        offset = ring.write(rows, idx_offsets, idx_values)
        if offset is None:
            return ("batch", items)
        return ("shm_batch", ring.name, offset, len(rows), len(idx_values), texts)

    def _request_batches(self, per_shard):
        """Ship each shard its slice of the chunk; sends before receives."""
        if self._closed:
            raise ParallelError(f"{self.name} engine already closed")
        messages = {
            shard: self._encode_shard_batch(shard, items)
            for shard, items in per_shard.items()
        }
        if self._supervisor is not None:
            self._supervisor.maybe_heartbeat()
            return self._supervisor.request_many(messages)
        for shard, message in messages.items():
            self._connections[shard].send(message)
        return {
            shard: self._receive(shard, self._connections[shard], messages[shard][0])
            for shard in per_shard
        }

    def run(self, posts) -> dict[int, list[Post]]:
        """Consume a whole stream in ``batch_size`` chunks; return each
        user's diversified timeline (same shape as the serial engines)."""
        timelines: dict[int, list[Post]] = {}
        chunk: list[Post] = []
        batch_size = self.batch_size

        def drain(buffer: list[Post]) -> None:
            for post, receivers in zip(buffer, self.offer_batch(buffer)):
                for user in receivers:
                    timelines.setdefault(user, []).append(post)

        for post in posts:
            chunk.append(post)
            if len(chunk) >= batch_size:
                drain(chunk)
                chunk = []
        if chunk:
            drain(chunk)
        return timelines

    # -- accounting --------------------------------------------------------

    def shard_stats(self) -> list[RunStats]:
        """Merged RunStats per shard (the substrate of the per-shard
        metric labels and the live imbalance diagnostics).

        Positional by shard index: retired shards (merged away by the
        autoscaler) hold an empty :class:`RunStats` so bound per-shard
        gauges keep indexing safely across topology changes.
        """
        if self._engines is not None:
            total = RunStats()
            for engine in self._engines.values():
                total.merge(engine.stats)
            return [total]
        replies = self._request_all(("stats",))
        count = (
            self._supervisor.shard_count
            if self._supervisor is not None
            else max(replies, default=-1) + 1
        )
        out: list[RunStats] = []
        for shard in range(count):
            stats = RunStats()
            payload = replies.get(shard)
            if payload is not None:
                stats.load_state(payload)
            out.append(stats)
        return out

    def aggregate_stats(self) -> RunStats:
        total = RunStats()
        for stats in self.shard_stats():
            total.merge(stats)
        return total

    def instance_count(self) -> int:
        return self.catalog.distinct_count

    def shard_count(self) -> int:
        """Shards currently serving traffic. Equals the planned count
        until the autoscaler splits or merges shards at runtime."""
        if self._supervisor is not None:
            return self._supervisor.active_shard_count
        if self._engines is not None:
            return 1
        return self.plan.shard_count

    def shard_imbalance(self) -> float:
        """Planned cost imbalance ``(max − mean)/mean`` across shards."""
        return self.plan.imbalance()

    def sharing_ratio(self) -> float:
        """Fraction of per-user component work removed by deduplication."""
        return self.catalog.sharing_ratio()

    def stored_copies(self) -> int:
        if self._engines is not None:
            return sum(engine.stored_copies() for engine in self._engines.values())
        return sum(self._request_all(("stored",)).values())

    def purge(self, now: float) -> None:
        if self._engines is not None:
            for engine in self._engines.values():
                engine.purge(now)
            return
        self._request_all(("purge", now))

    # -- bounded-memory hooks (repro.resilience.governor) -------------------

    def spill(self) -> int:
        """Flush every shard's tiered bin heads to disk (governor rung 1);
        returns posts moved. Residency-only: no verdict-relevant state
        changes, so the command is deliberately not journalled."""
        if self._engines is not None:
            return sum(engine.spill() for engine in self._engines.values())
        return sum(self._request_all(("spill",)).values())

    def set_probe_limit(self, limit: int | None) -> None:
        """Cap (or uncap) candidates checked per bin scan in every shard
        (governor rung 2). Journalled under supervision — a capped scan
        changes verdicts, so recovery must replay it to stay exact."""
        if self._engines is not None:
            for engine in self._engines.values():
                engine.set_probe_limit(limit)
            return
        self._request_all(("probe_limit", limit))

    def memory_breakdown(self) -> dict[str, int]:
        """Accounted bytes by family summed across shards, plus the
        coordinator-side ``journal`` family under supervision."""
        totals: dict[str, int] = {}
        if self._engines is not None:
            replies: list[dict[str, int]] = [
                engine.memory_breakdown() for engine in self._engines.values()
            ]
        else:
            replies = list(self._request_all(("memory",)).values())
        for breakdown in replies:
            for family, used in breakdown.items():
                totals[family] = totals.get(family, 0) + used
        if self._supervisor is not None:
            totals["journal"] = self._supervisor.journal_bytes()
        return totals

    def memory_by_shard(self) -> dict[int, dict[str, int]]:
        """Per-shard accounted byte families (the autoscaler's hot/cold
        signal); the in-process engine reports one logical shard 0."""
        if self._engines is not None:
            totals: dict[str, int] = {}
            for engine in self._engines.values():
                for family, used in engine.memory_breakdown().items():
                    totals[family] = totals.get(family, 0) + used
            return {0: totals}
        return self._request_all(("memory",))

    def memory_bytes(self) -> int:
        return sum(self.memory_breakdown().values())

    def transport_bytes(self) -> int:
        """Fixed shared-memory footprint of the shm transport (ring
        capacity × live shards); 0 under ``pipe`` or in-process."""
        from ..storage.accounting import estimate_ring_bytes

        return estimate_ring_bytes(self._owned_rings)

    # -- live topology (shard autoscaling) ----------------------------------

    def _require_supervisor(self, operation: str) -> ShardSupervisor:
        if self._supervisor is None:
            raise ParallelError(
                f"{operation} needs the checkpoint/journal machinery: "
                "construct the engine with supervised=True (and >= 2 workers)"
            )
        return self._supervisor

    def components_of_shard(self, shard: int) -> tuple[int, ...]:
        """Catalog indices a shard currently owns (from its live spec)."""
        sup = self._require_supervisor("components_of_shard")
        return tuple(idx for idx, _ in sup.spec_of(shard).components)

    def shard_cost(self, shard: int) -> float:
        """Summed §4.4 component cost of a shard's current ownership."""
        return sum(self._costs[idx] for idx in self.components_of_shard(shard))

    def split_shard(self, shard: int) -> int:
        """Split one hot shard in two: move roughly half its estimated
        §4.4 cost onto a freshly spawned worker. Returns the new index.

        Crash-safe at every step: migrated state is installed through
        journalled ``load``/``drop`` commands, and the donor's spec is
        only updated after a rolling checkpoint reflects the post-drop
        state — so recovery at any instant replays to the byte-identical
        receiver sets of a fault-free run.
        """
        sup = self._require_supervisor("split_shard")
        if sup.is_retired(shard):
            raise ParallelError(f"{self.name} shard {shard} is retired")
        spec = sup.spec_of(shard)
        owned = list(spec.components)
        if len(owned) < 2:
            raise ParallelError(
                f"{self.name} shard {shard} owns {len(owned)} component(s); "
                "a component is the unit of independence and cannot split"
            )
        keep, move = self._partition_components(owned)
        states = dict(sup.request(shard, ("state",)))
        moved_state = [(idx, states[idx]) for idx, _ in move]
        if self.transport == "shm":
            # A fresh ring per shard: rings are single-writer/single-
            # reader under the one-batch-in-flight protocol, so the new
            # shard must never share the donor's. Created before the
            # worker spawns so a fork-started child inherits the mapping.
            new_ring = ShmRing.create(self._ring_capacity)
        new_index = sup.add_shard(replace(spec, components=tuple(move), faults=None))
        if self.transport == "shm":
            self._rings[new_index] = new_ring
            self._owned_rings.append(new_ring)
        sup.request(new_index, ("load", moved_state))
        sup.request(shard, ("drop", [idx for idx, _ in move]))
        sup.checkpoint_now(shard)
        sup.checkpoint_now(new_index)
        sup.update_spec(shard, replace(spec, components=tuple(keep)))
        for idx, _ in move:
            self._shard_of[idx] = new_index
        return new_index

    def merge_shards(self, target: int, source: int) -> None:
        """Merge ``source`` into ``target`` and retire ``source``: the
        autoscaler's scale-down path for cold topologies.

        The carried state travels in one journalled ``adopt`` (component
        index, node set, engine state) so a crash of the adopting worker
        replays to the identical merged state; the source is torn down
        only after the target's spec and checkpoint both cover it.
        """
        sup = self._require_supervisor("merge_shards")
        if target == source:
            raise ParallelError("cannot merge a shard into itself")
        for index in (target, source):
            if sup.is_retired(index):
                raise ParallelError(f"{self.name} shard {index} is retired")
        source_spec = sup.spec_of(source)
        nodes_of = dict(source_spec.components)
        adopted = [
            (idx, tuple(nodes_of[idx]), state)
            for idx, state in sup.request(source, ("state",))
        ]
        sup.request(target, ("adopt", adopted))
        sup.checkpoint_now(target)
        target_spec = sup.spec_of(target)
        sup.update_spec(
            target,
            replace(
                target_spec,
                components=target_spec.components + source_spec.components,
            ),
        )
        sup.retire_shard(source)
        source_ring = self._rings.pop(source, None)
        if source_ring is not None:
            # The retired shard's worker is gone; no descriptor into this
            # ring can be in flight or journalled (journals hold detached
            # payloads), so it can be destroyed immediately.
            self._owned_rings.remove(source_ring)
            source_ring.close()
            source_ring.unlink()
        for idx in nodes_of:
            self._shard_of[idx] = target

    def _partition_components(self, owned):
        """Two-way LPT split of ``owned`` ``(idx, nodes)`` pairs by §4.4
        cost: heaviest-first onto the lighter side, both sides non-empty."""
        costs = self._costs
        ordered = sorted(owned, key=lambda pair: costs[pair[0]], reverse=True)
        keep: list = []
        move: list = []
        keep_cost = move_cost = 0.0
        for pair in ordered:
            if keep_cost <= move_cost:
                keep.append(pair)
                keep_cost += costs[pair[0]]
            else:
                move.append(pair)
                move_cost += costs[pair[0]]
        if not move:  # degenerate costs (all zero): split by count
            half = max(1, len(ordered) // 2)
            keep, move = ordered[:-half], ordered[-half:]
        return keep, move

    def bind_metrics(self, registry, *, per_user: bool = False) -> None:
        """Attach observability: everything the serial multi-user bundle
        exports, plus shard-count/imbalance gauges and per-shard labels."""
        if registry is None or getattr(registry, "is_noop", False):
            self._metrics = None
            return
        from ..obs.instruments import ParallelInstruments

        self._metrics = ParallelInstruments(registry, self, per_user=per_user)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Same positional-component layout as the serial S_* engine, so
        serial and parallel checkpoints restore into each other."""
        if self._engines is not None:
            states = [self._engines[idx].state_dict() for idx in sorted(self._engines)]
        else:
            by_idx: dict[int, dict[str, object]] = {}
            for reply in self._request_all(("state",)).values():
                for idx, state in reply:
                    by_idx[idx] = state
            states = [by_idx[idx] for idx in sorted(by_idx)]
        return {
            "engine": self.name,
            "workers": self.workers,
            "components": states,
        }

    def load_state(self, state: dict[str, object]) -> None:
        from ..errors import CheckpointError

        components: list[dict[str, object]] = state["components"]  # type: ignore[assignment]
        if len(components) != self.catalog.distinct_count:
            raise CheckpointError(
                f"checkpoint has {len(components)} components; this engine "
                f"has {self.catalog.distinct_count} (graph/subscriptions mismatch)"
            )
        if self._engines is not None:
            for idx, instance_state in enumerate(components):
                self._engines[idx].load_state(instance_state)
            return
        per_shard: dict[int, list[tuple[int, dict[str, object]]]] = defaultdict(list)
        for idx, instance_state in enumerate(components):
            per_shard[self._shard_of[idx]].append((idx, instance_state))
        if self._supervisor is not None:
            # ``load`` mutates worker state, so it flows through the
            # supervisor and lands in the journal like any other write.
            self._supervisor.request_many(
                {shard: ("load", items) for shard, items in per_shard.items()}
            )
            return
        for shard, items in per_shard.items():
            self._connections[shard].send(("load", items))
        for shard in per_shard:
            self._receive(shard, self._connections[shard], "load")

    # -- supervision -------------------------------------------------------

    @property
    def supervisor(self) -> ShardSupervisor | None:
        """The live :class:`~repro.supervise.ShardSupervisor`, if any."""
        return self._supervisor

    def supervision_status(self) -> dict[str, object] | None:
        """Health summary from the supervisor (``None`` when unsupervised
        or running in-process) — the substrate of ``/healthz``."""
        if self._supervisor is None:
            return None
        return self._supervisor.status()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop worker processes and destroy the shared-memory rings;
        idempotent. The in-process (1-worker) engine has nothing to
        release."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.close()
        if self._finalizer is not None:
            self._finalizer()  # runs shutdown_workers exactly once
        if self._ring_finalizer is not None:
            self._ring_finalizer()  # unlinks every owned ring, once
        self._rings.clear()

    def __enter__(self) -> "ParallelSharedMultiUser":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
