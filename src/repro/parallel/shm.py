"""Binary post codec + shared-memory rings: the fast shard transport.

The original shard transport pickles ``[(seq, Post, [component idx …]),
…]`` tuples through a ``multiprocessing.Pipe`` — one reduce call per
Post object, per shard, per chunk. That interpreter work is what kept
the sharded pool slower than serial (``BENCH_parallel.json``'s 0.35×).
Posts are fixed-shape, so this module packs each shard's slice of a
chunk into one numpy structured array (:data:`ROW_DTYPE`: seq, post id,
author id, timestamp, 64-bit simhash) plus a flattened component-index
array, writes the bytes into a per-shard shared-memory ring, and sends
only a tiny descriptor over the pipe::

    ("shm_batch", ring_name, offset, nrows, nidx, texts)

Variable-length fields stay on the slow path: post *texts* ride along in
the descriptor (a list of str pickles far cheaper than the Post objects
they came from), and batches whose fields do not fit the fixed-width
columns — a fingerprint outside ``uint64``, an id outside ``int64``, a
timestamp that is not exactly a ``float`` — fall back to the legacy
pickled ``batch`` command wholesale, so decoded posts always round-trip
**identically** (same types, same checkpoint JSON) to what the serial
engine saw.

Ring safety: the shard protocol is strict request→reply alternation, so
at most one batch per ring is ever in flight; a write advances the ring
offset (8-byte aligned, wrapping to 0 when the tail is short) and can
never clobber an unread region. Oversized batches return ``None`` from
:meth:`ShmRing.write` and take the pipe.

Journal hazard: a ``shm_batch`` descriptor is only valid while its ring
region is; the supervisor's journal must therefore store the *detached*
form (:func:`detach_shm_batch` → ``("shm_batch_payload", blob, nrows,
nidx, texts)``), captured at commit time while the region is still live.
Replay and in-parent degraded dispatch decode the payload through the
exact same :func:`unpack_batch` code as the worker's hot path.

Lifecycle: rings are created (and eventually unlinked) by the
coordinator; workers and the in-parent fallback attach lazily by name
through the process-local :data:`_RINGS` registry. Attach-side handles
are unregistered from the ``resource_tracker`` so a worker exit never
unlinks a segment the parent still owns; worker processes close their
attachments on every exit path, and the parent unlinks on ``close()`` or
garbage collection — ``tests/supervise/test_shm_leaks.py`` asserts
``/dev/shm`` holds no ``repro_ring_*`` entry after any recovery
scenario.
"""

from __future__ import annotations

import uuid

import numpy as np

from ..core import Post

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "RING_PREFIX",
    "ROW_DTYPE",
    "ShmRing",
    "attach_ring",
    "batch_nbytes",
    "close_attached_rings",
    "detach_shm_batch",
    "encode_batch",
    "shared_memory_available",
    "unpack_batch",
]

#: Shared-memory segment name prefix — what the /dev/shm leak check greps.
RING_PREFIX = "repro_ring_"

#: One post of a shard batch, fixed-width and little-endian: the chunk
#: sequence number, the three integer ids, the float timestamp and the
#: uint64 simhash fingerprint. 40 bytes/row.
ROW_DTYPE = np.dtype(
    [
        ("seq", "<i8"),
        ("post_id", "<i8"),
        ("author", "<i8"),
        ("timestamp", "<f8"),
        ("fingerprint", "<u8"),
    ]
)

_OFFSETS_DTYPE = np.dtype("<i8")
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1
_U64_MAX = 2**64 - 1

#: Process-local ring registry: name → ShmRing. Holds rings this process
#: created (coordinator) and rings it attached to (workers, or a forked
#: child inheriting the parent's mapping outright).
_RINGS: dict[str, "ShmRing"] = {}


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable here."""
    return shared_memory is not None


def _row_encodable(post: Post) -> bool:
    # ``type(...) is`` on purpose: bool is an int subclass and an int
    # timestamp would decode as float — either would silently change the
    # checkpoint JSON a restored engine emits. Such posts (and anything
    # out of fixed-width range) keep the pickled slow path.
    return (
        type(post.post_id) is int
        and _I64_MIN <= post.post_id <= _I64_MAX
        and type(post.author) is int
        and _I64_MIN <= post.author <= _I64_MAX
        and type(post.timestamp) is float
        and type(post.fingerprint) is int
        and 0 <= post.fingerprint <= _U64_MAX
        and type(post.text) is str
    )


def encode_batch(items):
    """Pack ``[(seq, post, [idx …]), …]`` into columnar arrays.

    Returns ``(rows, idx_offsets, idx_values, texts)`` or ``None`` when
    any post's fields cannot round-trip through the fixed-width columns
    (the caller then sends the legacy pickled form).
    """
    n = len(items)
    rows = np.empty(n, dtype=ROW_DTYPE)
    idx_offsets = np.empty(n + 1, dtype=_OFFSETS_DTYPE)
    idx_offsets[0] = 0
    texts: list[str] = []
    flat: list[int] = []
    for i, (seq, post, indices) in enumerate(items):
        if not _row_encodable(post):
            return None
        rows[i] = (seq, post.post_id, post.author, post.timestamp, post.fingerprint)
        texts.append(post.text)
        flat.extend(indices)
        idx_offsets[i + 1] = len(flat)
    idx_values = np.asarray(flat, dtype=_OFFSETS_DTYPE)
    return rows, idx_offsets, idx_values, texts


def batch_nbytes(nrows: int, nidx: int) -> int:
    """Ring bytes of a packed batch: rows, then offsets, then indices."""
    return (
        nrows * ROW_DTYPE.itemsize
        + (nrows + 1) * _OFFSETS_DTYPE.itemsize
        + nidx * _OFFSETS_DTYPE.itemsize
    )


def unpack_batch(buffer, nrows: int, nidx: int, texts) -> list:
    """Decode a packed region back into ``[(seq, post, [idx …]), …]``.

    ``buffer`` is any buffer of at least :func:`batch_nbytes` bytes — a
    zero-copy view into a ring (worker hot path) or a detached journal
    blob (replay, degraded mode). Both decode through this one function,
    so every consumer sees identical posts.
    """
    rows = np.frombuffer(buffer, dtype=ROW_DTYPE, count=nrows)
    cursor = nrows * ROW_DTYPE.itemsize
    idx_offsets = np.frombuffer(
        buffer, dtype=_OFFSETS_DTYPE, count=nrows + 1, offset=cursor
    )
    cursor += (nrows + 1) * _OFFSETS_DTYPE.itemsize
    idx_values = np.frombuffer(buffer, dtype=_OFFSETS_DTYPE, count=nidx, offset=cursor)
    bounds = idx_offsets.tolist()
    flat = idx_values.tolist()
    items = []
    # ``.tolist()`` materialises native Python scalars (int/float), so the
    # reconstructed Post fields are type-identical to the originals.
    for i, (seq, post_id, author, timestamp, fingerprint) in enumerate(rows.tolist()):
        post = Post(
            post_id=post_id,
            author=author,
            text=texts[i],
            timestamp=timestamp,
            fingerprint=fingerprint,
        )
        items.append((seq, post, flat[bounds[i] : bounds[i + 1]]))
    return items


class ShmRing:
    """One shard's shared-memory ring of packed batches.

    Created (owned) by the coordinator, attached (borrowed) by workers.
    The strict one-batch-in-flight protocol makes the write side trivial:
    advance an 8-byte-aligned offset, wrap to 0 when the tail cannot hold
    the batch, refuse (→ pipe fallback) when the whole ring cannot.
    """

    __slots__ = ("_shm", "name", "capacity", "_offset", "_owner")

    def __init__(self, shm, *, owner: bool):
        self._shm = shm
        self.name = shm.name
        self.capacity = shm.size
        self._offset = 0
        self._owner = owner

    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        """Allocate a fresh ring and register it process-locally."""
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        segment = shared_memory.SharedMemory(
            create=True,
            size=capacity,
            name=f"{RING_PREFIX}{uuid.uuid4().hex[:16]}",
        )
        ring = cls(segment, owner=True)
        _RINGS[ring.name] = ring
        return ring

    def write(self, *arrays) -> int | None:
        """Copy ``arrays`` contiguously into the ring; return the start
        offset, or ``None`` when the batch exceeds the ring capacity."""
        nbytes = sum(int(a.nbytes) for a in arrays)
        if nbytes > self.capacity:
            return None
        offset = self._offset
        if offset + nbytes > self.capacity:
            offset = 0
        buf = self._shm.buf
        cursor = offset
        for array in arrays:
            raw = array.tobytes()
            buf[cursor : cursor + len(raw)] = raw
            cursor += len(raw)
        # Keep every batch 8-byte aligned so np.frombuffer views on the
        # reader side are aligned too (row and index dtypes are 8-byte
        # multiples; only the cursor needs rounding).
        self._offset = (cursor + 7) & ~7
        return offset

    def read(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy view of ``nbytes`` starting at ``offset``."""
        return self._shm.buf[offset : offset + nbytes]

    def close(self) -> None:
        """Release this process's mapping (workers: every exit path)."""
        _RINGS.pop(self.name, None)
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only); idempotent."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


def attach_ring(name: str) -> ShmRing:
    """The process-local handle for ring ``name``, attaching on first use.

    Freshly-attached segments are unregistered from the resource tracker:
    the coordinator owns the segment's lifetime, and letting a worker's
    tracker unlink it on worker exit would tear the transport out from
    under the survivors (Python 3.11's ``SharedMemory`` has no ``track=``
    parameter yet, hence the explicit unregister).
    """
    ring = _RINGS.get(name)
    if ring is None:
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        segment = shared_memory.SharedMemory(name=name)
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        ring = ShmRing(segment, owner=False)
        _RINGS[name] = ring
    return ring


def close_attached_rings() -> None:
    """Close every *borrowed* ring mapping in this process (worker
    teardown); owned rings are left for their coordinator to unlink."""
    for ring in [r for r in _RINGS.values() if not r._owner]:
        ring.close()


def detach_shm_batch(message: tuple) -> tuple:
    """Journal form of a batch command: self-contained bytes.

    A ``shm_batch`` descriptor dangles once its ring region is reused, so
    the supervisor journals ``("shm_batch_payload", blob, nrows, nidx,
    texts)`` instead — copied here at commit time, while the one-in-flight
    invariant still guarantees the region is intact. Other messages pass
    through unchanged.
    """
    if message[0] != "shm_batch":
        return message
    _, name, offset, nrows, nidx, texts = message
    ring = attach_ring(name)
    blob = bytes(ring.read(offset, batch_nbytes(nrows, nidx)))
    return ("shm_batch_payload", blob, nrows, nidx, texts)
