"""Exception hierarchy for the firehose reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or threshold was supplied."""


class UnknownAlgorithmError(ConfigurationError):
    """A diversifier name not present in the registry was requested."""


class GraphError(ReproError):
    """An author graph operation received inconsistent input."""


class UnknownAuthorError(GraphError):
    """A post referenced an author that is not part of the graph/universe."""


class StreamOrderError(ReproError):
    """Posts were offered to a streaming algorithm out of timestamp order."""


class DatasetError(ReproError):
    """A synthetic dataset could not be built from the given parameters."""


class CheckpointError(ReproError):
    """An engine snapshot could not be taken or restored (wrong algorithm,
    mismatched graph/cover, malformed or incompatible checkpoint file)."""


class ParallelError(ReproError):
    """The sharded execution layer failed: a worker process died, reported
    an exception, or the pool was used after :meth:`close`."""


class JournalOverflowError(ReproError):
    """A write-ahead journal was appended past its depth bound — the
    checkpoint cadence that should have truncated it did not run (a
    supervisor bug, surfaced loudly rather than growing without bound)."""


class MemoryBudgetError(ConfigurationError):
    """The memory governor was configured with an unusable budget."""


class ExperimentError(ReproError):
    """The experiment harness was misconfigured or a matrix could not run
    (unknown matrix name, malformed grid config, unusable trajectory)."""


class UnknownScenarioError(ExperimentError):
    """A workload scenario name not present in the registry was requested."""


class TrajectoryRegressionError(ExperimentError):
    """A trajectory-store regression check failed: a gated metric moved
    past its tolerance vs the last committed entry. The message names the
    metric, both values and the tolerance that was exceeded."""


class FeedError(ReproError):
    """The feed service refused a request (base for read/write failures)."""


class UnknownUserError(FeedError):
    """A feed read or impression referenced a user with no subscription
    entry — there is no mailbox to serve, so the request is a 404, not an
    empty page."""


class FeedOverloadError(FeedError):
    """Ingestion was shed by the overload controller. Carries the backlog
    the controller saw so the HTTP front end can answer 429 with an
    honest ``Retry-After``."""

    def __init__(self, message: str, *, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after
