"""Service layer: latency instrumentation and real-time capacity.

The paper's engineering claim is *real-time* diversification — an instant
decision per arriving post, at firehose rates. This package measures it:

* :class:`DiversificationService` — wraps any engine, timing every
  decision (reservoir-sampled percentiles) with periodic window GC.
* :func:`simulate_queueing` / :class:`QueueingReport` — single-server
  FIFO replay of a recorded stream against measured service times, at a
  configurable real-time speedup.
* :func:`capacity_sweep` — per-algorithm latency/throughput/sustainable-
  speedup comparison.
* :class:`MetricsServer` — stdlib HTTP endpoint exposing a
  :class:`repro.obs.Registry` as Prometheus text (``/metrics``) and JSON
  (``/metrics.json``).
"""

from ..resilience import OverloadController
from .latency import (
    LatencyRecorder,
    QueueingReport,
    SheddingReport,
    simulate_queueing,
)
from .server import DiversificationService, MetricsServer, capacity_sweep

__all__ = [
    "DiversificationService",
    "LatencyRecorder",
    "MetricsServer",
    "OverloadController",
    "QueueingReport",
    "SheddingReport",
    "capacity_sweep",
    "simulate_queueing",
]
