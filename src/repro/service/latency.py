"""Latency accounting for the diversification service.

Per-post decision times are collected into a bounded reservoir so
percentile reporting stays O(1) in memory on unbounded streams, with exact
mean/max tracked separately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class LatencyRecorder:
    """Reservoir-sampled latency distribution (seconds).

    Exact count/mean/max over everything observed; percentiles estimated
    from a uniform reservoir of ``capacity`` samples.
    """

    def __init__(self, capacity: int = 4096, *, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict[str, float]:
        """Reporting dict with the usual percentiles (microseconds)."""
        scale = 1e6
        return {
            "decisions": self.count,
            "mean_us": round(self.mean * scale, 2),
            "p50_us": round(self.percentile(50) * scale, 2),
            "p95_us": round(self.percentile(95) * scale, 2),
            "p99_us": round(self.percentile(99) * scale, 2),
            "max_us": round(self.max * scale, 2),
        }


@dataclass(frozen=True, slots=True)
class QueueingReport:
    """Single-server queueing outcome of a replay (seconds).

    ``sustainable`` means the server kept up: the backlog at the end of
    the stream is zero and delays stayed bounded by the service bursts,
    not by systematic overload.
    """

    speedup: float
    posts: int
    busy_time: float
    stream_span: float
    max_delay: float
    mean_delay: float
    final_backlog_delay: float

    @property
    def utilisation(self) -> float:
        """Busy time over (compressed) stream span; >1 ⇒ overloaded."""
        if self.stream_span <= 0:
            return 0.0
        return self.busy_time / self.stream_span

    @property
    def sustainable(self) -> bool:
        return self.utilisation < 1.0

    def as_row(self) -> dict[str, float | int | bool]:
        return {
            "speedup": self.speedup,
            "posts": self.posts,
            "utilisation": round(self.utilisation, 4),
            "sustainable": self.sustainable,
            "mean_delay_ms": round(self.mean_delay * 1e3, 3),
            "max_delay_ms": round(self.max_delay * 1e3, 3),
            "final_backlog_ms": round(self.final_backlog_delay * 1e3, 3),
        }


@dataclass(frozen=True, slots=True)
class SheddingReport:
    """Outcome of an overload-controlled replay (seconds).

    Unlike :class:`QueueingReport` — which measures what *would* happen to
    an engine processing everything — this reports what the service
    actually did under its backlog budget: how many posts it diversified,
    how many it shed (dropped or passed through undiversified) and how the
    backlog behaved with the control loop active.
    """

    speedup: float
    posts: int
    processed: int
    shed_dropped: int
    shed_passthrough: int
    shed_episodes: int
    busy_time: float
    stream_span: float
    max_delay: float
    mean_delay: float
    final_backlog_delay: float

    @property
    def shed_total(self) -> int:
        return self.shed_dropped + self.shed_passthrough

    @property
    def shed_fraction(self) -> float:
        return self.shed_total / self.posts if self.posts else 0.0

    @property
    def utilisation(self) -> float:
        if self.stream_span <= 0:
            return 0.0
        return self.busy_time / self.stream_span

    def as_row(self) -> dict[str, float | int]:
        return {
            "speedup": self.speedup,
            "posts": self.posts,
            "processed": self.processed,
            "shed_dropped": self.shed_dropped,
            "shed_passthrough": self.shed_passthrough,
            "shed_episodes": self.shed_episodes,
            "shed_pct": round(100 * self.shed_fraction, 2),
            "utilisation": round(self.utilisation, 4),
            "mean_delay_ms": round(self.mean_delay * 1e3, 3),
            "max_delay_ms": round(self.max_delay * 1e3, 3),
            "final_backlog_ms": round(self.final_backlog_delay * 1e3, 3),
        }


def simulate_queueing(
    arrivals: list[float], service_times: list[float], *, speedup: float = 1.0
) -> QueueingReport:
    """Single-server FIFO queue: post i arrives at ``arrivals[i]/speedup``
    and needs ``service_times[i]`` seconds of processing.

    ``speedup`` compresses the stream's wall clock — replaying a day of
    posts at speedup 86400 asks whether the engine could absorb the whole
    day in one second. Returns delay statistics; a ``sustainable`` report
    means the engine keeps up at that rate.
    """
    if len(arrivals) != len(service_times):
        raise ValueError("arrivals and service_times must align")
    if speedup <= 0:
        raise ValueError(f"speedup must be positive, got {speedup}")
    if not arrivals:
        return QueueingReport(
            speedup=speedup,
            posts=0,
            busy_time=0.0,
            stream_span=0.0,
            max_delay=0.0,
            mean_delay=0.0,
            final_backlog_delay=0.0,
        )
    start = arrivals[0] / speedup
    server_free = start
    total_delay = 0.0
    max_delay = 0.0
    for arrival_raw, service in zip(arrivals, service_times):
        arrival = arrival_raw / speedup
        begin = max(arrival, server_free)
        server_free = begin + service
        delay = server_free - arrival
        total_delay += delay
        if delay > max_delay:
            max_delay = delay
    stream_span = arrivals[-1] / speedup - start
    return QueueingReport(
        speedup=speedup,
        posts=len(arrivals),
        busy_time=sum(service_times),
        stream_span=stream_span,
        max_delay=max_delay,
        mean_delay=total_delay / len(arrivals),
        final_backlog_delay=max(0.0, server_free - arrivals[-1] / speedup),
    )
