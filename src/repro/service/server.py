"""The diversification service: per-post latency and capacity measurement.

The paper claims "scalable real-time stream processing" — the decision for
each arriving post must be instant, and the engine must keep up with the
firehose. This module measures both for any single-user algorithm or
M-SPSD engine:

* :class:`DiversificationService` wraps an engine, times every ``offer``
  and records the latency distribution;
* :meth:`DiversificationService.replay` feeds a recorded stream through
  the engine and runs a single-server queueing simulation over the
  measured service times at a chosen real-time ``speedup``, answering
  "could this engine absorb this stream K× faster than real time?";
* :func:`capacity_sweep` finds each algorithm's sustainable speedup.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from ..core import Post, StreamDiversifier
from ..errors import ConfigurationError
from ..multiuser import MultiUserDiversifier
from ..resilience import OverloadController
from .latency import (
    LatencyRecorder,
    QueueingReport,
    SheddingReport,
    simulate_queueing,
)


class DiversificationService:
    """Latency-instrumented wrapper around a diversification engine.

    When an :class:`OverloadController` is attached, :meth:`replay` runs
    the queueing simulation *online* and sheds posts whenever the virtual
    backlog exceeds the controller's budget — the replay then reports
    exact shed counts instead of pretending infinite capacity.
    """

    def __init__(
        self,
        engine: StreamDiversifier | MultiUserDiversifier,
        *,
        purge_every: int = 2000,
        overload: OverloadController | None = None,
    ):
        if purge_every < 1:
            raise ConfigurationError(f"purge_every must be >= 1, got {purge_every}")
        self.engine = engine
        self.latency = LatencyRecorder()
        self.overload = overload
        self._purge_every = purge_every
        self._since_purge = 0
        self._service_times: list[float] = []
        self._arrivals: list[float] = []

    @property
    def is_multiuser(self) -> bool:
        return isinstance(self.engine, MultiUserDiversifier)

    def ingest(self, post: Post):
        """Process one post, timing the decision. Returns the engine's
        verdict (bool for single-user, receiver set for multi-user)."""
        start = time.perf_counter()
        verdict = self.engine.offer(post)
        elapsed = time.perf_counter() - start
        self.latency.record(elapsed)
        self._arrivals.append(post.timestamp)
        self._service_times.append(elapsed)
        self._since_purge += 1
        if self._since_purge >= self._purge_every:
            self.engine.purge(post.timestamp)
            self._since_purge = 0
        return verdict

    def replay(
        self, posts: Iterable[Post], *, speedups: tuple[float, ...] = (1.0,)
    ) -> list[QueueingReport | SheddingReport]:
        """Feed ``posts`` through the engine and evaluate against the
        stream's arrival process at each ``speedup`` (1.0 = real time).

        Without an overload controller every post is processed and the
        queueing simulation runs offline over the measured service times.
        With one, the simulation runs *online* at a single speedup: the
        controller watches the virtual backlog and sheds arriving posts
        past its budget, and the returned :class:`SheddingReport` carries
        the exact shed accounting.
        """
        if self.overload is not None:
            if len(speedups) != 1:
                raise ConfigurationError(
                    "overload-controlled replay processes the stream once "
                    "and therefore supports exactly one speedup; got "
                    f"{speedups!r}"
                )
            return [self._replay_shedding(posts, speedup=speedups[0])]
        for post in posts:
            self.ingest(post)
        return [
            simulate_queueing(self._arrivals, self._service_times, speedup=s)
            for s in speedups
        ]

    def _replay_shedding(
        self, posts: Iterable[Post], *, speedup: float
    ) -> SheddingReport:
        """Online single-server replay with backlog-triggered shedding."""
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be positive, got {speedup}")
        controller = self.overload
        assert controller is not None
        first_arrival: float | None = None
        arrival = 0.0
        server_free = 0.0
        total = 0
        total_delay = 0.0
        max_delay = 0.0
        for post in posts:
            total += 1
            arrival = post.timestamp / speedup
            if first_arrival is None:
                first_arrival = arrival
                server_free = arrival
            backlog = max(0.0, server_free - arrival)
            if controller.should_shed(backlog):
                controller.record_shed()
                continue
            start = time.perf_counter()
            self.ingest(post)
            elapsed = time.perf_counter() - start
            controller.record_processed()
            begin = max(arrival, server_free)
            server_free = begin + elapsed
            delay = server_free - arrival
            total_delay += delay
            if delay > max_delay:
                max_delay = delay
        processed = controller.counters.processed
        return SheddingReport(
            speedup=speedup,
            posts=total,
            processed=processed,
            shed_dropped=controller.counters.shed_dropped,
            shed_passthrough=controller.counters.shed_passthrough,
            shed_episodes=controller.counters.episodes,
            busy_time=sum(self._service_times),
            stream_span=(arrival - first_arrival) if first_arrival is not None else 0.0,
            max_delay=max_delay,
            mean_delay=total_delay / processed if processed else 0.0,
            final_backlog_delay=max(0.0, server_free - arrival),
        )

    def sustainable_speedup(self) -> float:
        """Largest stream compression the engine keeps up with, estimated
        from total busy time vs stream span (utilisation = 1 boundary)."""
        if not self._arrivals or len(self._arrivals) < 2:
            return float("inf")
        span = self._arrivals[-1] - self._arrivals[0]
        busy = sum(self._service_times)
        if busy <= 0:
            return float("inf")
        return span / busy

    def throughput_posts_per_second(self) -> float:
        """Pure processing throughput (ignoring arrival pacing)."""
        if self.latency.mean <= 0:
            return float("inf")
        return 1.0 / self.latency.mean


def capacity_sweep(
    make_engine,
    posts: list[Post],
    *,
    algorithms: tuple[str, ...],
) -> list[dict[str, object]]:
    """Measure latency and sustainable speedup for several algorithms.

    ``make_engine(name)`` constructs a fresh engine per algorithm name;
    one row per algorithm is returned with the latency snapshot, raw
    throughput, and the sustainable real-time speedup.
    """
    rows: list[dict[str, object]] = []
    for name in algorithms:
        service = DiversificationService(make_engine(name))
        for post in posts:
            service.ingest(post)
        row: dict[str, object] = {"algorithm": name}
        row.update(service.latency.snapshot())
        row["throughput_posts_s"] = round(service.throughput_posts_per_second(), 0)
        row["sustainable_speedup"] = round(service.sustainable_speedup(), 0)
        rows.append(row)
    return rows
