"""The diversification service: per-post latency and capacity measurement.

The paper claims "scalable real-time stream processing" — the decision for
each arriving post must be instant, and the engine must keep up with the
firehose. This module measures both for any single-user algorithm or
M-SPSD engine:

* :class:`DiversificationService` wraps an engine, times every ``offer``
  and records the latency distribution;
* :meth:`DiversificationService.replay` feeds a recorded stream through
  the engine and runs a single-server queueing simulation over the
  measured service times at a chosen real-time ``speedup``, answering
  "could this engine absorb this stream K× faster than real time?";
* :func:`capacity_sweep` finds each algorithm's sustainable speedup.

A live service is also *scrapable*: construct it with a
:class:`repro.obs.Registry` (or call :meth:`DiversificationService.
serve_metrics`, which makes one) and :class:`MetricsServer` exposes the
registry over HTTP — Prometheus text at ``/metrics``, a JSON snapshot at
``/metrics.json`` — from a daemon thread, with no extra dependencies.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable, Iterable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..core import Post, StreamDiversifier
from ..errors import ConfigurationError
from ..multiuser import MultiUserDiversifier
from ..obs import Registry, render_prometheus, snapshot
from ..obs.instruments import ServiceInstruments
from ..resilience import OverloadController
from .latency import (
    LatencyRecorder,
    QueueingReport,
    SheddingReport,
    simulate_queueing,
)


class DiversificationService:
    """Latency-instrumented wrapper around a diversification engine.

    When an :class:`OverloadController` is attached, :meth:`replay` runs
    the queueing simulation *online* and sheds posts whenever the virtual
    backlog exceeds the controller's budget — the replay then reports
    exact shed counts instead of pretending infinite capacity.
    """

    def __init__(
        self,
        engine: StreamDiversifier | MultiUserDiversifier,
        *,
        purge_every: int = 2000,
        overload: OverloadController | None = None,
        governor=None,
        registry: Registry | None = None,
        tracer=None,
    ):
        if purge_every < 1:
            raise ConfigurationError(f"purge_every must be >= 1, got {purge_every}")
        self.engine = engine
        self.latency = LatencyRecorder()
        self.overload = overload
        #: Optional :class:`repro.resilience.MemoryGovernor`; ticked from
        #: the ingest path (and while shedding, so memory pressure can
        #: release once purges drain the windows).
        self.governor = governor
        self._purge_every = purge_every
        self._since_purge = 0
        self._service_times: list[float] = []
        self._arrivals: list[float] = []
        self.registry: Registry | None = None
        if registry is not None or tracer is not None:
            self.bind_metrics(registry, tracer=tracer)

    @property
    def is_multiuser(self) -> bool:
        return isinstance(self.engine, MultiUserDiversifier)

    def bind_metrics(self, registry: Registry | None, *, tracer=None) -> None:
        """Bind the engine and the service's own gauges to ``registry``
        (created on demand when ``None`` but a tracer is given)."""
        if registry is None and tracer is not None:
            registry = Registry()
        if isinstance(self.engine, MultiUserDiversifier):
            self.engine.bind_metrics(registry)
        else:
            self.engine.bind_metrics(registry, tracer=tracer)
        if registry is not None and not registry.is_noop:
            ServiceInstruments(registry, self)
            if self.governor is not None:
                from ..obs.instruments import MemoryInstruments

                MemoryInstruments(registry, self.governor)
            self.registry = registry

    def serve_metrics(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> "MetricsServer":
        """Start a daemon-thread HTTP endpoint exposing this service's
        registry (binding one first if the service has none). ``port=0``
        picks a free port; read it off the returned server's ``address``.

        Supervised engines feed ``/healthz``: the probe degrades (while
        staying 200 — the service still answers, exactly) once any shard
        has been quarantined into in-parent serial execution."""
        if self.registry is None:
            self.bind_metrics(Registry())
        assert self.registry is not None
        server = MetricsServer(
            self.registry,
            host=host,
            port=port,
            health=self._health_probe,
            health_json=self.degradation_report,
        )
        server.start()
        return server

    def degradation_report(self) -> dict[str, object]:
        """The single structured health report behind ``/healthz``.

        Composes every degradation the stack can enter — quarantined
        shards (supervision), the memory governor's ladder rung, and
        active load shedding — into one JSON-able dict:

        ``status``
            ``"ok"`` or ``"degraded"``.
        ``reasons``
            one human-readable string per active degradation (empty when
            healthy); ``/healthz`` renders these joined with ``"; "``.
        ``shards`` / ``memory`` / ``shedding``
            the underlying structured sections, present whenever the
            corresponding subsystem is attached (degraded or not).
        """
        reasons: list[str] = []
        report: dict[str, object] = {"status": "ok", "reasons": reasons}
        status_of = getattr(self.engine, "supervision_status", None)
        status = status_of() if callable(status_of) else None
        if status is not None:
            report["shards"] = status
            if status.get("degraded_shards"):
                shards = sorted(status["degraded_shards"])
                reasons.append(
                    f"shards {shards} quarantined, running serial in-parent"
                )
        if self.governor is not None:
            memory = self.governor.status()
            report["memory"] = memory
            if self.governor.degraded:
                reasons.append(
                    "memory governor at {level} "
                    "({total_bytes} of {budget_bytes} budget bytes)".format(**memory)
                )
        if self.overload is not None:
            shedding = self.overload.snapshot()
            report["shedding"] = shedding
            if self.overload.shedding:
                cause = (
                    "memory pressure"
                    if self.overload.memory_pressure
                    else "backlog over budget"
                )
                reasons.append(
                    f"shedding arrivals ({cause}, policy {self.overload.policy})"
                )
        autoscaler = getattr(self.engine, "autoscaler", None)
        if autoscaler is not None:
            report["autoscale"] = autoscaler.status()
        if reasons:
            report["status"] = "degraded"
        return report

    def _health_probe(self) -> str:
        """``/healthz`` body: ``ok`` or ``degraded: <reason>; <reason>``."""
        report = self.degradation_report()
        if report["status"] == "ok":
            return "ok\n"
        return "degraded: " + "; ".join(report["reasons"]) + "\n"

    def ingest(self, post: Post):
        """Process one post, timing the decision. Returns the engine's
        verdict (bool for single-user, receiver set for multi-user)."""
        start = time.perf_counter()
        verdict = self.engine.offer(post)
        elapsed = time.perf_counter() - start
        self.latency.record(elapsed)
        self._arrivals.append(post.timestamp)
        self._service_times.append(elapsed)
        self._since_purge += 1
        if self._since_purge >= self._purge_every:
            self.engine.purge(post.timestamp)
            self._since_purge = 0
        if self.governor is not None:
            self.governor.observe()
        return verdict

    def replay(
        self, posts: Iterable[Post], *, speedups: tuple[float, ...] = (1.0,)
    ) -> list[QueueingReport | SheddingReport]:
        """Feed ``posts`` through the engine and evaluate against the
        stream's arrival process at each ``speedup`` (1.0 = real time).

        Without an overload controller every post is processed and the
        queueing simulation runs offline over the measured service times.
        With one, the simulation runs *online* at a single speedup: the
        controller watches the virtual backlog and sheds arriving posts
        past its budget, and the returned :class:`SheddingReport` carries
        the exact shed accounting.
        """
        if self.overload is not None:
            if len(speedups) != 1:
                raise ConfigurationError(
                    "overload-controlled replay processes the stream once "
                    "and therefore supports exactly one speedup; got "
                    f"{speedups!r}"
                )
            return [self._replay_shedding(posts, speedup=speedups[0])]
        for post in posts:
            self.ingest(post)
        return [
            simulate_queueing(self._arrivals, self._service_times, speedup=s)
            for s in speedups
        ]

    def _replay_shedding(
        self, posts: Iterable[Post], *, speedup: float
    ) -> SheddingReport:
        """Online single-server replay with backlog-triggered shedding."""
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be positive, got {speedup}")
        controller = self.overload
        assert controller is not None
        first_arrival: float | None = None
        arrival = 0.0
        server_free = 0.0
        total = 0
        total_delay = 0.0
        max_delay = 0.0
        for post in posts:
            total += 1
            arrival = post.timestamp / speedup
            if first_arrival is None:
                first_arrival = arrival
                server_free = arrival
            backlog = max(0.0, server_free - arrival)
            if controller.should_shed(backlog):
                controller.record_shed()
                # Shed posts still advance time for the engine: purge on
                # the usual cadence and tick the governor, so windows
                # keep expiring and memory pressure can release instead
                # of deadlocking in permanent shed (nothing processed →
                # no purges → memory never drops).
                self._since_purge += 1
                if self._since_purge >= self._purge_every:
                    self.engine.purge(post.timestamp)
                    self._since_purge = 0
                if self.governor is not None:
                    self.governor.observe()
                continue
            start = time.perf_counter()
            self.ingest(post)
            elapsed = time.perf_counter() - start
            controller.record_processed()
            begin = max(arrival, server_free)
            server_free = begin + elapsed
            delay = server_free - arrival
            total_delay += delay
            if delay > max_delay:
                max_delay = delay
        processed = controller.counters.processed
        return SheddingReport(
            speedup=speedup,
            posts=total,
            processed=processed,
            shed_dropped=controller.counters.shed_dropped,
            shed_passthrough=controller.counters.shed_passthrough,
            shed_episodes=controller.counters.episodes,
            busy_time=sum(self._service_times),
            stream_span=(arrival - first_arrival) if first_arrival is not None else 0.0,
            max_delay=max_delay,
            mean_delay=total_delay / processed if processed else 0.0,
            final_backlog_delay=max(0.0, server_free - arrival),
        )

    def sustainable_speedup(self) -> float:
        """Largest stream compression the engine keeps up with, estimated
        from total busy time vs stream span (utilisation = 1 boundary)."""
        if not self._arrivals or len(self._arrivals) < 2:
            return float("inf")
        span = self._arrivals[-1] - self._arrivals[0]
        busy = sum(self._service_times)
        if busy <= 0:
            return float("inf")
        return span / busy

    def throughput_posts_per_second(self) -> float:
        """Pure processing throughput (ignoring arrival pacing)."""
        if self.latency.mean <= 0:
            return float("inf")
        return 1.0 / self.latency.mean


class RouteError(Exception):
    """An HTTP route refused the request.

    Handlers raise this to turn invalid input into a clean status line
    with a JSON ``{"error": ...}`` body — 400 for malformed parameters,
    404 for unknown resources, 429 (with ``Retry-After``) for shed
    ingestion — instead of a traceback in the serving thread.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: tuple[tuple[str, str], ...] = (),
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


#: One route handler: ``(query, body) -> (status, content-type, body bytes)``
#: or a 4-tuple adding extra ``((name, value), ...)`` response headers.
RouteHandler = Callable[[dict, bytes | None], tuple]


class MetricsServer:
    """Minimal scrape endpoint over a :class:`repro.obs.Registry`.

    Routes:

    * ``GET /metrics`` — Prometheus text exposition format 0.0.4;
    * ``GET /metrics.json`` — the JSON snapshot;
    * ``GET /healthz`` — liveness probe (``ok``, or whatever the
      ``health`` callback reports — a degraded stack answers
      ``degraded: <reason>; <reason>``);
    * ``GET /healthz.json`` — the structured degradation report from the
      ``health_json`` callback (shards, memory, shedding in one dict).

    Serves from a daemon thread (:class:`ThreadingHTTPServer`), so a
    replay loop stays scrapable while it runs. Metrics collection reads
    live callback values; scraping mid-run observes the current counters.

    Routing is table-driven: :meth:`routes` maps ``(method, path)`` to a
    handler receiving the parsed query string and (for POST) the request
    body; subclasses — the feed front end
    (:class:`repro.feed.FeedServer`) — extend the table rather than
    re-implementing dispatch, so ``/metrics`` and ``/healthz`` stay
    uniform across every endpoint the stack serves.
    """

    #: Thread name for the serving daemon; subclasses override.
    thread_name = "repro-metrics-server"

    def __init__(
        self,
        registry: Registry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Callable[[], str] | None = None,
        health_json: Callable[[], dict] | None = None,
        request_deadline: float | None = None,
    ):
        if request_deadline is not None and not request_deadline > 0:
            raise ConfigurationError(
                f"request_deadline must be > 0 seconds, got {request_deadline}"
            )
        self.registry = registry
        self.health = health
        self.health_json = health_json
        #: Per-request time budget (seconds); a handler that overruns it
        #: answers 504 instead of its normal response. The work may have
        #: committed by then — which is exactly why ingestion is
        #: idempotent: the client's retry is absorbed by the dedup window.
        self.request_deadline = request_deadline
        self._host = host
        self._port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def _deadline_exceeded(self, method: str, path: str, elapsed: float) -> None:
        """Hook: one request overran ``request_deadline`` (subclasses
        count it; the base server just answers 504)."""

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)``; raises before :meth:`start`."""
        if self._httpd is None:
            raise RuntimeError(f"{type(self).__name__} is not running")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- the route table -----------------------------------------------------

    def routes(self) -> dict[tuple[str, str], RouteHandler]:
        """``(method, path) -> handler``; subclasses extend the dict."""
        return {
            ("GET", "/metrics"): self._route_metrics,
            ("GET", "/metrics.json"): self._route_metrics_json,
            ("GET", "/healthz"): self._route_healthz,
            ("GET", "/healthz.json"): self._route_healthz_json,
        }

    def _route_metrics(self, query: dict, body: bytes | None) -> tuple:
        payload = render_prometheus(self.registry).encode("utf-8")
        return 200, "text/plain; version=0.0.4; charset=utf-8", payload

    def _route_metrics_json(self, query: dict, body: bytes | None) -> tuple:
        payload = json.dumps(
            snapshot(self.registry), indent=2, sort_keys=True
        ).encode("utf-8")
        return 200, "application/json", payload

    def _route_healthz(self, query: dict, body: bytes | None) -> tuple:
        text = self.health() if self.health is not None else "ok\n"
        return 200, "text/plain; charset=utf-8", text.encode("utf-8")

    def _route_healthz_json(self, query: dict, body: bytes | None) -> tuple:
        report = (
            self.health_json()
            if self.health_json is not None
            else {"status": "ok", "reasons": []}
        )
        payload = json.dumps(report, indent=2, sort_keys=True).encode("utf-8")
        return 200, "application/json", payload

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve from a daemon thread; returns the address."""
        if self._httpd is not None:
            return self.address
        routes = self.routes()
        deadline = self.request_deadline
        on_deadline = self._deadline_exceeded

        class Handler(BaseHTTPRequestHandler):
            def _dispatch(self, method: str) -> None:
                url = urlsplit(self.path)
                handler = routes.get((method, url.path))
                if handler is None:
                    self.send_error(404, "unknown path (try /metrics)")
                    return
                body: bytes | None = None
                if method == "POST":
                    length = int(self.headers.get("Content-Length") or 0)
                    body = self.rfile.read(length)
                started = time.monotonic()
                try:
                    response = handler(parse_qs(url.query), body)
                except RouteError as error:
                    payload = json.dumps({"error": error.message}).encode("utf-8")
                    self._reply(
                        error.status, "application/json", payload, error.headers
                    )
                    return
                elapsed = time.monotonic() - started
                if deadline is not None and elapsed > deadline:
                    on_deadline(method, url.path, elapsed)
                    payload = json.dumps(
                        {
                            "error": (
                                f"deadline exceeded: {method} {url.path} took "
                                f"{elapsed:.3f}s against a {deadline:.3f}s budget"
                            ),
                            # The handler DID run to completion — a write
                            # may be committed. Retry with the same
                            # idempotency key to learn the outcome safely.
                            "committed": "unknown",
                        }
                    ).encode("utf-8")
                    self._reply(504, "application/json", payload)
                    return
                status, ctype, payload = response[:3]
                headers = response[3] if len(response) > 3 else ()
                self._reply(status, ctype, payload, headers)

            def _reply(
                self,
                status: int,
                ctype: str,
                payload: bytes,
                headers=(),
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                for name, value in headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                self._dispatch("GET")

            def do_POST(self) -> None:  # noqa: N802 (stdlib API)
                self._dispatch("POST")

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes are high-frequency; stay silent

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=self.thread_name,
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def capacity_sweep(
    make_engine,
    posts: list[Post],
    *,
    algorithms: tuple[str, ...],
) -> list[dict[str, object]]:
    """Measure latency and sustainable speedup for several algorithms.

    ``make_engine(name)`` constructs a fresh engine per algorithm name;
    one row per algorithm is returned with the latency snapshot, raw
    throughput, and the sustainable real-time speedup.
    """
    rows: list[dict[str, object]] = []
    for name in algorithms:
        service = DiversificationService(make_engine(name))
        for post in posts:
            service.ingest(post)
        row: dict[str, object] = {"algorithm": name}
        row.update(service.latency.snapshot())
        row["throughput_posts_s"] = round(service.throughput_posts_per_second(), 0)
        row["sustainable_speedup"] = round(service.sustainable_speedup(), 0)
        rows.append(row)
    return rows
