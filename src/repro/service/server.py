"""The diversification service: per-post latency and capacity measurement.

The paper claims "scalable real-time stream processing" — the decision for
each arriving post must be instant, and the engine must keep up with the
firehose. This module measures both for any single-user algorithm or
M-SPSD engine:

* :class:`DiversificationService` wraps an engine, times every ``offer``
  and records the latency distribution;
* :meth:`DiversificationService.replay` feeds a recorded stream through
  the engine and runs a single-server queueing simulation over the
  measured service times at a chosen real-time ``speedup``, answering
  "could this engine absorb this stream K× faster than real time?";
* :func:`capacity_sweep` finds each algorithm's sustainable speedup.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from ..core import Post, StreamDiversifier
from ..errors import ConfigurationError
from ..multiuser import MultiUserDiversifier
from .latency import LatencyRecorder, QueueingReport, simulate_queueing


class DiversificationService:
    """Latency-instrumented wrapper around a diversification engine."""

    def __init__(
        self,
        engine: StreamDiversifier | MultiUserDiversifier,
        *,
        purge_every: int = 2000,
    ):
        if purge_every < 1:
            raise ConfigurationError(f"purge_every must be >= 1, got {purge_every}")
        self.engine = engine
        self.latency = LatencyRecorder()
        self._purge_every = purge_every
        self._since_purge = 0
        self._service_times: list[float] = []
        self._arrivals: list[float] = []

    @property
    def is_multiuser(self) -> bool:
        return isinstance(self.engine, MultiUserDiversifier)

    def ingest(self, post: Post):
        """Process one post, timing the decision. Returns the engine's
        verdict (bool for single-user, receiver set for multi-user)."""
        start = time.perf_counter()
        verdict = self.engine.offer(post)
        elapsed = time.perf_counter() - start
        self.latency.record(elapsed)
        self._arrivals.append(post.timestamp)
        self._service_times.append(elapsed)
        self._since_purge += 1
        if self._since_purge >= self._purge_every:
            self.engine.purge(post.timestamp)
            self._since_purge = 0
        return verdict

    def replay(
        self, posts: Iterable[Post], *, speedups: tuple[float, ...] = (1.0,)
    ) -> list[QueueingReport]:
        """Feed ``posts`` through the engine, then evaluate the measured
        service times against the stream's arrival process at each
        ``speedup`` (1.0 = real time)."""
        for post in posts:
            self.ingest(post)
        return [
            simulate_queueing(self._arrivals, self._service_times, speedup=s)
            for s in speedups
        ]

    def sustainable_speedup(self) -> float:
        """Largest stream compression the engine keeps up with, estimated
        from total busy time vs stream span (utilisation = 1 boundary)."""
        if not self._arrivals or len(self._arrivals) < 2:
            return float("inf")
        span = self._arrivals[-1] - self._arrivals[0]
        busy = sum(self._service_times)
        if busy <= 0:
            return float("inf")
        return span / busy

    def throughput_posts_per_second(self) -> float:
        """Pure processing throughput (ignoring arrival pacing)."""
        if self.latency.mean <= 0:
            return float("inf")
        return 1.0 / self.latency.mean


def capacity_sweep(
    make_engine,
    posts: list[Post],
    *,
    algorithms: tuple[str, ...],
) -> list[dict[str, object]]:
    """Measure latency and sustainable speedup for several algorithms.

    ``make_engine(name)`` constructs a fresh engine per algorithm name;
    one row per algorithm is returned with the latency snapshot, raw
    throughput, and the sustainable real-time speedup.
    """
    rows: list[dict[str, object]] = []
    for name in algorithms:
        service = DiversificationService(make_engine(name))
        for post in posts:
            service.ingest(post)
        row: dict[str, object] = {"algorithm": name}
        row.update(service.latency.snapshot())
        row["throughput_posts_s"] = round(service.throughput_posts_per_second(), 0)
        row["sustainable_speedup"] = round(service.sustainable_speedup(), 0)
        rows.append(row)
    return rows
