"""ShardSupervisor: self-healing worker pools for the sharded engines.

The parallel and dynamic engines push exactness across process
boundaries; this module keeps that promise through process *failure*. One
supervisor owns one pool of shard workers and guarantees:

* **Liveness detection** — every request carries a deadline on the pipe
  ``recv``; idle shards are pinged on a heartbeat cadence. A dead pipe,
  a breached deadline, or a reply that is not a valid protocol tuple all
  count as a worker failure.
* **Exact recovery** — acknowledged mutating commands since the last
  rolling checkpoint live in a :class:`~repro.supervise.journal.
  BatchJournal`. On failure the worker is respawned under bounded
  exponential backoff + jitter, its last checkpoint is restored, the
  journal is replayed (engines are deterministic, so replayed state is
  bit-identical), and the in-flight request is re-issued. No acknowledged
  work is ever lost; the caller just sees a slow reply.
* **Graceful degradation** — a shard that exhausts its restart budget is
  quarantined as a *poison shard*: its components are rebuilt in-parent
  (checkpoint + journal replay through the same ``handle`` code the
  worker runs) and served serially from then on. Slower, never wrong.

The supervisor is engine-agnostic: everything family-specific — how to
spawn a worker, which commands mutate state, how to checkpoint/restore,
how to build the in-parent fallback server — arrives in a
:class:`WorkerProtocol` built by :mod:`repro.parallel` or
:mod:`repro.dynamic` (which import this package, never the reverse).
"""

from __future__ import annotations

import os
import random
import time
import weakref
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from ..errors import CheckpointError, ConfigurationError, ParallelError
from ..storage.framing import read_framed, write_framed
from .journal import BatchJournal


@dataclass(frozen=True)
class SupervisionConfig:
    """Tuning knobs for one :class:`ShardSupervisor`.

    ``heartbeat_interval`` paces liveness pings to idle shards;
    ``deadline`` bounds every pipe ``recv`` (the hang detector);
    ``max_restarts`` is the per-shard respawn budget before degradation;
    ``backoff_base``/``backoff_cap``/``jitter`` shape the respawn delay
    ``min(cap, base * 2**attempt) * (1 + jitter * rand())``;
    ``checkpoint_every`` is the rolling-checkpoint cadence in acknowledged
    stream posts per shard, and ``journal_limit`` forces an early
    checkpoint once that many mutating commands are journalled (bounding
    replay cost). ``seed`` drives the jitter deterministically.
    ``checkpoint_dir``, when set, spills each shard's rolling checkpoint
    to an atomically-written, checksummed file in that directory instead
    of holding the payload in parent memory — bounding the coordinator's
    footprint and surviving torn writes (a truncated or corrupted file is
    rejected with a clear :class:`~repro.errors.CheckpointError`).
    """

    heartbeat_interval: float = 1.0
    deadline: float = 30.0
    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    checkpoint_every: int = 2048
    journal_limit: int = 64
    seed: int = 0
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {self.deadline}")
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ConfigurationError(
                f"backoff_cap {self.backoff_cap} < backoff_base {self.backoff_base}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.journal_limit < 1:
            raise ConfigurationError(
                f"journal_limit must be >= 1, got {self.journal_limit}"
            )


@dataclass(frozen=True)
class WorkerProtocol:
    """How one engine family's shards are run, saved and replaced.

    ``target`` is the worker process entry point ``(conn, spec)``;
    ``mutating`` names the commands that change worker state (these are
    journalled); ``checkpoint_command`` is the read-only message whose
    reply captures a shard's full state; ``restore_messages`` turns that
    reply back into the command sequence that rebuilds it;
    ``make_server`` builds the in-parent fallback (an object with
    ``handle(message)`` sharing the worker's dispatch code);
    ``strip_faults`` returns a spec with injected faults removed (respawn
    hygiene); ``posts_of`` counts the stream posts a message carries, for
    the checkpoint cadence. ``journal_form``, when set, converts an
    acknowledged mutating message into the form the journal should hold —
    families whose wire messages reference external buffers (the parallel
    family's shared-memory batches) detach them into self-contained
    payloads here, at commit time, while the referenced region is still
    valid; replay then works no matter what the buffer holds later.
    """

    target: Callable
    mutating: frozenset[str]
    checkpoint_command: tuple
    restore_messages: Callable[[object], list[tuple]]
    make_server: Callable[[object], object]
    strip_faults: Callable[[object], object]
    posts_of: Callable[[tuple], int]
    journal_form: Callable[[tuple], tuple] | None = None


class _WorkerFailure(Exception):
    """Internal: one observed worker failure (timeout/EOF/corrupt/send)."""


class _DiskCheckpoint:
    """Marker for a shard checkpoint that lives on disk, not in memory."""

    __slots__ = ("path",)

    def __init__(self, path: str):
        self.path = path


# Shard checkpoints share the CRC-framed atomic persistence used by every
# durability layer (feed mailbox snapshots included); the framing header is
# what turns a torn write into a loud CheckpointError instead of
# silently-wrong recovered state.
_write_shard_checkpoint = write_framed
_read_shard_checkpoint = read_framed


class _Shard:
    """Supervisor-side record of one shard worker."""

    __slots__ = (
        "index",
        "spec",
        "process",
        "conn",
        "journal",
        "checkpoint",
        "restarts",
        "degraded",
        "retired",
        "server",
        "last_contact",
        "last_command",
    )

    def __init__(self, index: int, spec, journal_limit: int):
        self.index = index
        self.spec = spec
        self.process = None
        self.conn = None
        self.journal = BatchJournal(journal_limit)
        self.checkpoint = None
        self.restarts = 0
        self.degraded = False
        self.retired = False
        self.server = None
        self.last_contact = 0.0
        self.last_command = "spawn"


def _reap_process(process) -> None:
    """terminate → kill escalation for one worker, with join verification."""
    if process is None:
        return
    process.join(timeout=0.1)
    if process.is_alive():
        process.terminate()
        process.join(timeout=2.0)
    if process.is_alive():
        process.kill()
        process.join(timeout=2.0)


def shutdown_workers(processes, connections) -> None:
    """Hardened pool teardown, safe to run twice (weakref.finalize target).

    Polite first — send ``stop``, drain the acknowledgement so the
    worker's send never blocks — then escalating: a worker that did not
    acknowledge gets a short grace join, ``terminate`` (SIGTERM), and
    finally ``kill`` (SIGKILL), each verified by a bounded ``join``, so no
    zombie survives ``close()`` even when a worker ignores both ``stop``
    and SIGTERM.
    """
    acknowledged = []
    for conn in connections:
        try:
            conn.send(("stop",))
            acknowledged.append(True)
        except (OSError, ValueError):
            acknowledged.append(False)
    for position, conn in enumerate(connections):
        if acknowledged[position]:
            try:
                if conn.poll(1.0):
                    conn.recv()
                else:
                    acknowledged[position] = False
            except (OSError, EOFError, ValueError):
                acknowledged[position] = False
        try:
            conn.close()
        except OSError:
            pass
    for position, process in enumerate(processes):
        graceful = position < len(acknowledged) and acknowledged[position]
        process.join(timeout=5.0 if graceful else 0.2)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)


class ShardSupervisor:
    """Owns one pool of shard workers: request routing, liveness,
    journalled checkpoints, crash recovery and serial degradation.

    Args:
        specs: one picklable startup spec per shard (positional = shard
            index). The supervisor owns these and may strip their fault
            plans on respawn.
        context: the multiprocessing context to spawn under.
        protocol: the engine family's :class:`WorkerProtocol`.
        config: tuning knobs; defaults are production-shaped.
        name: label used in error messages (the engine's name).
    """

    def __init__(
        self,
        specs,
        *,
        context,
        protocol: WorkerProtocol,
        config: SupervisionConfig | None = None,
        name: str = "shard",
    ):
        self.protocol = protocol
        self.config = config if config is not None else SupervisionConfig()
        self.name = name
        self.instruments = None  # set by SupervisionInstruments when bound
        self._context = context
        self._rng = random.Random(self.config.seed)
        self._closed = False
        self.restarts_total = 0
        self.degradations = 0
        self.checkpoints_taken = 0
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0
        self.replayed_commands = 0
        self.recovery_latencies: list[float] = []
        self._shards = [
            _Shard(index, spec, self.config.journal_limit)
            for index, spec in enumerate(specs)
        ]
        # The finalizer holds these exact list objects; spawn/destroy keep
        # them current so GC-time teardown reaps whatever is live *now*.
        self._live_processes: list = []
        self._live_connections: list = []
        self._finalizer = weakref.finalize(
            self, shutdown_workers, self._live_processes, self._live_connections
        )
        self._last_sweep = time.monotonic()
        try:
            for shard in self._shards:
                self._spawn(shard)
        except _WorkerFailure as exc:
            self._finalizer()
            raise ParallelError(
                f"{name} shard worker failed to start: {exc}"
            ) from exc
        except BaseException:
            self._finalizer()
            raise

    # -- spawning and teardown ---------------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        """Start one worker and wait for its ready handshake."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=self.protocol.target,
            args=(child_conn, shard.spec),
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard.conn = parent_conn
        shard.process = process
        self._live_processes.append(process)
        self._live_connections.append(parent_conn)
        shard.last_command = "ready"
        self._recv(shard, "ready")

    def _destroy(self, shard: _Shard) -> None:
        """Tear down one worker (terminate → kill) and drop its handles."""
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            if shard.conn in self._live_connections:
                self._live_connections.remove(shard.conn)
            shard.conn = None
        if shard.process is not None:
            _reap_process(shard.process)
            if shard.process in self._live_processes:
                self._live_processes.remove(shard.process)
            shard.process = None

    def close(self) -> None:
        """Stop every live worker; idempotent, zombie-free."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()  # shutdown_workers over the live lists, once
        self._live_processes.clear()
        self._live_connections.clear()
        for shard in self._shards:
            shard.conn = None
            shard.process = None

    # -- wire plumbing -------------------------------------------------------

    def _send(self, shard: _Shard, message: tuple) -> None:
        try:
            shard.conn.send(message)
        except (OSError, ValueError) as exc:
            raise _WorkerFailure(
                f"send of {message[0]!r} failed (pipe closed): {exc}"
            ) from exc

    def _recv(self, shard: _Shard, command: str):
        deadline = self.config.deadline
        try:
            if not shard.conn.poll(deadline):
                raise _WorkerFailure(
                    f"no reply to {command!r} within {deadline:.1f}s (worker hung)"
                )
            reply = shard.conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerFailure(
                f"pipe closed awaiting reply to {command!r}: {exc}"
            ) from exc
        if (
            not isinstance(reply, tuple)
            or len(reply) < 2
            or reply[0] not in ("ok", "error")
        ):
            raise _WorkerFailure(
                f"corrupt reply to {command!r}: {str(reply)[:80]!r}"
            )
        if reply[0] == "error":
            # A well-formed engine error: the worker is alive and sane.
            raise ParallelError(
                f"{self.name} shard {shard.index} worker {reply[1]}: {reply[2]}"
            )
        shard.last_contact = time.monotonic()
        return reply[1]

    # -- request routing -----------------------------------------------------

    def request(self, index: int, message: tuple):
        """Send one command to one shard and return its payload, healing
        the shard first if it fails mid-request."""
        if self._closed:
            raise ParallelError(f"{self.name} supervisor already closed")
        shard = self._shards[index]
        if shard.retired:
            raise ParallelError(
                f"{self.name} shard {index} was retired (merged away); "
                "routing to it is a coordinator bug"
            )
        shard.last_command = message[0]
        if shard.degraded:
            payload = self._handle_degraded(shard, message)
        else:
            try:
                self._send(shard, message)
                payload = self._recv(shard, message[0])
            except _WorkerFailure as failure:
                payload = self._recover(shard, failure, inflight=message)
        self._committed(shard, message)
        return payload

    def request_many(self, messages: Mapping[int, tuple]) -> dict[int, object]:
        """One command per shard; sends complete before the first receive
        so live shards overlap, then failed shards are healed one by one."""
        if self._closed:
            raise ParallelError(f"{self.name} supervisor already closed")
        replies: dict[int, object] = {}
        failures: dict[int, _WorkerFailure] = {}
        sent: list[int] = []
        for index, message in messages.items():
            shard = self._shards[index]
            shard.last_command = message[0]
            if shard.degraded:
                replies[index] = self._handle_degraded(shard, message)
            else:
                try:
                    self._send(shard, message)
                    sent.append(index)
                except _WorkerFailure as failure:
                    failures[index] = failure
        for index in sent:
            try:
                replies[index] = self._recv(self._shards[index], messages[index][0])
            except _WorkerFailure as failure:
                failures[index] = failure
        # Journal the successes before healing anyone, so a recovery that
        # raises cannot leave an acknowledged command un-journalled.
        for index in messages:
            if index not in failures:
                self._committed(self._shards[index], messages[index])
        for index, failure in failures.items():
            shard = self._shards[index]
            replies[index] = self._recover(shard, failure, inflight=messages[index])
            self._committed(shard, messages[index])
        return replies

    def request_all(self, message: tuple) -> dict[int, object]:
        """Broadcast to every *active* shard (retired tombstones are
        skipped — their components live on in the shard they merged into)."""
        return self.request_many(
            {shard.index: message for shard in self._shards if not shard.retired}
        )

    def _handle_degraded(self, shard: _Shard, message: tuple):
        try:
            return shard.server.handle(message)
        except ParallelError:
            raise
        except Exception as exc:
            raise ParallelError(
                f"{self.name} shard {shard.index} (degraded, in-parent) "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    # -- journalling and checkpoints ----------------------------------------

    def _committed(self, shard: _Shard, message: tuple) -> None:
        """An acknowledged command: journal it if it mutates state, and
        roll a checkpoint when the cadence (or journal bound) says so."""
        if shard.degraded or message[0] not in self.protocol.mutating:
            return
        if self.protocol.journal_form is not None:
            message = self.protocol.journal_form(message)
        shard.journal.append(message, posts=self.protocol.posts_of(message))
        if self.instruments is not None:
            self.instruments.observe_journal_depth(len(shard.journal))
        if shard.journal.full or shard.journal.posts >= self.config.checkpoint_every:
            self._checkpoint(shard)

    def _checkpoint(self, shard: _Shard) -> None:
        command = self.protocol.checkpoint_command
        try:
            self._send(shard, command)
            payload = self._recv(shard, command[0])
        except _WorkerFailure as failure:
            payload = self._recover(shard, failure, inflight=command)
            if shard.degraded:
                return  # degraded shards neither journal nor checkpoint
        shard.checkpoint = self._store_checkpoint(shard, payload)
        shard.journal.clear()
        self.checkpoints_taken += 1

    def _checkpoint_path(self, shard: _Shard) -> str:
        assert self.config.checkpoint_dir is not None
        return os.path.join(
            self.config.checkpoint_dir, f"{self.name}-shard{shard.index:04d}.ckpt"
        )

    def _store_checkpoint(self, shard: _Shard, payload):
        """Keep the payload in memory, or — with ``checkpoint_dir`` — spill
        it to an atomic, checksummed file and keep only the reference."""
        directory = self.config.checkpoint_dir
        if directory is None:
            return payload
        os.makedirs(directory, exist_ok=True)
        path = self._checkpoint_path(shard)
        _write_shard_checkpoint(path, payload)
        return _DiskCheckpoint(path)

    def _checkpoint_payload(self, shard: _Shard):
        """Resolve a shard's stored checkpoint to its payload; raises
        :class:`CheckpointError` on a torn or truncated on-disk file."""
        checkpoint = shard.checkpoint
        if isinstance(checkpoint, _DiskCheckpoint):
            return _read_shard_checkpoint(checkpoint.path)
        return checkpoint

    def _drop_checkpoint_file(self, shard: _Shard) -> None:
        if isinstance(shard.checkpoint, _DiskCheckpoint):
            try:
                os.unlink(shard.checkpoint.path)
            except OSError:
                pass

    # -- liveness -----------------------------------------------------------

    def maybe_heartbeat(self, *, force: bool = False) -> None:
        """Ping shards idle past the heartbeat interval; heal dead ones.

        Called from the engine's batch path (and from tests with
        ``force=True``), so liveness checks piggyback on traffic without a
        background thread.
        """
        if self._closed:
            return
        now = time.monotonic()
        if not force and now - self._last_sweep < self.config.heartbeat_interval:
            return
        self._last_sweep = now
        for shard in self._shards:
            if shard.degraded or shard.retired:
                continue
            if not force and now - shard.last_contact < self.config.heartbeat_interval:
                continue
            shard.last_command = "ping"
            self.heartbeats_sent += 1
            try:
                self._send(shard, ("ping",))
                self._recv(shard, "ping")
            except _WorkerFailure as failure:
                self.heartbeats_missed += 1
                self._recover(shard, failure, inflight=None)

    # -- recovery and degradation -------------------------------------------

    def _recover(self, shard: _Shard, failure: _WorkerFailure, *, inflight):
        """Heal one failed shard: respawn under backoff, restore the last
        checkpoint, replay the journal, re-issue the in-flight request.
        Past the restart budget, degrade to an in-parent serial server."""
        started = time.perf_counter()
        config = self.config
        last_failure = failure
        self._destroy(shard)
        faults = getattr(shard.spec, "faults", None)
        if faults is not None and not getattr(faults, "survive_restarts", False):
            shard.spec = self.protocol.strip_faults(shard.spec)
        attempt = 0
        while shard.restarts < config.max_restarts:
            shard.restarts += 1
            self.restarts_total += 1
            delay = min(config.backoff_cap, config.backoff_base * (2.0**attempt))
            delay *= 1.0 + config.jitter * self._rng.random()
            attempt += 1
            if delay > 0:
                time.sleep(delay)
            try:
                self._spawn(shard)
                self._restore(shard)
                payload = None
                if inflight is not None:
                    self._send(shard, inflight)
                    payload = self._recv(shard, inflight[0])
                elapsed = time.perf_counter() - started
                self.recovery_latencies.append(elapsed)
                if self.instruments is not None:
                    self.instruments.observe_recovery(elapsed)
                return payload
            except _WorkerFailure as exc:
                last_failure = exc
                self._destroy(shard)
        self._degrade(shard, last_failure)
        if inflight is None:
            return None
        return self._handle_degraded(shard, inflight)

    def _restore(self, shard: _Shard) -> None:
        """Rebuild a fresh worker's state: checkpoint, then journal replay
        (replies are drained and discarded — the caller already has them)."""
        if shard.checkpoint is not None:
            for message in self.protocol.restore_messages(
                self._checkpoint_payload(shard)
            ):
                self._send(shard, message)
                self._recv(shard, message[0])
        for message in shard.journal.replay():
            self._send(shard, message)
            self._recv(shard, message[0])
            self.replayed_commands += 1

    def _degrade(self, shard: _Shard, failure: _WorkerFailure) -> None:
        """Quarantine a poison shard: rebuild its engines in-parent from
        checkpoint + journal and serve them serially from now on."""
        spec = self.protocol.strip_faults(shard.spec)
        try:
            server = self.protocol.make_server(spec)
            if shard.checkpoint is not None:
                for message in self.protocol.restore_messages(
                    self._checkpoint_payload(shard)
                ):
                    server.handle(message)
            for message in shard.journal.replay():
                server.handle(message)
                self.replayed_commands += 1
        except Exception as exc:
            raise ParallelError(
                f"{self.name} shard {shard.index} exhausted its restart "
                f"budget ({self.config.max_restarts}) and in-parent "
                f"degradation failed: {type(exc).__name__}: {exc} "
                f"(last worker failure during {shard.last_command!r}: {failure})"
            ) from exc
        shard.server = server
        shard.degraded = True
        self._drop_checkpoint_file(shard)
        shard.checkpoint = None
        shard.journal.clear()
        self.degradations += 1

    # -- live topology (shard autoscaling) ----------------------------------
    #
    # The autoscaler (:mod:`repro.parallel.autoscale`) splits hot shards and
    # merges cold ones through these hooks. Shard indices are stable for the
    # supervisor's lifetime: new shards append, merged-away shards become
    # retired tombstones that no request or heartbeat ever touches again.

    def spec_of(self, index: int):
        """The startup spec currently on file for ``index`` (what a respawn
        would build)."""
        return self._shards[index].spec

    def update_spec(self, index: int, spec) -> None:
        """Replace a shard's respawn spec after a live topology change —
        call only once the worker's actual state matches ``spec`` (e.g.
        after the split's ``drop`` was acknowledged)."""
        self._shards[index].spec = spec

    def add_shard(self, spec) -> int:
        """Spawn a new worker for ``spec`` and return its shard index.

        The shard starts with an empty journal and no checkpoint: state is
        installed through normal journalled commands (``load``/``adopt``),
        so a crash at any point of a split replays to the identical state.
        """
        if self._closed:
            raise ParallelError(f"{self.name} supervisor already closed")
        shard = _Shard(len(self._shards), spec, self.config.journal_limit)
        self._shards.append(shard)
        try:
            self._spawn(shard)
        except _WorkerFailure as failure:
            # Same healing contract as any other shard: a worker that dies
            # while being added is respawned under the restart budget.
            self._recover(shard, failure, inflight=None)
        return shard.index

    def retire_shard(self, index: int) -> None:
        """Tear down a shard merged into another one; idempotent.

        The tombstone keeps indices stable; its journal/checkpoint are
        dropped because its components' state now lives in (and is
        journalled by) the adopting shard.
        """
        shard = self._shards[index]
        if shard.retired:
            return
        shard.retired = True
        shard.degraded = False
        shard.server = None
        self._drop_checkpoint_file(shard)
        shard.checkpoint = None
        shard.journal.clear()
        self._destroy(shard)

    def checkpoint_now(self, index: int) -> bool:
        """Take an immediate rolling checkpoint of one shard (and clear its
        journal). Returns False for degraded or retired shards, which have
        nothing to checkpoint."""
        shard = self._shards[index]
        if shard.degraded or shard.retired:
            return False
        self._checkpoint(shard)
        return not shard.degraded

    # -- status -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def active_shard_count(self) -> int:
        """Shards still serving traffic (excludes retired tombstones)."""
        return sum(1 for s in self._shards if not s.retired)

    def is_retired(self, index: int) -> bool:
        return self._shards[index].retired

    def retired_shards(self) -> tuple[int, ...]:
        return tuple(s.index for s in self._shards if s.retired)

    def journal_bytes(self) -> int:
        """Accounted bytes of every active shard's journal (a memory-
        governor family)."""
        return sum(s.journal.approx_bytes() for s in self._shards if not s.retired)

    def restarts_of(self, index: int) -> int:
        return self._shards[index].restarts

    def is_degraded(self, index: int) -> bool:
        return self._shards[index].degraded

    def is_live(self, index: int) -> bool:
        """True while the shard's worker process is running (a degraded
        shard has no process and reports False)."""
        shard = self._shards[index]
        return shard.process is not None and shard.process.is_alive()

    def journal_depth(self, index: int) -> int:
        return len(self._shards[index].journal)

    def degraded_shards(self) -> tuple[int, ...]:
        return tuple(s.index for s in self._shards if s.degraded)

    def status(self) -> dict[str, object]:
        """One JSON-able health summary (the /healthz substrate)."""
        return {
            "shards": self.shard_count,
            "live_shards": sum(
                1 for s in self._shards if self.is_live(s.index)
            ),
            "degraded_shards": list(self.degraded_shards()),
            "retired_shards": list(self.retired_shards()),
            "restarts": self.restarts_total,
            "degradations": self.degradations,
            "checkpoints": self.checkpoints_taken,
            "heartbeats": self.heartbeats_sent,
            "heartbeats_missed": self.heartbeats_missed,
            "replayed_commands": self.replayed_commands,
        }
