"""BatchJournal: the bounded write-ahead journal behind crash recovery.

The supervisor's recovery contract — a recovered shard is byte-identical
to one that never crashed — rests on a simple ledger: every state-mutating
command a worker *acknowledged* since its last rolling checkpoint is kept
here, verbatim, in acknowledgement order. Engines are deterministic, so

    restore(last checkpoint) + replay(journal) == current worker state

and re-feeding the journal to a respawned worker (or to an in-parent
degraded engine) reproduces the lost state exactly.

The journal is *bounded only through the checkpoint cadence*: when
``full`` turns true the supervisor takes an early checkpoint and clears
it. Entries are never dropped — dropping one would silently diverge the
recovered receiver sets, the exact failure mode this layer exists to
prevent — so ``limit`` caps recovery *cost*, not correctness.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class BatchJournal:
    """Acknowledged-but-not-yet-checkpointed commands for one shard."""

    __slots__ = ("limit", "_entries", "_posts")

    def __init__(self, limit: int):
        if limit < 1:
            raise ConfigurationError(f"journal limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: list[tuple] = []
        self._posts = 0

    def append(self, message: tuple, *, posts: int = 0) -> None:
        """Record one acknowledged mutating command (``posts`` is the
        number of stream posts it carried, for the checkpoint cadence)."""
        self._entries.append(message)
        self._posts += posts

    def replay(self) -> tuple[tuple, ...]:
        """The journalled commands in acknowledgement order."""
        return tuple(self._entries)

    def clear(self) -> None:
        """Empty the journal — call only after a successful checkpoint."""
        self._entries.clear()
        self._posts = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def posts(self) -> int:
        """Stream posts covered by the journalled commands."""
        return self._posts

    @property
    def full(self) -> bool:
        """True once the entry cap is reached: checkpoint now."""
        return len(self._entries) >= self.limit
