"""BatchJournal: the bounded write-ahead journal behind crash recovery.

The supervisor's recovery contract — a recovered shard is byte-identical
to one that never crashed — rests on a simple ledger: every state-mutating
command a worker *acknowledged* since its last rolling checkpoint is kept
here, verbatim, in acknowledgement order. Engines are deterministic, so

    restore(last checkpoint) + replay(journal) == current worker state

and re-feeding the journal to a respawned worker (or to an in-parent
degraded engine) reproduces the lost state exactly.

The journal is bounded through the checkpoint cadence: when ``full`` turns
true the supervisor takes an early checkpoint and clears it, so depth never
exceeds ``limit``. That bound is *enforced*, not advisory — an append past
the limit raises :class:`~repro.errors.JournalOverflowError`, because the
only way to get there is a supervisor that stopped checkpointing, and
unbounded journal growth is precisely the memory leak this bound exists to
prevent. Entries are never silently dropped — dropping one would diverge
the recovered receiver sets, the exact failure mode this layer prevents —
so ``limit`` caps recovery cost *and* journal memory, never correctness.
"""

from __future__ import annotations

from ..errors import ConfigurationError, JournalOverflowError
from ..storage.accounting import estimate_message_bytes


class BatchJournal:
    """Acknowledged-but-not-yet-checkpointed commands for one shard."""

    __slots__ = ("limit", "_entries", "_posts", "_bytes")

    def __init__(self, limit: int):
        if limit < 1:
            raise ConfigurationError(f"journal limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: list[tuple] = []
        self._posts = 0
        self._bytes = 0

    def append(self, message: tuple, *, posts: int = 0) -> None:
        """Record one acknowledged mutating command (``posts`` is the
        number of stream posts it carried, for the checkpoint cadence).

        Raises :class:`JournalOverflowError` if the journal is already at
        its depth bound: the supervisor must checkpoint-and-clear when
        ``full`` turns true, so growth past ``limit`` is a caller bug.
        """
        if len(self._entries) >= self.limit:
            raise JournalOverflowError(
                f"journal is at its depth bound ({self.limit} entries); a "
                "rolling checkpoint must truncate it before more commands "
                "are journalled"
            )
        self._entries.append(message)
        self._posts += posts
        self._bytes += estimate_message_bytes(message)

    def replay(self) -> tuple[tuple, ...]:
        """The journalled commands in acknowledgement order."""
        return tuple(self._entries)

    def clear(self) -> None:
        """Empty the journal — call only after a successful checkpoint."""
        self._entries.clear()
        self._posts = 0
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def posts(self) -> int:
        """Stream posts covered by the journalled commands."""
        return self._posts

    @property
    def full(self) -> bool:
        """True once the entry cap is reached: checkpoint now."""
        return len(self._entries) >= self.limit

    def approx_bytes(self) -> int:
        """Accounted bytes of the journalled commands (a memory-governor
        family; see :mod:`repro.storage.accounting`), maintained
        incrementally at append/clear time."""
        return self._bytes
