"""Self-healing supervision for the sharded execution engines.

The parallel (:mod:`repro.parallel`) and dynamic (:mod:`repro.dynamic`)
engines run their components in worker processes; this package makes that
pool survive the processes themselves failing:

* :class:`ShardSupervisor` — per-shard liveness (request deadlines +
  heartbeats), a bounded write-ahead :class:`BatchJournal` of acknowledged
  commands, rolling per-shard checkpoints, crash recovery by respawn →
  restore → replay (bit-identical to a fault-free run), and — past the
  restart budget — quarantine of poison shards into in-parent serial
  engines (graceful degradation, never silent data loss).
* :class:`SupervisionConfig` — heartbeat/deadline/restart-budget/backoff/
  checkpoint-cadence knobs (CLI: ``--supervise``, ``--heartbeat-interval``,
  ``--max-restarts``, ``--shard-deadline``).
* :class:`WorkerProtocol` — the adapter each engine family supplies
  (spawn target, mutating-command set, checkpoint/restore wire messages,
  in-parent fallback server), keeping this package import-free of the
  engines that use it.
* :func:`shutdown_workers` — hardened pool teardown with terminate → kill
  escalation and join verification (shared by supervised and plain pools).

Enable it with ``make_multiuser(..., supervised=True)`` or
``ParallelSharedMultiUser(..., supervised=True)`` /
``DynamicMultiUser(..., supervised=True)``.
"""

from .journal import BatchJournal
from .supervisor import (
    ShardSupervisor,
    SupervisionConfig,
    WorkerProtocol,
    shutdown_workers,
)

__all__ = [
    "BatchJournal",
    "ShardSupervisor",
    "SupervisionConfig",
    "WorkerProtocol",
    "shutdown_workers",
]
