"""Near-duplicate perturbation operators with ground-truth labels.

The paper's user study asked 12 students whether tweet pairs were redundant;
we replace that with a generator that *knows* the answer. Each operator
transforms a tweet the way real redundancy arises (re-shortened URLs,
retweets, added hashtags, wire-service reflows, casing noise) or the way
mere *relatedness* arises (word substitutions, rewritten halves). Every
operator carries a **semantic damage** score: how much information the edit
changes. A perturbation plan sums the damage of its operators; a pair is
labelled redundant iff its total damage stays below
:data:`REDUNDANT_DAMAGE_LIMIT` — the deterministic stand-in for the
majority vote of the paper's labellers.

Surface-only operators (damage 0) typically move the *raw* SimHash a lot
(case, punctuation, URL slugs) but the *normalised* SimHash very little —
which is exactly the mechanism behind the paper's Figure 3 → Figure 4
improvement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .textgen import GeneratedText, TextGenerator, random_handle, random_short_url

#: A plan with total damage below this is a true near-duplicate. Calibrated
#: so that up to two word-level substitutions (or several milder edits)
#: still count as "the same information" — with this setting the simulated
#: study's P/R curves cross at Hamming ≈ 17–18 with precision/recall ≈ 0.95,
#: matching the paper's reading of its human-labelled data.
REDUNDANT_DAMAGE_LIMIT = 2.5


@dataclass(frozen=True, slots=True)
class Perturbation:
    """One applied operator: the new text and the damage it contributed."""

    text: str
    damage: float
    operator: str


def reshorten_urls(text: str, rng: random.Random) -> Perturbation:
    """Replace every short-URL slug with a fresh one (same link target).

    Twitter re-shortens a URL per tweet, so two posts of the same story
    carry different ``t.co`` slugs — the paper's Table 1 row 1 (Hamming 3).
    """
    out: list[str] = []
    changed = False
    for token in text.split():
        if token.startswith("http://t.co/"):
            out.append(random_short_url(rng))
            changed = True
        else:
            out.append(token)
    return Perturbation(" ".join(out), 0.0, "reshorten_urls" if changed else "noop")


def retweet(text: str, rng: random.Random) -> Perturbation:
    """Prefix with ``RT @handle:`` — verbatim content, new envelope."""
    return Perturbation(f"RT {random_handle(rng)}: {text}", 0.0, "retweet")


def add_hashtags(text: str, rng: random.Random) -> Perturbation:
    """Append 1–3 hashtags built from words already in the text.

    Paper Table 1 row 2: the same quote with ``#quote #success`` appended.
    """
    words = [w.strip(".,!?\"'") for w in text.split() if w.isalpha() and len(w) > 3]
    count = rng.randint(1, 3)
    tags = [f"#{rng.choice(words).lower()}" for _ in range(count)] if words else ["#news"]
    return Perturbation(f"{text} {' '.join(tags)}", 0.0, "add_hashtags")


def abbreviate(text: str, rng: random.Random) -> Perturbation:
    """Swap a few words for common microblog shorthand (surface-only).

    The inverse of :data:`repro.simhash.ABBREVIATIONS`: some duplicating
    users compress ("you" → "u") without changing meaning — the noise the
    paper's abbreviation-expansion preprocessing trial targeted.
    """
    from ..simhash import ABBREVIATIONS

    inverse = {long: short for short, long in ABBREVIATIONS.items() if " " not in long}
    tokens = text.split()
    changed = False
    for i, token in enumerate(tokens):
        short = inverse.get(token.lower())
        if short is not None and rng.random() < 0.8:
            tokens[i] = short
            changed = True
    return Perturbation(" ".join(tokens), 0.0, "abbreviate" if changed else "noop")


def casing_noise(text: str, rng: random.Random) -> Perturbation:
    """Flip the case style of a few words (surface-only)."""
    tokens = text.split()
    for i, token in enumerate(tokens):
        if token.isalpha() and rng.random() < 0.25:
            tokens[i] = token.upper() if rng.random() < 0.5 else token.lower()
    return Perturbation(" ".join(tokens), 0.0, "casing_noise")


def punctuation_noise(text: str, rng: random.Random) -> Perturbation:
    """Add/strip punctuation and quote marks (surface-only)."""
    tokens = text.split()
    out = []
    for token in tokens:
        roll = rng.random()
        if roll < 0.12:
            out.append(token.rstrip(".,!?") )
        elif roll < 0.2:
            out.append(token + rng.choice((".", ",", "!", " -")))
        else:
            out.append(token)
    body = " ".join(out)
    if rng.random() < 0.3:
        body = f'"{body}"'
    return Perturbation(body, 0.0, "punctuation_noise")


def truncate(text: str, rng: random.Random) -> Perturbation:
    """Keep a prefix and elide the rest (mild damage — info may be lost)."""
    tokens = text.split()
    if len(tokens) <= 5:
        return Perturbation(text, 0.0, "noop")
    keep = rng.randint(max(4, len(tokens) // 2), len(tokens) - 1)
    return Perturbation(" ".join(tokens[:keep]) + "...", 0.5, "truncate")


def word_dropout(text: str, rng: random.Random, count: int = 1) -> Perturbation:
    """Drop ``count`` random words (mild damage)."""
    tokens = text.split()
    drops = min(count, max(0, len(tokens) - 4))
    for _ in range(drops):
        tokens.pop(rng.randrange(len(tokens)))
    return Perturbation(" ".join(tokens), 0.5 * drops, "word_dropout")


def substitute_words(
    text: str, rng: random.Random, replacements: list[str], count: int = 2
) -> Perturbation:
    """Replace ``count`` words with unrelated vocabulary (real damage)."""
    tokens = text.split()
    eligible = [i for i, t in enumerate(tokens) if t.isalpha()]
    swaps = min(count, len(eligible))
    for i in rng.sample(eligible, swaps) if swaps else []:
        tokens[i] = rng.choice(replacements)
    return Perturbation(" ".join(tokens), 1.0 * swaps, "substitute_words")


def rewrite_tail(
    text: str, rng: random.Random, replacements: list[str]
) -> Perturbation:
    """Keep the first half, regenerate the rest — related, not redundant."""
    tokens = text.split()
    keep = max(3, len(tokens) // 2)
    new_len = rng.randint(3, 8)
    tail = [rng.choice(replacements) for _ in range(new_len)]
    return Perturbation(" ".join(tokens[:keep] + tail), 3.0, "rewrite_tail")


@dataclass(frozen=True, slots=True)
class DuplicatePair:
    """A generated (original, variant) pair with its ground-truth label."""

    original: str
    variant: str
    damage: float
    operators: tuple[str, ...]

    @property
    def redundant(self) -> bool:
        """The simulated majority-vote label."""
        return self.damage < REDUNDANT_DAMAGE_LIMIT


class DuplicateFactory:
    """Draws perturbation plans and produces labelled near-duplicate pairs.

    ``intensity`` in [0, 1] biases plans from pure surface edits (0) toward
    heavy rewrites (1); sweeping it produces pairs across the whole Hamming
    range the user-study reproduction needs.
    """

    def __init__(self, generator: TextGenerator, *, seed: int = 23):
        self.generator = generator
        self._rng = random.Random(seed)
        # Replacement vocabulary for damaging operators.
        self._replacement_pool = [
            self.generator.vocabulary.global_sampler.sample(self._rng)
            for _ in range(500)
        ]

    def variant_of(
        self,
        base: GeneratedText,
        *,
        intensity: float,
        rng: random.Random | None = None,
    ) -> DuplicatePair:
        """Perturb ``base`` into a labelled pair at roughly ``intensity``."""
        rng = rng or self._rng
        text = base.text
        damage = 0.0
        applied: list[str] = []

        def apply(perturbation: Perturbation) -> None:
            nonlocal text, damage
            text = perturbation.text
            damage += perturbation.damage
            if perturbation.operator != "noop":
                applied.append(perturbation.operator)

        # Surface envelope edits — almost every real duplicate has some.
        if rng.random() < 0.85:
            apply(reshorten_urls(text, rng))
        if rng.random() < 0.3:
            apply(retweet(text, rng))
        if rng.random() < 0.4:
            apply(add_hashtags(text, rng))
        if rng.random() < 0.5:
            apply(casing_noise(text, rng))
        if rng.random() < 0.5:
            apply(punctuation_noise(text, rng))
        if rng.random() < 0.15:
            apply(abbreviate(text, rng))

        # Content edits scale with intensity.
        if rng.random() < intensity * 0.9:
            apply(word_dropout(text, rng, count=1 + int(intensity * 2)))
        if rng.random() < intensity * 0.9:
            apply(substitute_words(text, rng, self._replacement_pool,
                                   count=1 + int(intensity * 3)))
        if rng.random() < intensity * 0.5:
            apply(truncate(text, rng))
        if rng.random() < max(0.0, intensity - 0.55):
            apply(rewrite_tail(text, rng, self._replacement_pool))

        # Occasionally the wire-service long form (Table 1 row 3).
        if rng.random() < 0.12:
            text = self.generator.agency_longform(
                GeneratedText(text=text, topic=base.topic, url_target=base.url_target),
                rng,
            )
            applied.append("agency_longform")

        return DuplicatePair(
            original=base.text,
            variant=text,
            damage=damage,
            operators=tuple(applied),
        )

    def redundant_variant(
        self, base: GeneratedText, rng: random.Random | None = None
    ) -> DuplicatePair:
        """A variant guaranteed to be labelled redundant, used by the stream
        generator for true duplicates. Real-stream redundancy is dominated
        by verbatim echoes (retweets, re-shortened links), so the intensity
        is kept very low — the resulting pairs sit well inside even a tight
        λc, which is why the paper's λc sweep (Figure 12) barely moves."""
        rng = rng or self._rng
        pair = self.variant_of(base, intensity=rng.random() * 0.1, rng=rng)
        if pair.redundant:
            return pair
        # Heavy ops can fire even at low intensity; retry surface-only.
        text = base.text
        for op in (reshorten_urls, add_hashtags, casing_noise):
            if rng.random() < 0.7:
                text = op(text, rng).text
        return DuplicatePair(
            original=base.text,
            variant=text,
            damage=0.0,
            operators=("surface_only",),
        )
