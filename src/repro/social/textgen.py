"""Synthetic microblog text generation.

Generates tweet-like texts: 6–18 words drawn from topic + global
vocabularies, decorated the way real tweets are — capitalisation, source
tags like "(Reuters)", shortened URLs, hashtags and mentions. SimHash does
not care about grammar, only token overlap, so word-salad with realistic
decoration reproduces the paper's content-distance behaviour faithfully.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from .vocabulary import Vocabulary

_URL_CHARS = string.ascii_letters + string.digits
_AGENCIES = ("Reuters", "AP", "AFP", "Bloomberg", "UPI")
_CITIES = ("NEW YORK", "LONDON", "SAN FRANCISCO", "TOKYO", "BERLIN", "PARIS")


def random_short_url(rng: random.Random) -> str:
    """A Twitter-style shortened URL, e.g. ``http://t.co/9w2JrurhKm``."""
    slug = "".join(rng.choice(_URL_CHARS) for _ in range(10))
    return f"http://t.co/{slug}"


def random_handle(rng: random.Random) -> str:
    """A plausible @-handle."""
    length = rng.randint(5, 10)
    return "@" + "".join(rng.choice(string.ascii_lowercase) for _ in range(length))


@dataclass(frozen=True, slots=True)
class GeneratedText:
    """A generated tweet plus the metadata perturbation operators rely on."""

    text: str
    topic: int
    #: Expanded target of any embedded short URL; re-shortening a URL keeps
    #: this identity, which is what makes two variants "the same link".
    url_target: str | None


class TextGenerator:
    """Produces fresh tweet texts for a topic."""

    def __init__(self, vocabulary: Vocabulary, *, seed: int = 11):
        self.vocabulary = vocabulary
        self._rng = random.Random(seed)

    def fresh(self, topic: int, rng: random.Random | None = None) -> GeneratedText:
        """One new post on ``topic``.

        Roughly: a capitalised clause of 6–16 words, then optionally a
        source tag, a short URL and/or trailing hashtags — mirroring the
        headline-style tweets in the paper's Table 1.
        """
        rng = rng or self._rng
        word_count = rng.randint(6, 16)
        words = self.vocabulary.words(rng, word_count, topic)
        words[0] = words[0].capitalize()
        parts = [" ".join(words)]

        if rng.random() < 0.25:
            parts.append(f"({rng.choice(_AGENCIES)})")

        url_target = None
        if rng.random() < 0.45:
            url_target = (
                f"http://news.example.com/{topic}/"
                + "".join(rng.choice(string.digits) for _ in range(8))
            )
            parts.append(random_short_url(rng))

        if rng.random() < 0.35:
            tags = rng.randint(1, 2)
            for _ in range(tags):
                parts.append("#" + self.vocabulary.word(rng, topic, topical_prob=0.8))

        if rng.random() < 0.12:
            parts.insert(0, random_handle(rng))

        return GeneratedText(text=" ".join(parts), topic=topic, url_target=url_target)

    def agency_longform(
        self, base: GeneratedText, rng: random.Random | None = None
    ) -> str:
        """The wire-service long form of a headline (paper Table 1, row 3):
        ``<headline>: CITY (Agency) - <headline prefix>... <new short url>``.
        """
        rng = rng or self._rng
        headline = base.text.split(" http://t.co/")[0]
        prefix_words = headline.split()[: rng.randint(4, 7)]
        return (
            f"{headline}: {rng.choice(_CITIES)} ({rng.choice(_AGENCIES)}) - "
            f"{' '.join(prefix_words)}... {random_short_url(rng)}"
        )
