"""Synthetic vocabularies with Zipfian frequencies.

The text generator needs a realistic-looking word supply: a shared global
vocabulary sampled with a Zipf law (so random unrelated posts behave like
real tweets under SimHash — their distance distribution centres at 32 bits,
paper Figure 2), plus per-topic sub-vocabularies (so posts about the same
story share terms and communities have recognisable content).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate

# A seed lexicon of common words; the generator extends it with syllabic
# coinages so vocabularies of any size are available offline.
_SEED_WORDS = (
    "the of to and in for on with at by from new says after over amid report "
    "breaking update live world market stocks shares deal talks vote court "
    "police fire storm rain heat game team win loss final season player coach "
    "film music album star show launch phone app data cloud chip startup "
    "funding round growth sales profit loss bank rate tax plan bill law city "
    "mayor state governor president minister leader party election poll "
    "campaign border trade summit crisis strike protest rally crowd people "
    "children school students health study drug trial vaccine doctor hospital "
    "science space rocket moon mars probe energy oil gas solar wind climate "
    "flood quake virus outbreak food prices supply chain port ship flight "
    "airline crash rescue missing found dead injured arrested charged guilty "
    "verdict appeal ruling judge jury case investigation probe leak hack "
    "breach security attack defense army navy troops war peace truce aid "
    "refugees border wall bridge road traffic train metro bus fare strike "
    "union workers jobs wages hiring layoffs factory plant output exports "
    "imports tariff currency dollar euro yen gold silver copper wheat corn "
    "coffee big small major minor early late record high low sharp steady "
    "strong weak likely unlikely official source local global national "
    "regional annual monthly weekly daily"
).split()

_ONSETS = ("b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j",
           "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh", "sl",
           "st", "t", "th", "tr", "v", "w", "z")
_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou")
_CODAS = ("", "b", "ck", "d", "g", "l", "m", "n", "nd", "ng", "nt", "p",
          "r", "rk", "s", "sh", "st", "t", "th", "x")


def _coin_word(rng: random.Random, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS) + rng.choice(_NUCLEI) + rng.choice(_CODAS))
    return "".join(parts)


def build_word_list(size: int, rng: random.Random) -> list[str]:
    """``size`` distinct words: the seed lexicon first, coinages after.

    Deterministic given the rng state.
    """
    words = list(dict.fromkeys(_SEED_WORDS))[:size]
    seen = set(words)
    while len(words) < size:
        word = _coin_word(rng, rng.choice((1, 2, 2, 3)))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


class ZipfSampler:
    """Draws items with probability ∝ 1 / rank^exponent.

    Cumulative weights are precomputed once; each draw is a binary search.
    """

    __slots__ = ("items", "_cumulative", "_total")

    def __init__(self, items: list[str], exponent: float = 1.05):
        if not items:
            raise ValueError("ZipfSampler needs at least one item")
        self.items = items
        weights = [1.0 / (rank**exponent) for rank in range(1, len(items) + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> str:
        """One Zipf-distributed draw."""
        point = rng.random() * self._total
        return self.items[bisect_right(self._cumulative, point)]

    def sample_many(self, rng: random.Random, count: int) -> list[str]:
        """``count`` i.i.d. draws."""
        return [self.sample(rng) for _ in range(count)]


class Vocabulary:
    """Global Zipf vocabulary plus per-topic sub-vocabularies.

    Each topic owns ``topic_words`` exclusive terms (entities, hashtag roots)
    ranked Zipf-style, and mixes them with the global vocabulary when a
    topical post is generated.
    """

    def __init__(
        self,
        *,
        global_size: int = 4000,
        topics: int = 20,
        topic_words: int = 120,
        seed: int = 7,
    ):
        rng = random.Random(seed)
        total = global_size + topics * topic_words
        words = build_word_list(total, rng)
        self.global_sampler = ZipfSampler(words[:global_size])
        self.topic_samplers: list[ZipfSampler] = []
        offset = global_size
        for _ in range(topics):
            self.topic_samplers.append(ZipfSampler(words[offset : offset + topic_words]))
            offset += topic_words

    @property
    def topic_count(self) -> int:
        return len(self.topic_samplers)

    def word(self, rng: random.Random, topic: int | None = None, topical_prob: float = 0.45) -> str:
        """One word; with probability ``topical_prob`` from the topic pool."""
        if topic is not None and rng.random() < topical_prob:
            return self.topic_samplers[topic % len(self.topic_samplers)].sample(rng)
        return self.global_sampler.sample(rng)

    def words(
        self,
        rng: random.Random,
        count: int,
        topic: int | None = None,
        topical_prob: float = 0.45,
    ) -> list[str]:
        """``count`` words mixing topic and global pools."""
        return [self.word(rng, topic, topical_prob) for _ in range(count)]
