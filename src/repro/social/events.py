"""Seeded churn generator: weave follow/unfollow events into a stream.

The dynamic subsystem consumes a single mixed record stream
(:mod:`repro.dynamic.events`); this module manufactures one from the
static substrate: take a timestamp-ordered post stream and an initial
followee relation, and interleave topology events between posts.

The generator keeps a shadow copy of the relation so every emitted event
is *valid at its position in the stream* — a follow never duplicates an
existing edge, an unfollow always removes one that exists — which makes
the traces maximally effective at exercising migrations (no-op events
never migrate anything). Event timestamps are placed inside the
inter-post gaps, so the merged stream stays in non-decreasing timestamp
order. Fully deterministic given the config seed.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass

from ..core import Post
from ..dynamic.events import Event, FollowEvent, UnfollowEvent
from ..errors import DatasetError


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Knobs of the churn generator.

    Attributes:
        rate: mean topology events per post (Poisson-distributed per
            inter-post gap), the sustained-churn intensity.
        follow_fraction: probability a churn event is a follow (the rest
            are unfollows); the generator falls back to the other kind
            when the preferred one has no valid move left.
        seed: RNG seed; the trace is fully deterministic given the config.
    """

    rate: float = 0.05
    follow_fraction: float = 0.5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise DatasetError(f"churn rate must be >= 0, got {self.rate}")
        if not 0.0 <= self.follow_fraction <= 1.0:
            raise DatasetError(
                f"follow_fraction must be in [0, 1], got {self.follow_fraction}"
            )


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (means here are small)."""
    if mean <= 0.0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def interleave_churn(
    posts: Iterable[Post],
    friends: Mapping[int, Iterable[int]],
    config: ChurnConfig | None = None,
    *,
    rate_fn: Callable[[float], float] | None = None,
) -> Iterator[Event]:
    """Yield a mixed event stream: ``posts`` plus seeded follow churn.

    ``friends`` is the followee relation at stream start (it is copied,
    never mutated); churn events mutate only the shadow copy. The author
    universe is fixed: churn picks both endpoints from ``friends``' keys.

    ``rate_fn``, when given, makes the churn intensity *time-varying*:
    it maps the timestamp of the preceding post to the mean events for
    that inter-post gap, overriding ``config.rate``. Coordinated churn
    storms (the adversarial scenario family) are built this way — a
    baseline rate punctuated by windows of orders-of-magnitude more
    follow/unfollow traffic, still fully deterministic given the seed.
    """
    config = config or ChurnConfig()
    rng = random.Random(config.seed)
    shadow: dict[int, set[int]] = {
        author: {f for f in followees if f != author}
        for author, followees in friends.items()
    }
    universe = sorted(shadow)
    churning = config.rate > 0.0 or rate_fn is not None
    if len(universe) < 2 and churning:
        raise DatasetError("churn needs at least 2 authors in the universe")

    def make_event(timestamp: float) -> Event | None:
        want_follow = rng.random() < config.follow_fraction
        for kind in (want_follow, not want_follow):
            if kind:
                author = rng.choice(universe)
                candidates = [
                    a for a in universe if a != author and a not in shadow[author]
                ]
                if not candidates:
                    continue
                followee = rng.choice(candidates)
                shadow[author].add(followee)
                return FollowEvent(author=author, followee=followee, timestamp=timestamp)
            candidates = [a for a in universe if shadow[a]]
            if not candidates:
                continue
            author = rng.choice(candidates)
            followee = rng.choice(sorted(shadow[author]))
            shadow[author].discard(followee)
            return UnfollowEvent(author=author, followee=followee, timestamp=timestamp)
        # Relation both complete and empty can't happen; a slot with no
        # valid move of either kind is simply skipped.
        return None

    previous: float | None = None
    for post in posts:
        if previous is not None:
            mean = config.rate if rate_fn is None else rate_fn(previous)
            if mean < 0.0:
                raise DatasetError(f"rate_fn returned {mean} at t={previous}")
            count = _poisson(rng, mean)
            if count:
                gap = post.timestamp - previous
                offsets = sorted(rng.random() * gap for _ in range(count))
                for offset in offsets:
                    event = make_event(previous + offset)
                    if event is not None:
                        yield event
        previous = post.timestamp
        yield post
