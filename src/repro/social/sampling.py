"""BFS author sampling (paper §6.1 methodology).

The paper could not afford all-pairs similarity on the full 660k-author
graph, so it sampled 20,150 authors: "randomly picking an initial author,
and adding authors that are reachable through Breadth First Search on the
follower-followee graph". We reproduce exactly that: BFS over the
*undirected* follow relation (follower or followee adjacency) from a random
seed, stopping when the target sample size is reached.
"""

from __future__ import annotations

import random
from collections import deque

from ..errors import DatasetError
from .network import FollowerNetwork


def bfs_sample(
    network: FollowerNetwork, sample_size: int, *, seed: int = 5
) -> list[int]:
    """Sample ``sample_size`` authors by BFS from a random start.

    If a BFS exhausts its reachable set before filling the sample, a new
    random unvisited seed is picked (the synthetic network is usually one
    weak component, so this rarely triggers, but small/fragmented networks
    stay supported).
    """
    if sample_size < 1 or sample_size > network.n_authors:
        raise DatasetError(
            f"sample_size must be in [1, {network.n_authors}], got {sample_size}"
        )
    rng = random.Random(seed)

    # Build the undirected adjacency once: follower or followee.
    adjacency: dict[int, set[int]] = {a: set(f) for a, f in network.followees.items()}
    for a, follows in network.followees.items():
        for b in follows:
            adjacency[b].add(a)

    visited: set[int] = set()
    order: list[int] = []
    all_authors = list(network.followees)
    while len(order) < sample_size:
        remaining = [a for a in all_authors if a not in visited]
        start = rng.choice(remaining)
        queue = deque((start,))
        visited.add(start)
        while queue and len(order) < sample_size:
            node = queue.popleft()
            order.append(node)
            for neighbor in sorted(adjacency[node]):
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
    return order
