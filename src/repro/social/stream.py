"""Post stream generation: Poisson arrivals with correlated duplicates.

Stand-in for the paper's one-day crawl of 213,175 tweets. The generator
produces a timestamp-ordered stream where:

* arrivals form a Poisson process (uniform order statistics over the day);
* per-author rates are heterogeneous (lognormal weights around the paper's
  ~10 posts/author/day average);
* a tunable fraction of posts are *duplicates* of a recent post, mostly by
  an author from the same community (hence usually author-similar) and
  mostly within a short lag (hence usually inside the λt window), with
  heavy-tailed exceptions — late echoes and cross-community virality — so
  that *every* diversity dimension has bite (removing any one changes the
  retained count, reproducing Figure 10's behaviour);
* duplicates carry ground-truth provenance (source post, semantic damage,
  redundancy label) so evaluation code can audit what got pruned.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import accumulate

from ..core import Post
from ..errors import DatasetError
from .duplication import DuplicateFactory, DuplicatePair
from .textgen import GeneratedText, TextGenerator


@dataclass(frozen=True, slots=True)
class StreamConfig:
    """Knobs of the stream generator.

    Attributes:
        duration: stream length in seconds (default one day).
        posts_per_author_per_day: average post rate (paper: ~10).
        duplicate_prob: probability an arriving post duplicates a recent one.
        near_lag_mean: mean lag (s) of a "near" duplicate (exponential).
        near_prob: probability a duplicate is near (vs a late echo).
        far_lag_max: late echoes arrive uniformly within this many seconds.
        similar_author_prob: probability the duplicating author is drawn
            from the source author's similar set (otherwise any author —
            virality across dissimilar accounts).
        redundant_plan_prob: probability the duplicate is a true
            near-duplicate (surface-level perturbation) rather than a
            related-but-different rewrite.
        bursts: flash-crowd windows as (center_s, width_s, intensity)
            triples — within ``center ± width/2`` the arrival rate is
            multiplied by ``1 + intensity`` (breaking-news echo storms;
            total post count is unchanged, arrivals are redistributed).
        seed: RNG seed.
    """

    duration: float = 86_400.0
    posts_per_author_per_day: float = 10.0
    duplicate_prob: float = 0.28
    near_lag_mean: float = 600.0
    near_prob: float = 0.78
    far_lag_max: float = 6 * 3600.0
    similar_author_prob: float = 0.8
    redundant_plan_prob: float = 0.85
    bursts: tuple[tuple[float, float, float], ...] = ()
    seed: int = 17

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DatasetError("duration must be positive")
        if self.posts_per_author_per_day <= 0:
            raise DatasetError("posts_per_author_per_day must be positive")
        for label, p in (
            ("duplicate_prob", self.duplicate_prob),
            ("near_prob", self.near_prob),
            ("similar_author_prob", self.similar_author_prob),
            ("redundant_plan_prob", self.redundant_plan_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise DatasetError(f"{label} must be in [0, 1], got {p}")
        for center, width, intensity in self.bursts:
            if not 0.0 <= center <= self.duration:
                raise DatasetError(f"burst center {center} outside the stream")
            if width <= 0 or intensity < 0:
                raise DatasetError(
                    f"burst width must be positive and intensity >= 0, "
                    f"got ({width}, {intensity})"
                )


@dataclass(frozen=True, slots=True)
class Provenance:
    """Ground truth for one duplicated post."""

    source_post_id: int
    damage: float
    redundant: bool
    operators: tuple[str, ...]


@dataclass(slots=True)
class PostStream:
    """A generated stream plus its ground truth."""

    posts: list[Post]
    #: post_id -> Provenance, only for posts generated as duplicates.
    provenance: dict[int, Provenance]
    #: author -> community id (copied from the network).
    community: dict[int, int]

    @property
    def duplicate_count(self) -> int:
        return len(self.provenance)

    @property
    def redundant_count(self) -> int:
        return sum(1 for p in self.provenance.values() if p.redundant)

    def subsample_posts(self, ratio: float, *, seed: int = 3) -> "PostStream":
        """Random post subsample (Figure 14's varying post rate); keeps
        order and ground truth of the surviving posts."""
        if not 0.0 < ratio <= 1.0:
            raise DatasetError(f"ratio must be in (0, 1], got {ratio}")
        rng = random.Random(seed)
        kept = [p for p in self.posts if rng.random() < ratio]
        kept_ids = {p.post_id for p in kept}
        return PostStream(
            posts=kept,
            provenance={
                pid: prov for pid, prov in self.provenance.items() if pid in kept_ids
            },
            community=self.community,
        )

    def restrict_to_authors(self, authors: set[int]) -> "PostStream":
        """Posts by a subset of authors (Figure 15's varying subscriptions)."""
        kept = [p for p in self.posts if p.author in authors]
        kept_ids = {p.post_id for p in kept}
        return PostStream(
            posts=kept,
            provenance={
                pid: prov for pid, prov in self.provenance.items() if pid in kept_ids
            },
            community={a: c for a, c in self.community.items() if a in authors},
        )


@dataclass(slots=True)
class _HistoryEntry:
    post_id: int
    timestamp: float
    author: int
    generated: GeneratedText


class _CommunityHistory:
    """Recent posts per community, for duplicate-source sampling."""

    def __init__(self, retention: float):
        self.retention = retention
        self._entries: dict[int, list[_HistoryEntry]] = {}
        self._all: list[_HistoryEntry] = []

    def add(self, community: int, entry: _HistoryEntry) -> None:
        self._entries.setdefault(community, []).append(entry)
        self._all.append(entry)

    def _trim(self, entries: list[_HistoryEntry], now: float) -> None:
        cutoff = now - self.retention
        drop = 0
        while drop < len(entries) and entries[drop].timestamp < cutoff:
            drop += 1
        if drop:
            del entries[:drop]

    def pick(
        self,
        rng: random.Random,
        now: float,
        *,
        community: int | None,
        max_lag: float,
    ) -> _HistoryEntry | None:
        """A random entry no older than ``max_lag``; community-scoped when
        ``community`` is given, global otherwise."""
        entries = self._all if community is None else self._entries.get(community, [])
        self._trim(entries, now)
        cutoff = now - max_lag
        eligible_start = 0
        for i in range(len(entries) - 1, -1, -1):
            if entries[i].timestamp < cutoff:
                eligible_start = i + 1
                break
        if eligible_start >= len(entries):
            return None
        return entries[rng.randrange(eligible_start, len(entries))]


def _arrival_times(
    rng: random.Random, total_posts: int, config: StreamConfig
) -> list[float]:
    """Sorted arrival times: homogeneous Poisson (uniform order statistics)
    unless bursts are configured, in which case an inhomogeneous process is
    sampled by inverse-CDF over a piecewise-constant rate — rate is
    multiplied by ``1 + intensity`` inside each burst window."""
    if not config.bursts:
        return sorted(rng.uniform(0.0, config.duration) for _ in range(total_posts))

    # Build piecewise-constant rate segments from burst boundaries.
    boundaries = {0.0, config.duration}
    for center, width, _intensity in config.bursts:
        boundaries.add(max(0.0, center - width / 2))
        boundaries.add(min(config.duration, center + width / 2))
    edges = sorted(boundaries)

    def rate_at(t: float) -> float:
        rate = 1.0
        for center, width, intensity in config.bursts:
            if center - width / 2 <= t < center + width / 2:
                rate += intensity
        return rate

    segments = []  # (start, end, cumulative_mass_end)
    mass = 0.0
    for start, end in zip(edges, edges[1:]):
        if end <= start:
            continue
        mass += rate_at((start + end) / 2) * (end - start)
        segments.append((start, end, mass))
    total_mass = mass

    times = []
    for _ in range(total_posts):
        point = rng.random() * total_mass
        previous_mass = 0.0
        for start, end, mass_end in segments:
            if point <= mass_end:
                fraction = (point - previous_mass) / (mass_end - previous_mass)
                times.append(start + fraction * (end - start))
                break
            previous_mass = mass_end
        else:  # numeric edge: place at the very end
            times.append(config.duration)
    times.sort()
    return times


def generate_stream(
    authors: list[int],
    community: dict[int, int],
    generator: TextGenerator,
    factory: DuplicateFactory,
    config: StreamConfig = StreamConfig(),
    *,
    similar_authors: dict[int, list[int]] | None = None,
) -> PostStream:
    """Generate a :class:`PostStream` for ``authors``.

    ``community`` must cover every author; topics are community ids, so
    in-community posts share vocabulary.

    ``similar_authors`` maps each author to the authors likely to echo
    their content (in the real world: accounts following the same things
    post the same stories). When a duplicate is generated, its author is
    drawn from the source author's similar set with probability
    ``config.similar_author_prob`` — this is what ties the content and
    author dimensions together the way real redundancy does. Without the
    map, duplicates fall back to same-community authors.
    """
    if not authors:
        raise DatasetError("need at least one author")
    missing = [a for a in authors if a not in community]
    if missing:
        raise DatasetError(f"authors without a community: {missing[:5]}")

    rng = random.Random(config.seed)
    total_posts = max(
        1,
        round(
            len(authors)
            * config.posts_per_author_per_day
            * (config.duration / 86_400.0)
        ),
    )

    times = _arrival_times(rng, total_posts, config)

    # Heterogeneous per-author rates: lognormal weights.
    weights = [rng.lognormvariate(0.0, 0.6) for _ in authors]
    cumulative = list(accumulate(weights))
    total_weight = cumulative[-1]

    def pick_author() -> int:
        return authors[bisect_right(cumulative, rng.random() * total_weight)]

    history = _CommunityHistory(retention=config.far_lag_max)
    posts: list[Post] = []
    provenance: dict[int, Provenance] = {}
    author_set = set(authors)
    members_by_community: dict[int, list[int]] = {}
    for a in authors:
        members_by_community.setdefault(community[a], []).append(a)

    def pick_echoing_author(source_author: int) -> int:
        """Author of a duplicate: usually someone similar to the source."""
        if rng.random() < config.similar_author_prob:
            if similar_authors is not None:
                candidates = similar_authors.get(source_author)
                if candidates:
                    # Include the source author: self-reposts are common.
                    idx = rng.randrange(len(candidates) + 1)
                    return source_author if idx == len(candidates) else candidates[idx]
                return source_author
            # Fallback without a similarity map: same community.
            return rng.choice(members_by_community[community[source_author]])
        return pick_author()

    for post_id, timestamp in enumerate(times):
        author = pick_author()
        author_community = community[author]

        source: _HistoryEntry | None = None
        if rng.random() < config.duplicate_prob:
            if rng.random() < config.near_prob:
                max_lag = min(
                    rng.expovariate(1.0 / config.near_lag_mean) + 30.0,
                    config.far_lag_max,
                )
            else:
                max_lag = config.far_lag_max
            source = history.pick(rng, timestamp, community=None, max_lag=max_lag)

        if source is not None:
            author = pick_echoing_author(source.author)
            if author not in author_set:
                author = source.author
            author_community = community[author]
            if rng.random() < config.redundant_plan_prob:
                pair: DuplicatePair = factory.redundant_variant(
                    source.generated, rng=rng
                )
            else:
                pair = factory.variant_of(
                    source.generated, intensity=0.55 + rng.random() * 0.45, rng=rng
                )
            generated = GeneratedText(
                text=pair.variant,
                topic=source.generated.topic,
                url_target=source.generated.url_target,
            )
            provenance[post_id] = Provenance(
                source_post_id=source.post_id,
                damage=pair.damage,
                redundant=pair.redundant,
                operators=pair.operators,
            )
        else:
            generated = generator.fresh(author_community, rng=rng)

        posts.append(Post.create(post_id, author, generated.text, timestamp))
        history.add(
            author_community, _HistoryEntry(post_id, timestamp, author, generated)
        )

    return PostStream(posts=posts, provenance=provenance, community=dict(community))
