"""End-to-end dataset assembly (paper §6.1 pipeline).

Reproduces the paper's data pipeline on the synthetic substrate:

1. generate a follower network (stand-in for the 660k-author graph of [22]);
2. BFS-sample the evaluation author set (paper: 20,150 authors);
3. build followee vectors and precompute all-pairs similarities;
4. generate a one-day post stream for the sampled authors (paper: 213,175
   tweets, ~10 per author per day).

A :class:`Dataset` caches the similarity table so the λa sweeps of the
evaluation build each thresholded author graph without recomputing cosines,
and derives the M-SPSD subscription table from the follower relation (every
author is a user following their followees, as in §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..authors import AuthorGraph, FriendVectors, pairwise_similarities
from ..errors import DatasetError
from ..multiuser import SubscriptionTable
from .duplication import DuplicateFactory
from .network import FollowerNetwork, NetworkConfig, generate_network
from .sampling import bfs_sample
from .stream import PostStream, StreamConfig, generate_stream
from .textgen import TextGenerator
from .vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class DatasetConfig:
    """Scale and seed knobs for a full dataset build.

    The defaults are a laptop-scale rendition of the paper's setup — the
    ratios (posts per author, communities, duplicate rates) match, the
    absolute counts are smaller so pure-Python runs stay interactive. Use
    ``paper_scale()`` in :mod:`repro.eval.experiments` presets for larger
    runs.
    """

    network: NetworkConfig = field(default_factory=NetworkConfig)
    stream: StreamConfig = field(default_factory=StreamConfig)
    sample_size: int = 1000
    vocabulary_seed: int = 7
    sampling_seed: int = 5

    def __post_init__(self) -> None:
        if self.sample_size > self.network.n_authors:
            raise DatasetError(
                f"sample_size {self.sample_size} exceeds network size "
                f"{self.network.n_authors}"
            )


@dataclass(slots=True)
class Dataset:
    """A fully built evaluation dataset."""

    config: DatasetConfig
    network: FollowerNetwork
    authors: list[int]
    vectors: FriendVectors
    similarities: dict[tuple[int, int], float]
    stream: PostStream
    _graph_cache: dict[float, AuthorGraph] = field(default_factory=dict)

    @property
    def posts(self):
        return self.stream.posts

    def graph(self, lambda_a: float) -> AuthorGraph:
        """The author similarity graph at threshold ``lambda_a`` (cached)."""
        cached = self._graph_cache.get(lambda_a)
        if cached is None:
            cached = AuthorGraph.from_similarities(
                self.authors, self.similarities, lambda_a
            )
            self._graph_cache[lambda_a] = cached
        return cached

    def subscriptions(self) -> SubscriptionTable:
        """M-SPSD subscriptions: each sampled author is a user following
        their followees, restricted to the sampled set (§6.3 does exactly
        this restriction: "we ignored the subscriptions that are not in this
        set"). Users with no in-sample followees are dropped, as a user with
        an empty stream is undefined."""
        sampled = set(self.authors)
        table: dict[int, frozenset[int]] = {}
        for user in self.authors:
            follows = frozenset(self.network.followees[user] & sampled)
            if follows:
                table[user] = follows
        return SubscriptionTable(table)


def build_dataset(config: DatasetConfig = DatasetConfig()) -> Dataset:
    """Run the full §6.1 pipeline and return the assembled dataset."""
    network = generate_network(config.network)
    authors = bfs_sample(network, config.sample_size, seed=config.sampling_seed)
    # Friend vectors use the *full* followee sets (the paper computes author
    # similarity from complete friend vectors; only the author set is
    # sampled, not their friendships).
    vectors = FriendVectors({a: network.followees[a] for a in authors})
    similarities = pairwise_similarities(vectors)
    vocabulary = Vocabulary(
        topics=config.network.n_communities, seed=config.vocabulary_seed
    )
    generator = TextGenerator(vocabulary, seed=config.vocabulary_seed + 1)
    factory = DuplicateFactory(generator, seed=config.vocabulary_seed + 2)
    # Who echoes whom: authors with followee cosine >= 0.25 — slightly wider
    # than the default author-graph cut (similarity 0.3 at lambda_a = 0.7),
    # so a minority of duplicates comes from borderline-similar authors and
    # the author dimension has real work to do in the lambda_a sweeps.
    similar_authors: dict[int, list[int]] = {}
    for (a, b), sim in similarities.items():
        if sim >= 0.25:
            similar_authors.setdefault(a, []).append(b)
            similar_authors.setdefault(b, []).append(a)
    stream = generate_stream(
        authors,
        {a: network.community[a] for a in authors},
        generator,
        factory,
        config.stream,
        similar_authors=similar_authors,
    )
    return Dataset(
        config=config,
        network=network,
        authors=authors,
        vectors=vectors,
        similarities=similarities,
        stream=stream,
    )


def small_dataset(seed: int = 42) -> Dataset:
    """A deliberately tiny dataset for tests and examples (fast to build).

    Sized so the author graph sits in the paper's *sparse* regime
    (average degree a few units, cliques smaller than neighbourhoods) —
    the regime the relative-performance claims are about.
    """
    return build_dataset(
        DatasetConfig(
            network=NetworkConfig(
                n_authors=400, n_communities=20, mean_followees=25, seed=seed
            ),
            stream=StreamConfig(
                duration=6 * 3600.0, posts_per_author_per_day=16.0, seed=seed + 1
            ),
            sample_size=250,
        )
    )
