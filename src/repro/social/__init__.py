"""Synthetic social-data substrate (replaces the paper's Twitter crawl).

Public surface:

* :class:`Vocabulary`, :class:`TextGenerator` — tweet-like text.
* :class:`DuplicateFactory`, :class:`DuplicatePair` — labelled
  near-duplicates (the user-study ground truth).
* :func:`generate_network` / :class:`FollowerNetwork` — follower graphs.
* :func:`bfs_sample` — the §6.1 BFS author sampler.
* :func:`generate_stream` / :class:`PostStream` — Poisson post streams.
* :func:`build_dataset` / :class:`Dataset` — the full pipeline.
* :func:`interleave_churn` — weave follow/unfollow churn into a stream.
"""

from .dataset import Dataset, DatasetConfig, build_dataset, small_dataset
from .events import ChurnConfig, interleave_churn
from .duplication import (
    REDUNDANT_DAMAGE_LIMIT,
    DuplicateFactory,
    DuplicatePair,
    Perturbation,
)
from .network import FollowerNetwork, NetworkConfig, generate_network
from .sampling import bfs_sample
from .stream import PostStream, Provenance, StreamConfig, generate_stream
from .textgen import GeneratedText, TextGenerator, random_handle, random_short_url
from .vocabulary import Vocabulary, ZipfSampler, build_word_list

__all__ = [
    "REDUNDANT_DAMAGE_LIMIT",
    "ChurnConfig",
    "Dataset",
    "DatasetConfig",
    "DuplicateFactory",
    "DuplicatePair",
    "FollowerNetwork",
    "GeneratedText",
    "NetworkConfig",
    "Perturbation",
    "PostStream",
    "Provenance",
    "StreamConfig",
    "TextGenerator",
    "Vocabulary",
    "ZipfSampler",
    "bfs_sample",
    "build_dataset",
    "build_word_list",
    "generate_network",
    "generate_stream",
    "interleave_churn",
    "random_handle",
    "random_short_url",
    "small_dataset",
]
