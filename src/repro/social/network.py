"""Synthetic follower–followee network generator.

Stand-in for the Twitter social graph of Wang et al. [22] that the paper
samples. The generator produces a directed "who follows whom" relation with
the two structural features the author-similarity machinery depends on:

* **Community structure** — authors cluster into communities and mostly
  follow accounts popular *within their community*, so in-community author
  pairs share followees and get high cosine similarity (the author-graph
  edges), while cross-community pairs share little (near-zero similarity).
  This yields the heavy-tailed similarity CCDF of the paper's Figure 9.
* **Popularity skew** — within a community, follow targets are chosen with
  a Zipf preference for low-rank (popular) members, and a small set of
  global celebrities is followed from everywhere, creating hubs and the
  connectedness BFS sampling (§6.1) relies on.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from ..errors import DatasetError


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Knobs of the follower-network generator.

    Attributes:
        n_authors: accounts in the universe.
        n_communities: number of communities (authors assigned uniformly).
        mean_followees: average out-degree (accounts followed per author).
        in_community_prob: *maximum* probability a follow edge targets the
            author's own community. Each author draws a personal affinity in
            [min_community_affinity, in_community_prob]; heterogeneous
            affinity is what gives the similarity distribution its heavy
            tail (only focused-author pairs become similar) — the paper's
            Figure 9 shape.
        min_community_affinity: lower bound of the per-author affinity draw.
        celebrity_fraction: fraction of accounts that are global celebrities.
        zipf_exponent: popularity skew of in-community follow targets.
        seed: RNG seed; the network is fully deterministic given the config.
    """

    n_authors: int = 2000
    n_communities: int = 16
    mean_followees: int = 60
    in_community_prob: float = 0.95
    min_community_affinity: float = 0.2
    celebrity_fraction: float = 0.01
    zipf_exponent: float = 0.9
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_authors < 2:
            raise DatasetError(f"need at least 2 authors, got {self.n_authors}")
        if self.n_communities < 1 or self.n_communities > self.n_authors:
            raise DatasetError(
                f"n_communities must be in [1, n_authors], got {self.n_communities}"
            )
        if not 0.0 <= self.in_community_prob <= 1.0:
            raise DatasetError("in_community_prob must be in [0, 1]")
        if not 0.0 <= self.min_community_affinity <= self.in_community_prob:
            raise DatasetError(
                "min_community_affinity must be in [0, in_community_prob]"
            )
        if self.mean_followees < 1:
            raise DatasetError("mean_followees must be >= 1")


@dataclass(frozen=True, slots=True)
class FollowerNetwork:
    """The generated relation plus the community assignment.

    ``followees[a]`` is the set of accounts ``a`` follows (out-edges);
    ``community[a]`` the community id of ``a``.
    """

    followees: dict[int, frozenset[int]]
    community: dict[int, int]
    celebrities: frozenset[int]

    @property
    def n_authors(self) -> int:
        return len(self.followees)

    def followers_of(self, author: int) -> set[int]:
        """Inverse relation (computed on demand; used by BFS sampling)."""
        return {a for a, f in self.followees.items() if author in f}

    def members_of(self, community_id: int) -> list[int]:
        return [a for a, c in self.community.items() if c == community_id]


class _ZipfPicker:
    """Zipf-weighted random member of a fixed list."""

    __slots__ = ("members", "_cumulative", "_total")

    def __init__(self, members: list[int], exponent: float):
        self.members = members
        weights = [1.0 / (rank**exponent) for rank in range(1, len(members) + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def pick(self, rng: random.Random) -> int:
        return self.members[bisect_right(self._cumulative, rng.random() * self._total)]


def generate_network(config: NetworkConfig) -> FollowerNetwork:
    """Generate a follower network per ``config`` (deterministic)."""
    rng = random.Random(config.seed)
    authors = list(range(config.n_authors))
    community = {a: rng.randrange(config.n_communities) for a in authors}

    n_celebrities = max(1, int(config.n_authors * config.celebrity_fraction))
    celebrities = frozenset(rng.sample(authors, n_celebrities))
    celebrity_list = sorted(celebrities)

    members: dict[int, list[int]] = {c: [] for c in range(config.n_communities)}
    for a in authors:
        members[community[a]].append(a)
    # Popularity rank within a community is just member order, shuffled once
    # so rank is independent of the id.
    pickers: dict[int, _ZipfPicker] = {}
    for cid, group in members.items():
        rng.shuffle(group)
        pickers[cid] = _ZipfPicker(group, config.zipf_exponent)

    followees: dict[int, frozenset[int]] = {}
    span = config.in_community_prob - config.min_community_affinity
    for a in authors:
        # Out-degree ~ geometric-ish spread around the mean.
        target_count = max(3, int(rng.expovariate(1.0 / config.mean_followees)) + 3)
        # Per-author community affinity: squaring the uniform draw skews
        # mass toward eclectic authors, leaving a focused minority whose
        # pairs carry the similarity tail.
        affinity = config.min_community_affinity + span * rng.random() ** 2
        picked: set[int] = set()
        picker = pickers[community[a]]
        attempts = 0
        while len(picked) < target_count and attempts < target_count * 8:
            attempts += 1
            roll = rng.random()
            if roll < affinity:
                candidate = picker.pick(rng)
            elif roll < affinity + 0.1 and celebrity_list:
                candidate = rng.choice(celebrity_list)
            else:
                candidate = rng.randrange(config.n_authors)
            if candidate != a:
                picked.add(candidate)
        followees[a] = frozenset(picked)

    return FollowerNetwork(
        followees=followees, community=community, celebrities=celebrities
    )
