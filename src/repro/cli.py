"""Command-line interface.

Three modes:

* **experiments** — regenerate any paper figure/table::

      python -m repro list
      python -m repro figure11 --scale medium
      python -m repro all

* **diversify** — run an algorithm over a JSONL post trace::

      python -m repro diversify --posts posts.jsonl --graph graph.json \
          --algorithm cliquebin --lambda-t 1800 --output shown.jsonl

  or over a **mixed event trace** (posts + follow/unfollow churn), with
  the author graph derived live from the follow relation::

      python -m repro diversify --events events.jsonl --friends friends.json \
          --algorithm cliquebin --subscriptions subscriptions.json

* **generate** — emit a synthetic trace (posts + graph + subscriptions)
  for trying the tool without your own data::

      python -m repro generate --out-dir ./trace --scale small

* **experiments** — run a scenario × engine matrix of adversarial
  workloads with cross-checked receiver sets, and gate the perf
  trajectory (see ``EXPERIMENTS.md``)::

      python -m repro experiments --matrix smoke --out report.json
      python -m repro experiments --matrix smoke --check
      python -m repro experiments --list

* **serve** — run the end-to-end feed service: fanout-on-write per-user
  mailboxes over any multi-user engine, with a paginated HTTP read path
  (plus ``/metrics`` and ``/healthz`` on the same port)::

      python -m repro serve --graph graph.json \
          --subscriptions subscriptions.json --algorithm s_unibin --port 8080
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .eval import ABLATIONS, EXPERIMENTS, SCALES


def _experiment_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firehose",
        description=(
            "Reproduce experiments from 'Slowing the Firehose: "
            "Multi-Dimensional Diversity on Social Post Streams' (EDBT 2016)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="medium",
        help="synthetic dataset scale (default: medium)",
    )
    return parser


def _diversify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firehose diversify",
        description="Diversify a JSONL post trace with an SPSD algorithm",
    )
    parser.add_argument("--posts", help="input posts.jsonl")
    parser.add_argument(
        "--events",
        help="mixed events.jsonl (post/follow/unfollow records): run in "
        "dynamic mode, deriving the author graph from --friends and "
        "migrating live state on every effective topology change",
    )
    parser.add_argument(
        "--graph",
        help="author graph.json; omit only with --lambda-a 1 (author dim off)",
    )
    parser.add_argument(
        "--friends",
        help="friends.json (author -> followees): the initial follow "
        "relation dynamic mode cuts its similarity graph from (required "
        "with --events)",
    )
    parser.add_argument(
        "--algorithm",
        default="unibin",
        help="unibin | neighborbin | cliquebin | indexed_unibin; with "
        "--subscriptions also multi-user names (m_*, s_*, p_*)",
    )
    parser.add_argument(
        "--subscriptions",
        help="subscriptions.json: run in multi-user mode, emitting per-post "
        "receiver sets instead of a single diversified trace",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded parallel engine "
        "(multi-user mode; 1 = in-process fast path)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=512,
        help="posts shipped per shard round-trip in multi-user mode "
        "(amortizes IPC; 1 = per-post offers)",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "pipe"),
        default="auto",
        help="shard batch transport for the parallel engines: shm packs "
        "posts into per-shard shared-memory rings, pipe pickles them; "
        "auto (default) picks shm when the platform supports it",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="self-healing worker pool: heartbeat liveness, crash recovery "
        "by checkpoint + journal replay, and quarantine of poison shards "
        "into in-parent serial execution (multi-user sharded engines)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="supervised mode: seconds a shard may sit idle before a "
        "liveness ping (default 1.0)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="supervised mode: respawn budget per shard before it is "
        "degraded to in-parent serial execution (default 3)",
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=120.0,
        help="seconds to wait on a worker reply before declaring the "
        "shard dead (supervised mode recovers; plain mode raises)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        help="accounted-byte budget: attach the memory governor, which "
        "degrades one rung at a time past the budget (spill tiered "
        "windows, then cap probe fan-out) and releases with hysteresis",
    )
    parser.add_argument(
        "--spill-dir",
        help="directory for tiered window storage: bins keep a bounded "
        "in-memory head and spill cold segments to disk here (identical "
        "verdicts; gives the governor's spill rung something to free)",
    )
    parser.add_argument("--lambda-c", type=int, default=18, help="content bits")
    parser.add_argument("--lambda-t", type=float, default=1800.0, help="seconds")
    parser.add_argument("--lambda-a", type=float, default=0.7, help="author distance")
    parser.add_argument("--output", help="write the diversified trace here (JSONL)")
    parser.add_argument(
        "--on-error",
        choices=("strict", "skip", "quarantine"),
        default="strict",
        help="bad JSONL records: abort (strict), drop with counts (skip), "
        "or retain in a dead-letter sink (quarantine)",
    )
    parser.add_argument(
        "--quarantine-out",
        help="write quarantined records (with line numbers and reasons) "
        "to this JSONL dead-letter file",
    )
    parser.add_argument(
        "--max-skew",
        type=float,
        default=0.0,
        help="reorder-buffer window in seconds: absorb out-of-order posts "
        "displaced up to this much (default 0 = no buffering)",
    )
    parser.add_argument(
        "--order-policy",
        choices=("drop", "clamp", "raise"),
        default="raise",
        help="posts arriving beyond --max-skew: drop (counted), clamp "
        "timestamps forward, or raise (default, the strict stream model)",
    )
    parser.add_argument(
        "--checkpoint-out",
        help="write a JSON snapshot of the pipeline state after the run "
        "(resume with --resume-from)",
    )
    parser.add_argument(
        "--resume-from",
        help="restore pipeline state from a --checkpoint-out snapshot "
        "before processing (its skew/policy settings take precedence)",
    )
    parser.add_argument(
        "--metrics-out",
        help="instrument the run and write a JSON metrics snapshot here "
        "(counters match the printed stats exactly)",
    )
    parser.add_argument(
        "--trace-out",
        help="write a sampled JSONL span log of per-post offer decisions "
        "(implies instrumentation)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of offer spans to record in --trace-out "
        "(seeded, deterministic across reruns; default 1.0 = all)",
    )
    return parser


def _print_supervision_summary(engine) -> None:
    """One stderr line of self-healing accounting, when supervised."""
    status_of = getattr(engine, "supervision_status", None)
    status = status_of() if callable(status_of) else None
    if status is None:
        return
    line = (
        f"supervision: {status['live_shards']}/{status['shards']} shards "
        f"live, {status['restarts']} restarts, "
        f"{status['checkpoints']} checkpoints, "
        f"{status['replayed_commands']} journal commands replayed"
    )
    if status["degraded_shards"]:
        line += (
            f"; shards {sorted(status['degraded_shards'])} degraded to "
            "in-parent serial"
        )
    print(line, file=sys.stderr)


def _storage_config(args):
    """A :class:`repro.storage.SpillConfig` from --spill-dir (or None)."""
    if not args.spill_dir:
        return None
    from .storage import SpillConfig

    return SpillConfig(args.spill_dir)


def _attach_governor(args, engine):
    """A :class:`repro.resilience.MemoryGovernor` from --memory-budget
    (or None). The CLI has no overload controller, so the ladder tops
    out at the probe rung."""
    if args.memory_budget is None:
        return None
    from .resilience import GovernorConfig, MemoryGovernor

    return MemoryGovernor(engine, GovernorConfig(budget_bytes=args.memory_budget))


def _print_governor_summary(governor) -> None:
    """One stderr line of memory-governor accounting, when attached."""
    if governor is None:
        return
    status = governor.status()
    print(
        f"memory: {status['total_bytes']:,}/{status['budget_bytes']:,} "
        f"accounted bytes, level {status['level']}, "
        f"{status['escalations']} escalations / {status['releases']} releases",
        file=sys.stderr,
    )


def _supervision_kwargs(args) -> dict:
    """Engine kwargs for the --supervise / --shard-deadline flags.

    ``make_multiuser`` and ``restore_engine`` take the same three
    keywords, so both construction paths share this translation."""
    if not args.supervise:
        return {"shard_deadline": args.shard_deadline}
    from .supervise import SupervisionConfig

    return {
        "supervised": True,
        "supervision": SupervisionConfig(
            heartbeat_interval=args.heartbeat_interval,
            deadline=args.shard_deadline,
            max_restarts=args.max_restarts,
        ),
        "shard_deadline": args.shard_deadline,
    }


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firehose serve",
        description=(
            "Serve diversified feeds over HTTP: POST /posts fans accepted "
            "posts out into bounded per-user mailboxes, GET /feed pages "
            "them with cursor pagination and an impression filter"
        ),
    )
    parser.add_argument("--graph", required=True, help="author graph.json")
    parser.add_argument(
        "--subscriptions", required=True, help="subscriptions.json"
    )
    parser.add_argument(
        "--algorithm",
        default="s_unibin",
        help="a multi-user engine name (m_*, s_*, p_*) or a bare algorithm "
        "(sharded p_* is picked); default s_unibin",
    )
    parser.add_argument(
        "--posts",
        help="preload this posts.jsonl through the write path before "
        "accepting traffic (mailboxes start warm)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    parser.add_argument(
        "--mailbox-capacity",
        type=int,
        default=1024,
        help="max entries per user mailbox (oldest evicted past it)",
    )
    parser.add_argument(
        "--mailbox-window",
        type=float,
        help="stream-time seconds an entry stays servable (default: the "
        "engine window lambda-t)",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument(
        "--transport", choices=("auto", "shm", "pipe"), default="auto"
    )
    parser.add_argument("--supervise", action="store_true")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0)
    parser.add_argument("--max-restarts", type=int, default=3)
    parser.add_argument("--shard-deadline", type=float, default=120.0)
    parser.add_argument(
        "--memory-budget",
        type=int,
        help="accounted-byte budget for the memory governor (mailbox bytes "
        "join the engine windows in the same budget)",
    )
    parser.add_argument("--spill-dir", help="tiered window spill directory")
    parser.add_argument(
        "--max-delay",
        type=float,
        help="ingest backlog (seconds) past which POST /posts sheds with "
        "429 + Retry-After; omit to never shed",
    )
    parser.add_argument(
        "--shed-policy", choices=("drop", "passthrough"), default="drop"
    )
    parser.add_argument(
        "--wal-dir",
        help="turn on crash-safe durability: write-ahead log + rolling "
        "snapshots in this directory (see docs/operations.md)",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=1024,
        help="logged records between rolling snapshots (bounds WAL replay)",
    )
    parser.add_argument(
        "--recover",
        action="store_true",
        help="replay snapshot + WAL tail from --wal-dir before serving "
        "(required when the directory already holds state)",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="interval",
        help="WAL fsync policy: always = every append survives power "
        "loss; interval = group commit (default); never = test only",
    )
    parser.add_argument(
        "--fsync-interval",
        type=int,
        default=64,
        help="appends per group commit under --fsync interval",
    )
    parser.add_argument(
        "--keep-snapshots",
        type=int,
        default=2,
        help=">= 2 lets recovery fall back past a corrupt newest snapshot",
    )
    parser.add_argument(
        "--dedup-window",
        type=int,
        default=1024,
        help="most-recent idempotency keys remembered for exactly-once "
        "POST /posts retries",
    )
    parser.add_argument(
        "--retry-jitter",
        type=float,
        default=0.0,
        help="spread 429 Retry-After by up to this fraction (0.25 = +25%%) "
        "so shed clients do not retry in lockstep",
    )
    parser.add_argument(
        "--jitter-seed",
        type=int,
        help="seed the Retry-After jitter RNG (reproducible backoff)",
    )
    parser.add_argument(
        "--request-deadline",
        type=float,
        help="per-request time budget in seconds; an overrunning handler "
        "answers 504 (retry with the same idempotency key)",
    )
    parser.add_argument("--lambda-c", type=int, default=18, help="content bits")
    parser.add_argument("--lambda-t", type=float, default=1800.0, help="seconds")
    parser.add_argument("--lambda-a", type=float, default=0.7, help="author distance")
    return parser


def _run_serve(argv: list[str]) -> int:
    import signal
    import threading

    from .core import ALGORITHMS, Thresholds
    from .feed import FeedService, MailboxConfig
    from .io import read_graph_json, read_posts_jsonl, read_subscriptions_json
    from .multiuser import MULTIUSER_NAMES, PARALLEL_NAMES, make_multiuser
    from .obs import Registry
    from .service import DiversificationService

    args = _serve_parser().parse_args(argv)
    name = args.algorithm
    if name in ALGORITHMS:
        name = f"p_{name}"
    if name not in MULTIUSER_NAMES + PARALLEL_NAMES:
        print(
            f"unknown multi-user algorithm {args.algorithm!r}; choose a bare "
            f"algorithm ({', '.join(ALGORITHMS)}) or one of "
            f"{MULTIUSER_NAMES + PARALLEL_NAMES}",
            file=sys.stderr,
        )
        return 2
    thresholds = Thresholds(
        lambda_c=args.lambda_c, lambda_t=args.lambda_t, lambda_a=args.lambda_a
    )
    graph = read_graph_json(args.graph)
    subscriptions = read_subscriptions_json(args.subscriptions)
    engine = make_multiuser(
        name,
        thresholds,
        graph,
        subscriptions,
        workers=args.workers,
        batch_size=args.batch_size,
        storage=_storage_config(args),
        transport=args.transport,
        **_supervision_kwargs(args),
    )
    overload = None
    if args.max_delay is not None:
        from .resilience import OverloadController

        overload = OverloadController(
            max_delay=args.max_delay, policy=args.shed_policy
        )
    service = DiversificationService(engine, overload=overload)
    governor = _attach_governor(args, engine)
    service.governor = governor
    if governor is not None and overload is not None:
        governor.overload = overload
    window = (
        args.mailbox_window if args.mailbox_window is not None else args.lambda_t
    )
    durability = None
    if args.wal_dir:
        import json as _json
        import os as _os
        from pathlib import Path as _Path

        from .feed import DurabilityConfig
        from .resilience import FeedFaultPlan

        wal_dir = _Path(args.wal_dir)
        has_state = wal_dir.is_dir() and any(wal_dir.iterdir())
        if has_state and not args.recover:
            print(
                f"{wal_dir} already holds WAL/snapshot state; pass --recover "
                "to replay it (or point --wal-dir at an empty directory)",
                file=sys.stderr,
            )
            return 2
        fault_plan = None
        plan_json = _os.environ.get("REPRO_FEED_FAULT_PLAN")
        if plan_json:
            fault_plan = FeedFaultPlan.from_dict(_json.loads(plan_json))
        durability = DurabilityConfig(
            wal_dir=wal_dir,
            snapshot_every=args.snapshot_interval,
            fsync=args.fsync,
            fsync_interval=args.fsync_interval,
            keep_snapshots=args.keep_snapshots,
            dedup_window=args.dedup_window,
            fault_plan=fault_plan,
        )
    elif args.recover:
        print("--recover needs --wal-dir", file=sys.stderr)
        return 2
    feed = FeedService(
        service,
        mailboxes=MailboxConfig(capacity=args.mailbox_capacity, window=window),
        durability=durability,
        retry_jitter=args.retry_jitter,
        jitter_seed=args.jitter_seed,
    )
    service.bind_metrics(Registry())
    feed.bind_metrics()

    if args.recover:
        report = feed.recover()
        print(
            "recovered from {snap}: replayed {records} WAL records over "
            "{segments} segment(s), {torn} torn bytes truncated, "
            "{skipped} snapshot(s) skipped, {secs:.3f}s".format(
                snap=report.used_snapshot or "empty state",
                records=report.records_total,
                segments=report.segments_replayed,
                torn=report.torn_bytes,
                skipped=len(report.snapshots_skipped),
                secs=report.duration_seconds,
            ),
            file=sys.stderr,
        )

    if args.posts:
        summary = feed.replay(read_posts_jsonl(args.posts))
        print(
            f"preloaded {summary['accepted']} posts "
            f"({summary['shed']} shed, {summary['deliveries']} deliveries)",
            file=sys.stderr,
        )

    # Handlers go in before the banner: the banner is the "ready" signal
    # supervisors key on, so a SIGTERM raced right after it must already
    # land on the graceful path, not the default (no-flush) death.
    stopping = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stopping.set())

    server = feed.serve(
        host=args.host, port=args.port, request_deadline=args.request_deadline
    )
    host, port = server.address
    print(
        f"{engine.name}: serving feeds on http://{host}:{port} "
        f"({len(feed.store.users)} users)",
        flush=True,
    )
    stopping.wait()
    server.stop()
    # The shutdown flush is load-bearing: SIGTERM must leave a complete
    # final snapshot + fsync'd WAL, and a failed flush must be *loud* —
    # exiting zero here would report durable state that does not exist.
    flush_error: Exception | None = None
    try:
        feed.close()
    except Exception as error:  # noqa: BLE001 - any flush failure is fatal
        flush_error = error
        print(f"durability flush FAILED on shutdown: {error}", file=sys.stderr)
    stats = feed.stats()
    print(
        "feed: {received} posts received ({processed} processed, {shed} "
        "shed, {deduped} deduplicated), {deliveries} deliveries to {boxes} "
        "mailboxes; {reads} reads served {served} entries "
        "({filtered} impression-filtered)".format(
            received=stats["posts"]["received"],
            processed=stats["posts"]["processed"],
            shed=stats["posts"]["shed"],
            deduped=stats["posts"]["deduped"],
            deliveries=stats["deliveries"],
            boxes=stats["mailboxes"]["materialized"],
            reads=stats["reads"]["count"],
            served=stats["reads"]["entries_served"],
            filtered=stats["reads"]["entries_filtered"],
        )
    )
    durable = stats.get("durability")
    if durable is not None:
        state = "FLUSH FAILED" if flush_error is not None else "flushed clean"
        print(
            "durability: {state}; {records} WAL records "
            "({fsyncs} fsyncs, segment {segment}), {snaps} snapshot(s) "
            "written ({fails} failed), {hits} idempotent retries "
            "answered".format(
                state=state,
                records=durable["wal"]["records_total"],
                fsyncs=durable["wal"]["fsyncs_total"],
                segment=durable["wal"]["segment"],
                snaps=durable["snapshots"]["taken"],
                fails=durable["snapshots"]["failures"],
                hits=durable["dedup"]["hits"],
            )
        )
    _print_supervision_summary(engine)
    _print_governor_summary(governor)
    return 1 if flush_error is not None else 0


def _generate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firehose generate",
        description="Generate a synthetic trace (posts/graph/subscriptions)",
    )
    parser.add_argument("--out-dir", required=True, help="output directory")
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument(
        "--lambda-a",
        type=float,
        default=0.7,
        help="author-distance threshold the exported graph is cut at",
    )
    parser.add_argument(
        "--churn-rate",
        type=float,
        default=0.05,
        help="mean follow/unfollow events per post in the exported mixed "
        "events.jsonl (0 disables the dynamic-mode files)",
    )
    return parser


def _run_diversify(argv: list[str]) -> int:
    from .core import Thresholds, make_diversifier
    from .io import post_to_dict, read_graph_json, read_posts_jsonl
    from .resilience import (
        Quarantine,
        ResilientIngest,
        load_checkpoint,
        save_checkpoint,
    )

    args = _diversify_parser().parse_args(argv)
    if bool(args.posts) == bool(args.events):
        print("pass exactly one of --posts or --events", file=sys.stderr)
        return 2
    if args.events:
        return _run_diversify_events(args)
    if args.subscriptions:
        return _run_diversify_multiuser(args)
    if args.workers != 1 or args.supervise:
        print(
            "--workers/--supervise apply to the multi-user sharded engine; "
            "pass --subscriptions to enable them",
            file=sys.stderr,
        )
        return 2
    thresholds = Thresholds(
        lambda_c=args.lambda_c, lambda_t=args.lambda_t, lambda_a=args.lambda_a
    )
    graph = read_graph_json(args.graph) if args.graph else None
    sink = Quarantine()
    if args.resume_from:
        if args.spill_dir:
            print(
                "note: --spill-dir is ignored with --resume-from; the "
                "checkpointed engine keeps its windows in memory",
                file=sys.stderr,
            )
        pipeline = ResilientIngest.restore(
            load_checkpoint(args.resume_from), graph=graph, quarantine=sink
        )
        resumed_name = getattr(pipeline.engine, "name", None)
        if resumed_name is not None and resumed_name != args.algorithm:
            print(
                f"note: resuming {resumed_name!r} from {args.resume_from}; "
                f"--algorithm {args.algorithm!r} ignored",
                file=sys.stderr,
            )
    else:
        diversifier = make_diversifier(
            args.algorithm, thresholds, graph, storage=_storage_config(args)
        )
        pipeline = ResilientIngest(
            diversifier,
            max_skew=args.max_skew,
            late_policy=args.order_policy,
            quarantine=sink,
        )
    governor = _attach_governor(args, pipeline.engine)

    registry = None
    tracer = None
    if args.metrics_out or args.trace_out:
        from . import simhash
        from .obs import OfferTracer, Registry, write_json_snapshot

        registry = Registry()
        if args.trace_out:
            tracer = OfferTracer(args.trace_out, sample=args.trace_sample)
        # Bind after any restore so callbacks see the live engine objects.
        pipeline.bind_metrics(registry, tracer=tracer)
        simhash.enable_metrics(registry)

    out_handle = open(args.output, "w", encoding="utf-8") if args.output else None
    try:
        import json

        def emit(events):
            for event in events:
                if event.admitted and out_handle is not None:
                    out_handle.write(
                        json.dumps(post_to_dict(event.post), sort_keys=True)
                    )
                    out_handle.write("\n")

        for post in read_posts_jsonl(
            args.posts, on_error=args.on_error, quarantine=sink
        ):
            emit(pipeline.ingest(post))
            if governor is not None:
                governor.observe()
        emit(pipeline.flush())
    finally:
        if out_handle is not None:
            out_handle.close()

    stats = (
        pipeline.engine.stats
        if not pipeline.is_multiuser
        else pipeline.engine.aggregate_stats()
    )
    print(
        f"{pipeline.engine.name}: {stats.posts_admitted}/{stats.posts_processed} "
        f"posts kept ({100 * (1 - stats.retention_ratio):.1f}% pruned); "
        f"{stats.comparisons:,} comparisons, {stats.insertions:,} insertions"
    )
    _print_governor_summary(governor)
    reorder = pipeline.reorder.counters
    if reorder.reordered or reorder.late_dropped or reorder.late_clamped:
        print(
            f"reorder: {reorder.reordered} out-of-order absorbed, "
            f"{reorder.late_dropped} dropped late, "
            f"{reorder.late_clamped} clamped late "
            f"(peak buffer {reorder.peak_buffered})"
        )
    if len(sink):
        print(
            f"quarantined {len(sink)} records: "
            + ", ".join(f"{r}={c}" for r, c in sorted(sink.by_reason.items()))
        )
    if args.quarantine_out:
        written = sink.write_jsonl(args.quarantine_out)
        print(f"dead-letter file written to {args.quarantine_out} ({written} records)")
    if args.checkpoint_out:
        save_checkpoint(pipeline.checkpoint(), args.checkpoint_out)
        print(f"checkpoint written to {args.checkpoint_out}")
    if registry is not None:
        from . import simhash

        simhash.disable_metrics()
        if args.metrics_out:
            write_json_snapshot(registry, args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out}")
        if tracer is not None:
            tracer.close()
            print(
                f"trace written to {args.trace_out} "
                f"({tracer.spans_written}/{tracer.spans_seen} spans)"
            )
    if args.output:
        print(f"diversified trace written to {args.output}")
    return 0


def _run_diversify_events(args) -> int:
    """Dynamic mode of ``diversify``: consume a mixed post/follow/unfollow
    trace, deriving (and live-migrating) the author graph from the follow
    relation. Single-engine without --subscriptions, multi-user with."""
    import json

    from .core import ALGORITHMS, Post, Thresholds
    from .dynamic import DynamicDiversifier, FollowEvent, UnfollowEvent, read_events_jsonl
    from .io import post_to_dict, read_friends_json, read_subscriptions_json
    from .multiuser import make_multiuser
    from .resilience import (
        Quarantine,
        load_checkpoint,
        restore_engine,
        save_checkpoint,
        snapshot_engine,
    )

    if not args.friends:
        print("--events requires --friends (the initial follow relation)", file=sys.stderr)
        return 2
    if args.graph:
        print(
            "note: --graph is ignored with --events; the graph is derived "
            "from --friends and the event stream",
            file=sys.stderr,
        )
    if args.max_skew or args.trace_out:
        print(
            "--max-skew and --trace-out are single-user pipeline features; "
            "dynamic mode streams strictly ordered events",
            file=sys.stderr,
        )
        return 2
    if args.supervise and not args.subscriptions:
        print(
            "--supervise applies to the multi-user sharded engine; "
            "pass --subscriptions to enable it",
            file=sys.stderr,
        )
        return 2
    if args.spill_dir or args.memory_budget is not None:
        print(
            "--spill-dir/--memory-budget are static-topology features; "
            "dynamic mode rewrites bins wholesale on churn and keeps its "
            "windows in memory",
            file=sys.stderr,
        )
        return 2
    thresholds = Thresholds(
        lambda_c=args.lambda_c, lambda_t=args.lambda_t, lambda_a=args.lambda_a
    )
    friends = read_friends_json(args.friends)
    subscriptions = (
        read_subscriptions_json(args.subscriptions) if args.subscriptions else None
    )
    sink = Quarantine()

    if args.resume_from:
        engine = restore_engine(
            load_checkpoint(args.resume_from),
            subscriptions=subscriptions,
            # --workers > 1 re-shards the restored engine; otherwise the
            # checkpointed pool size is kept.
            workers=args.workers if args.workers > 1 else None,
            **_supervision_kwargs(args),
        )
        print(
            f"note: resuming {engine.name!r} from {args.resume_from}; "
            "--algorithm and the friends file come from the checkpoint",
            file=sys.stderr,
        )
    elif subscriptions is None:
        if args.algorithm not in ALGORITHMS:
            print(
                f"unknown algorithm {args.algorithm!r}; dynamic single-user "
                f"mode takes one of {tuple(ALGORITHMS)}",
                file=sys.stderr,
            )
            return 2
        engine = DynamicDiversifier(args.algorithm, thresholds, friends)
    else:
        name = args.algorithm
        if name in ALGORITHMS:
            name = f"p_{name}"  # bare algorithm → workers decide the layout
        try:
            engine = make_multiuser(
                name,
                thresholds,
                None,
                subscriptions,
                workers=args.workers,
                batch_size=args.batch_size,
                dynamic=True,
                friends=friends,
                **_supervision_kwargs(args),
            )
        except Exception as exc:
            print(str(exc), file=sys.stderr)
            return 2

    registry = None
    if args.metrics_out:
        from . import simhash
        from .obs import Registry

        registry = Registry()
        engine.bind_metrics(registry)
        simhash.enable_metrics(registry)

    multiuser = subscriptions is not None
    deliveries = 0
    admitted = 0
    out_handle = open(args.output, "w", encoding="utf-8") if args.output else None
    try:
        chunk: list[Post] = []

        def drain() -> None:
            nonlocal deliveries, admitted
            if not chunk:
                return
            if multiuser:
                for post, receivers in zip(chunk, engine.offer_batch(chunk)):
                    deliveries += len(receivers)
                    if receivers and out_handle is not None:
                        record = post_to_dict(post)
                        record["receivers"] = sorted(receivers)
                        out_handle.write(json.dumps(record, sort_keys=True))
                        out_handle.write("\n")
            else:
                for post in chunk:
                    if engine.offer(post):
                        admitted += 1
                        if out_handle is not None:
                            out_handle.write(
                                json.dumps(post_to_dict(post), sort_keys=True)
                            )
                            out_handle.write("\n")
            chunk.clear()

        for event in read_events_jsonl(
            args.events, on_error=args.on_error, quarantine=sink
        ):
            if isinstance(event, (FollowEvent, UnfollowEvent)):
                drain()
                engine.apply(event)
            else:
                chunk.append(event)
                if len(chunk) >= args.batch_size:
                    drain()
        drain()

        stats = engine.aggregate_stats() if multiuser else engine.stats
        counts = engine.event_counts
        print(
            f"{engine.name}: {counts['post']} posts, {counts['follow']} follows, "
            f"{counts['unfollow']} unfollows; graph version "
            f"{engine.graph_version} ({engine.migrations} migrations)"
        )
        if multiuser:
            print(
                f"{stats.posts_admitted}/{stats.posts_processed} instance "
                f"offers admitted; {deliveries:,} deliveries to "
                f"{len(subscriptions)} users; {stats.comparisons:,} "
                f"comparisons, {stats.insertions:,} insertions"
            )
            _print_supervision_summary(engine)
        else:
            print(
                f"{stats.posts_admitted}/{stats.posts_processed} posts kept; "
                f"{stats.comparisons:,} comparisons, "
                f"{stats.insertions:,} insertions"
            )
        if len(sink):
            print(
                f"quarantined {len(sink)} records: "
                + ", ".join(f"{r}={c}" for r, c in sorted(sink.by_reason.items()))
            )
        if args.quarantine_out:
            written = sink.write_jsonl(args.quarantine_out)
            print(
                f"dead-letter file written to {args.quarantine_out} "
                f"({written} records)"
            )
        if args.checkpoint_out:
            save_checkpoint(snapshot_engine(engine), args.checkpoint_out)
            print(f"checkpoint written to {args.checkpoint_out}")
        if registry is not None:
            from . import simhash
            from .obs import write_json_snapshot

            simhash.disable_metrics()
            write_json_snapshot(registry, args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out}")
        if args.output:
            kind = "receiver trace" if multiuser else "diversified trace"
            print(f"{kind} written to {args.output}")
    finally:
        if out_handle is not None:
            out_handle.close()
        if hasattr(engine, "close"):
            engine.close()
    return 0


def _run_diversify_multiuser(args) -> int:
    """Multi-user mode of ``diversify``: route every post to the users who
    receive it, through a serial (m_*/s_*) or sharded parallel (p_*)
    engine, batching posts to amortize per-offer — and, with workers > 1,
    IPC — overhead."""
    import json

    from .core import ALGORITHMS, Thresholds
    from .io import (
        post_to_dict,
        read_graph_json,
        read_posts_jsonl,
        read_subscriptions_json,
    )
    from .multiuser import MULTIUSER_NAMES, PARALLEL_NAMES, make_multiuser
    from .resilience import (
        Quarantine,
        load_checkpoint,
        restore_engine,
        save_checkpoint,
        snapshot_engine,
    )

    if not args.graph:
        print("multi-user mode requires --graph", file=sys.stderr)
        return 2
    if args.max_skew or args.trace_out:
        print(
            "--max-skew and --trace-out are single-user pipeline features; "
            "multi-user mode streams strictly ordered posts",
            file=sys.stderr,
        )
        return 2
    thresholds = Thresholds(
        lambda_c=args.lambda_c, lambda_t=args.lambda_t, lambda_a=args.lambda_a
    )
    graph = read_graph_json(args.graph)
    subscriptions = read_subscriptions_json(args.subscriptions)
    sink = Quarantine()

    if args.resume_from:
        if args.spill_dir:
            print(
                "note: --spill-dir is ignored with --resume-from; the "
                "checkpointed engine keeps its windows in memory",
                file=sys.stderr,
            )
        snap = load_checkpoint(args.resume_from)
        if snap.get("kind") == "pipeline":
            snap = snap["engine"]
        engine = restore_engine(
            snap,
            graph=graph,
            subscriptions=subscriptions,
            **_supervision_kwargs(args),
        )
        print(
            f"note: resuming {engine.name!r} from {args.resume_from}; "
            "--algorithm/--workers come from the checkpoint",
            file=sys.stderr,
        )
    else:
        name = args.algorithm
        if name in ALGORITHMS:
            name = f"p_{name}"  # bare algorithm → sharded engine
        if name not in MULTIUSER_NAMES + PARALLEL_NAMES:
            print(
                f"unknown multi-user algorithm {args.algorithm!r}; choose a "
                f"bare algorithm ({', '.join(ALGORITHMS)}) or one of "
                f"{MULTIUSER_NAMES + PARALLEL_NAMES}",
                file=sys.stderr,
            )
            return 2
        if args.workers > 1 and not name.startswith("p_"):
            print(
                f"--workers {args.workers} needs the sharded engine; use a "
                f"bare algorithm name or p_* (got {name!r})",
                file=sys.stderr,
            )
            return 2
        engine = make_multiuser(
            name,
            thresholds,
            graph,
            subscriptions,
            workers=args.workers,
            batch_size=args.batch_size,
            storage=_storage_config(args),
            transport=args.transport,
            **_supervision_kwargs(args),
        )
    governor = _attach_governor(args, engine)

    registry = None
    if args.metrics_out:
        from . import simhash
        from .obs import Registry

        registry = Registry()
        engine.bind_metrics(registry)
        simhash.enable_metrics(registry)

    deliveries = 0
    out_handle = open(args.output, "w", encoding="utf-8") if args.output else None
    try:
        chunk: list = []

        def drain() -> None:
            nonlocal deliveries
            for post, receivers in zip(chunk, engine.offer_batch(chunk)):
                deliveries += len(receivers)
                if receivers and out_handle is not None:
                    record = post_to_dict(post)
                    record["receivers"] = sorted(receivers)
                    out_handle.write(json.dumps(record, sort_keys=True))
                    out_handle.write("\n")
            if governor is not None and chunk:
                governor.observe(len(chunk))
            chunk.clear()

        for post in read_posts_jsonl(
            args.posts, on_error=args.on_error, quarantine=sink
        ):
            chunk.append(post)
            if len(chunk) >= args.batch_size:
                drain()
        drain()

        stats = engine.aggregate_stats()
        print(
            f"{engine.name}: {stats.posts_admitted}/{stats.posts_processed} "
            f"instance offers admitted; {deliveries:,} deliveries to "
            f"{len(subscriptions)} users; {stats.comparisons:,} comparisons, "
            f"{stats.insertions:,} insertions"
        )
        if hasattr(engine, "shard_count"):
            print(
                f"shards: {engine.shard_count()} "
                f"(imbalance {engine.shard_imbalance():.3f}, "
                f"sharing ratio {engine.sharing_ratio():.3f})"
            )
        _print_supervision_summary(engine)
        _print_governor_summary(governor)
        if len(sink):
            print(
                f"quarantined {len(sink)} records: "
                + ", ".join(f"{r}={c}" for r, c in sorted(sink.by_reason.items()))
            )
        if args.quarantine_out:
            written = sink.write_jsonl(args.quarantine_out)
            print(
                f"dead-letter file written to {args.quarantine_out} "
                f"({written} records)"
            )
        if args.checkpoint_out:
            save_checkpoint(snapshot_engine(engine), args.checkpoint_out)
            print(f"checkpoint written to {args.checkpoint_out}")
        if registry is not None:
            from . import simhash
            from .obs import write_json_snapshot

            simhash.disable_metrics()
            write_json_snapshot(registry, args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out}")
        if args.output:
            print(f"receiver trace written to {args.output}")
    finally:
        if out_handle is not None:
            out_handle.close()
        if hasattr(engine, "close"):
            engine.close()
    return 0


def _run_generate(argv: list[str]) -> int:
    from .eval import default_dataset
    from .io import (
        write_friends_json,
        write_graph_json,
        write_posts_jsonl,
        write_subscriptions_json,
    )

    args = _generate_parser().parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dataset = default_dataset(args.scale)
    count = write_posts_jsonl(dataset.posts, out_dir / "posts.jsonl")
    write_graph_json(dataset.graph(args.lambda_a), out_dir / "graph.json")
    write_subscriptions_json(dataset.subscriptions(), out_dir / "subscriptions.json")
    print(
        f"wrote {count} posts, the lambda_a={args.lambda_a} author graph and "
        f"the subscription table to {out_dir}/"
    )
    if args.churn_rate > 0:
        from .dynamic import write_events_jsonl
        from .social import ChurnConfig, interleave_churn

        # Dynamic-mode inputs: followees restricted to the sampled author
        # universe (the relation the similarity graph is derived from).
        sampled = set(dataset.authors)
        friends = {
            author: dataset.network.followees[author] & sampled
            for author in dataset.authors
        }
        write_friends_json(friends, out_dir / "friends.json")
        events = write_events_jsonl(
            interleave_churn(
                dataset.posts, friends, ChurnConfig(rate=args.churn_rate)
            ),
            out_dir / "events.jsonl",
        )
        print(
            f"wrote the follow relation and a mixed event trace "
            f"({events - count} churn events at rate {args.churn_rate}) "
            f"for dynamic mode"
        )
    return 0


def _experiments_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firehose experiments",
        description=(
            "Run a scenario-matrix experiment (adversarial workloads x "
            "engine variants) and maintain the perf trajectory store"
        ),
    )
    parser.add_argument(
        "--matrix",
        default="smoke",
        help="a registered matrix name or a JSON grid file (default: smoke)",
    )
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument("--html", help="write a self-contained HTML report here")
    parser.add_argument(
        "--seed",
        type=int,
        help="override every scenario row's seed (same seed, same digests)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        help="override the per-trial timeout in seconds",
    )
    parser.add_argument(
        "--trajectory",
        default="BENCH_trajectory.json",
        help="the trajectory store file (default: BENCH_trajectory.json)",
    )
    parser.add_argument(
        "--label",
        default="current",
        help="trajectory entry label for --append/--check (one per PR)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append (or refresh) this run's entry in the trajectory store",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate this run against the last committed trajectory entry; "
        "a regressed metric is named and exits non-zero",
    )
    parser.add_argument(
        "--legacy-root",
        help="directory holding the legacy BENCH_*.json baselines to fold "
        "into the entry (default: the trajectory file's directory)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_registry",
        help="list registered scenarios and matrices, then exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    return parser


def _run_experiments(argv: list[str]) -> int:
    import dataclasses

    from .errors import ExperimentError, TrajectoryRegressionError
    from .experiments import (
        MATRICES,
        append_entry,
        check_regression,
        load_trajectory,
        make_entry,
        report_dict,
        resolve_matrix,
        run_matrix,
        scenario_help,
        write_html_report,
        write_json_report,
        write_trajectory,
    )

    args = _experiments_parser().parse_args(argv)
    if args.list_registry:
        print("scenarios:")
        for name, line in scenario_help().items():
            print(f"  {name:<12} {line}")
        print("matrices:")
        for name, spec in MATRICES.items():
            print(
                f"  {name:<12} {spec.cells} cells "
                f"({len(spec.scenarios)} scenarios x {len(spec.engines)} "
                f"engines) — {spec.description}"
            )
        return 0

    try:
        spec = resolve_matrix(args.matrix)
    except ExperimentError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    replacements: dict[str, object] = {}
    if args.seed is not None:
        replacements["scenarios"] = tuple(
            dataclasses.replace(s, seed=args.seed) for s in spec.scenarios
        )
    if args.timeout is not None:
        replacements["timeout_s"] = args.timeout
    if replacements:
        spec = dataclasses.replace(spec, **replacements)

    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    result = run_matrix(spec, progress=progress)

    counts = result.counts()
    print(
        f"matrix {spec.name}: {'PASS' if result.ok else 'FAIL'} — "
        + ", ".join(f"{v} {k}" for k, v in counts.items() if v)
        + f"; {len(result.cross_checks)} cross-check groups, "
        f"{sum(1 for c in result.cross_checks if not c['ok'])} disagreements "
        f"({result.duration_s:.2f}s)"
    )
    for check in result.cross_checks:
        if not check["ok"]:
            print(
                f"cross-check FAIL: {check['scenario']} / {check['algorithm']} "
                f"— {len(check['digests'])} distinct digests across "
                f"{', '.join(check['engines'])}",
                file=sys.stderr,
            )
    for trial in result.trials:
        if trial.status == "crash":
            last = (trial.error or "").strip().splitlines()
            print(
                f"crash: {trial.scenario} x {trial.engine}: "
                f"{last[-1] if last else 'unknown'}",
                file=sys.stderr,
            )
    if args.out:
        write_json_report(result, args.out)
        print(f"report written to {args.out}")
    if args.html:
        write_html_report(result, args.html)
        print(f"HTML report written to {args.html}")

    exit_code = 0 if result.ok else 1
    if args.append or args.check:
        trajectory_path = Path(args.trajectory)
        legacy_root = Path(args.legacy_root) if args.legacy_root else (
            trajectory_path.parent if str(trajectory_path.parent) else Path(".")
        )
        try:
            history = load_trajectory(trajectory_path)
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        entry = make_entry(args.label, result=result, root=legacy_root)
        if args.check:
            try:
                compared = check_regression(history, entry)
            except TrajectoryRegressionError as exc:
                print(f"trajectory check FAIL: {exc}", file=sys.stderr)
                exit_code = 1
            else:
                print(
                    f"trajectory check PASS: {len(compared)} metrics within "
                    "tolerance of the last committed entry"
                )
        if args.append:
            write_trajectory(append_entry(history, entry), trajectory_path)
            print(
                f"trajectory entry {args.label!r} written to {trajectory_path} "
                f"({len(entry['metrics'])} metrics)"
            )
    elif args.label != "current":
        print(
            "note: --label only matters with --append/--check", file=sys.stderr
        )
    return exit_code


def _report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firehose report",
        description="Regenerate the full evaluation as one markdown report",
    )
    parser.add_argument("--output", help="write markdown here (default: stdout)")
    parser.add_argument("--scale", choices=SCALES, default="medium")
    parser.add_argument(
        "--only",
        nargs="*",
        help="experiment ids to include (default: everything)",
    )
    return parser


def _run_report(argv: list[str]) -> int:
    from .eval import generate_report

    args = _report_parser().parse_args(argv)
    markdown = generate_report(scale=args.scale, experiment_ids=args.only)
    if args.output:
        Path(args.output).write_text(markdown, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(markdown)
    return 0


def _all_runners() -> dict[str, object]:
    runners: dict[str, object] = dict(EXPERIMENTS)
    runners.update(ABLATIONS)
    return runners


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "diversify":
        return _run_diversify(argv[1:])
    if argv and argv[0] == "generate":
        return _run_generate(argv[1:])
    if argv and argv[0] == "report":
        return _run_report(argv[1:])
    if argv and argv[0] == "experiments":
        return _run_experiments(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])

    args = _experiment_parser().parse_args(argv)
    runners = _all_runners()

    if args.experiment == "list":
        print("available experiments:")
        for name in runners:
            print(f"  {name}")
        print(
            "other commands: diversify, generate, report, experiments, "
            "serve (see --help on each)"
        )
        return 0

    if args.experiment == "all":
        for name, runner in runners.items():
            print(runner(args.scale).render())  # type: ignore[operator]
            print()
        return 0

    runner = runners.get(args.experiment)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; run 'list' to see "
            "available ids",
            file=sys.stderr,
        )
        return 2
    print(runner(args.scale).render())  # type: ignore[operator]
    return 0


if __name__ == "__main__":
    sys.exit(main())
