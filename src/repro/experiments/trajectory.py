"""Longitudinal perf trajectory: one append-only history across PRs.

Before this module, every benchmark gate kept its own committed baseline
file (``BENCH_parallel.json``, ``BENCH_dynamic.json``,
``BENCH_supervision.json``, ``BENCH_memory.json``) and its own ad-hoc
comparison code. The trajectory store folds them — plus the scenario-
matrix smoke run — into one ``BENCH_trajectory.json``::

    {"schema": 1,
     "entries": [
       {"label": "pr7", "source": "matrix:smoke+legacy",
        "metrics": {"smoke_deliveries_total": 740.0, ...}},
       ...]}

Each PR appends (or refreshes) **one** entry labeled after itself; the
regression check compares a freshly measured candidate against the *last
committed* entry, metric by metric:

* ``exact`` metrics (deterministic counts: deliveries, shed posts,
  crashes, cross-check failures) must match bit-for-bit — a drift means
  the algorithm's semantics changed, which a PR must do loudly (refresh
  the entry and say why), never silently;
* ``higher``/``lower`` metrics (throughputs, overheads, latencies) get a
  relative tolerance, machine-portable like the per-file gates they
  replace (override with ``REPRO_TRAJECTORY_TOLERANCE``).

A failed check raises :class:`~repro.errors.TrajectoryRegressionError`
naming every offending metric — CI turns that into a non-zero exit.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from ..errors import ExperimentError, TrajectoryRegressionError
from .runner import MatrixResult

__all__ = [
    "METRIC_SPECS",
    "append_entry",
    "check_regression",
    "legacy_metrics",
    "load_trajectory",
    "make_entry",
    "matrix_metrics",
    "write_trajectory",
]

TRAJECTORY_SCHEMA = 1

#: Default relative tolerance for perf (non-exact) metrics. Wide on
#: purpose: CI machines vary, and the per-file gates this replaces used
#: the same philosophy (relative checks, generous slack).
DEFAULT_TOLERANCE = 0.5

#: metric name → (direction, kind). Direction: "higher" is better,
#: "lower" is better, "exact" must not drift at all. Metrics absent here
#: are recorded but never gated (informational).
METRIC_SPECS: dict[str, str] = {
    # legacy BENCH_parallel.json
    "parallel_serial_posts_per_sec": "higher",
    "parallel_best_speedup": "higher",
    "parallel_posts_per_sec_best": "higher",
    # legacy BENCH_dynamic.json
    "dynamic_speedup_vs_rebuild_min": "higher",
    "dynamic_events_per_sec_min": "higher",
    # legacy BENCH_supervision.json
    "supervision_overhead": "lower",
    "supervision_recovery_latency_s": "lower",
    # legacy BENCH_memory.json
    "memory_peak_ratio": "lower",
    "memory_time_overhead": "lower",
    # legacy BENCH_feed.json
    "feed_fanout_posts_per_sec": "higher",
    "feed_read_p99_us": "lower",
    # legacy BENCH_durability.json
    "feed_wal_overhead": "lower",
    "feed_recovery_replay_speedup": "higher",
    # per-matrix deterministic counts (prefix = matrix name)
    "deliveries_total": "exact",
    "shed_total": "exact",
    "crashes": "exact",
    "cross_check_failures": "exact",
    "timeouts": "lower",
    # per-matrix perf
    "posts_per_sec_min": "higher",
    "scan_width_mean_max": "exact",
}


def _metric_direction(name: str) -> str | None:
    """Spec lookup; matrix metrics are ``<matrix>_<canonical>`` so fall
    back to the longest canonical suffix."""
    if name in METRIC_SPECS:
        return METRIC_SPECS[name]
    for canonical, direction in METRIC_SPECS.items():
        if name.endswith("_" + canonical):
            return direction
    return None


# -- store --------------------------------------------------------------------


def load_trajectory(path: str | Path) -> dict:
    """The history at ``path`` (an empty one when the file is absent)."""
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{path}: invalid trajectory JSON: {exc}") from exc
    if not isinstance(record, dict) or "entries" not in record:
        raise ExperimentError(f"{path}: not a trajectory file (no 'entries')")
    if record.get("schema") != TRAJECTORY_SCHEMA:
        raise ExperimentError(
            f"{path}: trajectory schema {record.get('schema')!r}, "
            f"this build reads {TRAJECTORY_SCHEMA}"
        )
    for entry in record["entries"]:
        if not isinstance(entry, dict) or "label" not in entry or "metrics" not in entry:
            raise ExperimentError(f"{path}: malformed entry {entry!r}")
    return record


def write_trajectory(history: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def append_entry(history: dict, entry: dict) -> dict:
    """Append ``entry``; re-running the same label refreshes in place
    (a PR iterates on its own row, never rewrites its predecessors')."""
    entries = [e for e in history["entries"] if e["label"] != entry["label"]]
    entries.append(entry)
    return {"schema": TRAJECTORY_SCHEMA, "entries": entries}


# -- metric extraction --------------------------------------------------------


def _load_json(path: Path) -> dict | None:
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def legacy_metrics(root: str | Path) -> dict[str, float]:
    """Fold the committed per-file gate baselines into canonical
    trajectory metrics (files that are absent contribute nothing)."""
    root = Path(root)
    metrics: dict[str, float] = {}
    record = _load_json(root / "BENCH_parallel.json")
    if record:
        metrics["parallel_serial_posts_per_sec"] = record["serial"]["posts_per_sec"]
        rows = record.get("parallel", [])
        if rows:
            metrics["parallel_best_speedup"] = max(
                row["speedup_vs_serial"] for row in rows
            )
            metrics["parallel_posts_per_sec_best"] = max(
                row["posts_per_sec"] for row in rows
            )
    record = _load_json(root / "BENCH_dynamic.json")
    if record:
        rows = record.get("rows", [])
        if rows:
            metrics["dynamic_speedup_vs_rebuild_min"] = min(
                row["speedup_vs_rebuild"] for row in rows
            )
            metrics["dynamic_events_per_sec_min"] = min(
                row["dynamic_events_per_sec"] for row in rows
            )
    record = _load_json(root / "BENCH_supervision.json")
    if record:
        metrics["supervision_overhead"] = record["supervised"][
            "overhead_vs_unsupervised"
        ]
        metrics["supervision_recovery_latency_s"] = record["recovery"][
            "recovery_latency_s"
        ]
    record = _load_json(root / "BENCH_memory.json")
    if record:
        metrics["memory_peak_ratio"] = record["peak_reduction_ratio"]
        metrics["memory_time_overhead"] = record["bounded"][
            "time_overhead_vs_unbounded"
        ]
    record = _load_json(root / "BENCH_feed.json")
    if record:
        metrics["feed_fanout_posts_per_sec"] = record["fanout_posts_per_sec"]
        metrics["feed_read_p99_us"] = record["read_p99_us"]
    record = _load_json(root / "BENCH_durability.json")
    if record:
        metrics["feed_wal_overhead"] = record["wal_overhead"]
        metrics["feed_recovery_replay_speedup"] = record["recovery_replay_speedup"]
    return metrics


def matrix_metrics(result: MatrixResult) -> dict[str, float]:
    """Canonical metrics of one matrix run, prefixed with its name."""
    prefix = result.spec.name
    counts = result.counts()
    ok = [t for t in result.trials if t.status == "ok"]
    metrics: dict[str, float] = {
        f"{prefix}_deliveries_total": float(sum(t.deliveries for t in ok)),
        f"{prefix}_shed_total": float(sum(t.shed for t in ok)),
        f"{prefix}_crashes": float(counts.get("crash", 0)),
        f"{prefix}_timeouts": float(counts.get("timeout", 0)),
        f"{prefix}_cross_check_failures": float(
            sum(1 for c in result.cross_checks if not c["ok"])
        ),
    }
    throughputs = [t.posts_per_sec for t in ok if t.posts_per_sec > 0]
    if throughputs:
        metrics[f"{prefix}_posts_per_sec_min"] = min(throughputs)
    widths = [t.obs["scan_width_mean"] for t in ok if "scan_width_mean" in t.obs]
    if widths:
        metrics[f"{prefix}_scan_width_mean_max"] = max(widths)
    return metrics


def make_entry(
    label: str,
    *,
    result: MatrixResult | None = None,
    root: str | Path | None = None,
) -> dict:
    """One trajectory entry: matrix metrics (when a run is given) folded
    with the legacy per-file baselines (when ``root`` is given)."""
    metrics: dict[str, float] = {}
    sources = []
    if result is not None:
        metrics.update(matrix_metrics(result))
        sources.append(f"matrix:{result.spec.name}")
    if root is not None:
        metrics.update(legacy_metrics(root))
        sources.append("legacy")
    return {
        "label": label,
        "source": "+".join(sources),
        "cpu_count": os.cpu_count(),
        "metrics": metrics,
    }


# -- regression check ---------------------------------------------------------


def _tolerance() -> float:
    raw = os.environ.get("REPRO_TRAJECTORY_TOLERANCE")
    return float(raw) if raw else DEFAULT_TOLERANCE


def check_regression(
    history: dict,
    candidate: dict,
    *,
    tolerance: float | None = None,
) -> list[str]:
    """Compare ``candidate`` against the last committed entry.

    Returns the list of compared metric names on success; raises
    :class:`TrajectoryRegressionError` naming every regressed metric.
    Metrics present on only one side are informational (subsystems come
    and go); an empty history passes trivially (first entry seeds it).
    """
    entries = history.get("entries", [])
    if not entries:
        return []
    baseline = entries[-1]
    if baseline["label"] == candidate["label"] and len(entries) > 1:
        # A PR re-checking after refreshing its own row compares against
        # its predecessor, not against itself.
        baseline = entries[-2]
    tol = _tolerance() if tolerance is None else tolerance
    # Perf (higher/lower) tolerances only transfer between same-shaped
    # machines: a speedup recorded on a 1-core box says nothing about a
    # 4-core runner. When both entries recorded a cpu_count and they
    # differ, skip the tolerance checks — loudly — and keep the exact
    # (count) checks, which are machine-independent.
    baseline_cpus = baseline.get("cpu_count")
    candidate_cpus = candidate.get("cpu_count")
    skip_perf = (
        baseline_cpus is not None
        and candidate_cpus is not None
        and baseline_cpus != candidate_cpus
    )
    skipped: list[str] = []
    compared: list[str] = []
    failures: list[str] = []
    for name in sorted(candidate["metrics"]):
        if name not in baseline["metrics"]:
            continue
        direction = _metric_direction(name)
        if direction is None:
            continue
        if skip_perf and direction in ("higher", "lower"):
            skipped.append(name)
            continue
        old = float(baseline["metrics"][name])
        new = float(candidate["metrics"][name])
        compared.append(name)
        if direction == "exact":
            if new != old:
                failures.append(
                    f"{name}: {new} != committed {old} (exact metric — "
                    f"semantics drifted; if intentional, refresh the entry)"
                )
        elif direction == "higher":
            if new < old * (1.0 - tol):
                failures.append(
                    f"{name}: {new:.4g} < {old:.4g} - {tol:.0%} (higher is better)"
                )
        elif direction == "lower":
            limit = old * (1.0 + tol) if old > 0 else tol
            if new > limit:
                failures.append(
                    f"{name}: {new:.4g} > {old:.4g} + {tol:.0%} (lower is better)"
                )
    if skipped:
        print(
            f"trajectory: SKIPPING {len(skipped)} perf tolerance check(s) "
            f"({', '.join(skipped)}): baseline {baseline['label']!r} was "
            f"recorded on a cpu_count={baseline_cpus} machine, this one has "
            f"cpu_count={candidate_cpus} — speedups do not transfer; exact "
            f"metrics still enforced",
            file=sys.stderr,
        )
    if failures:
        raise TrajectoryRegressionError(
            f"trajectory regression vs entry {baseline['label']!r}: "
            + "; ".join(failures)
        )
    return compared
