"""Declarative experiment grids: scenario × engine × config matrices.

A :class:`MatrixSpec` is plain data — JSON in, JSON out — naming which
scenarios to generate, which engine variants to run over each, the
diversity thresholds, and the per-trial timeout. Named matrices live in
:data:`MATRICES`; ``repro experiments --matrix <name-or-path>`` resolves
either a registry name or a JSON grid file through
:func:`matrix_from_dict`.

The fuzzbench-style idea: the *grid* is declarative and versioned; the
runner is generic. Adding a scenario or an engine variant to a matrix is
a config edit, not new harness code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core import Thresholds
from ..errors import ExperimentError
from .workloads import SCENARIO_NAMES, ScenarioConfig

__all__ = [
    "MATRICES",
    "EngineSpec",
    "MatrixSpec",
    "ScenarioSpec",
    "matrix_from_dict",
    "resolve_matrix",
]

#: Engine-name prefixes the runner understands (multi-user variants).
ENGINE_PREFIXES = ("m", "s", "p")


@dataclass(frozen=True)
class EngineSpec:
    """One engine variant of a cell: a multi-user name plus execution
    knobs. Variants that differ only in execution strategy (serial vs
    sharded vs supervised, worker count, batch size) are *equivalent* —
    the runner cross-checks their receiver sets byte-for-byte."""

    name: str  # m_unibin | s_unibin | p_unibin | ... (registry names)
    workers: int = 1
    batch_size: int = 64
    supervised: bool = False
    memory_budget: int | None = None
    spill: bool = False

    def __post_init__(self) -> None:
        prefix, _, algorithm = self.name.partition("_")
        if prefix not in ENGINE_PREFIXES or not algorithm:
            raise ExperimentError(
                f"engine name must look like m_*/s_*/p_*, got {self.name!r}"
            )
        if self.workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ExperimentError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.supervised and self.prefix != "p":
            raise ExperimentError(
                f"supervision applies to the sharded p_* engines, got {self.name!r}"
            )

    @property
    def prefix(self) -> str:
        return self.name.partition("_")[0]

    @property
    def algorithm(self) -> str:
        """The underlying single-user algorithm (cross-check group key)."""
        return self.name.partition("_")[2]

    @property
    def exact(self) -> bool:
        """True when this variant keeps exact receiver semantics — no
        memory governor that could cap probes. Only exact variants join
        a cross-check group."""
        return self.memory_budget is None

    @property
    def label(self) -> str:
        """Stable human-readable cell key, e.g. ``p_unibin@w2+sup``."""
        parts = [self.name]
        if self.workers != 1:
            parts.append(f"@w{self.workers}")
        if self.supervised:
            parts.append("+sup")
        if self.memory_budget is not None:
            parts.append(f"+mem{self.memory_budget}")
        if self.spill:
            parts.append("+spill")
        return "".join(parts)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "supervised": self.supervised,
            "memory_budget": self.memory_budget,
            "spill": self.spill,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario row of the matrix: registry name, seed, overrides."""

    name: str
    seed: int = 42
    overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in SCENARIO_NAMES:
            raise ExperimentError(
                f"unknown scenario {self.name!r}; choose from {SCENARIO_NAMES}"
            )
        # Validate override names/values eagerly so a bad grid fails at
        # parse time, not mid-run.
        self.config()

    def config(self) -> ScenarioConfig:
        return ScenarioConfig(**dict(self.overrides))

    @property
    def label(self) -> str:
        """Unique cell key: name, seed, and any overrides — two rows with
        the same name must not collide or their cross-check groups merge."""
        base = f"{self.name}#{self.seed}"
        if self.overrides:
            base += "[" + ",".join(f"{k}={v}" for k, v in self.overrides) + "]"
        return base

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {"name": self.name, "seed": self.seed}
        if self.overrides:
            record["overrides"] = dict(self.overrides)
        return record


@dataclass(frozen=True)
class MatrixSpec:
    """A whole grid: every scenario × every engine variant is one trial."""

    name: str
    scenarios: tuple[ScenarioSpec, ...]
    engines: tuple[EngineSpec, ...]
    thresholds: Thresholds = field(default_factory=lambda: Thresholds(
        lambda_c=8, lambda_t=60.0, lambda_a=0.5
    ))
    timeout_s: float | None = 60.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ExperimentError(f"matrix {self.name!r} has no scenarios")
        if not self.engines:
            raise ExperimentError(f"matrix {self.name!r} has no engines")
        for kind, labels in (
            ("engine variants", [e.label for e in self.engines]),
            ("scenario rows", [s.label for s in self.scenarios]),
        ):
            if len(set(labels)) != len(labels):
                raise ExperimentError(
                    f"matrix {self.name!r} has duplicate {kind}: {labels}"
                )

    @property
    def cells(self) -> int:
        return len(self.scenarios) * len(self.engines)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "thresholds": {
                "lambda_c": self.thresholds.lambda_c,
                "lambda_t": self.thresholds.lambda_t,
                "lambda_a": self.thresholds.lambda_a,
            },
            "timeout_s": self.timeout_s,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "engines": [e.to_dict() for e in self.engines],
        }


def matrix_from_dict(record: dict, *, name: str | None = None) -> MatrixSpec:
    """Parse a grid config (the :meth:`MatrixSpec.to_dict` JSON shape)."""
    if not isinstance(record, dict):
        raise ExperimentError(f"grid config must be a JSON object, got {record!r}")
    try:
        scenarios = tuple(
            ScenarioSpec(
                name=s["name"],
                seed=int(s.get("seed", 42)),
                overrides=tuple(sorted(s.get("overrides", {}).items())),
            )
            for s in record["scenarios"]
        )
        engines = tuple(
            EngineSpec(
                name=e["name"],
                workers=int(e.get("workers", 1)),
                batch_size=int(e.get("batch_size", 64)),
                supervised=bool(e.get("supervised", False)),
                memory_budget=e.get("memory_budget"),
                spill=bool(e.get("spill", False)),
            )
            for e in record["engines"]
        )
    except (KeyError, TypeError) as exc:
        raise ExperimentError(f"malformed grid config: {exc!r}") from exc
    thresholds = record.get("thresholds", {})
    return MatrixSpec(
        name=name or record.get("name", "custom"),
        description=record.get("description", ""),
        scenarios=scenarios,
        engines=engines,
        thresholds=Thresholds(
            lambda_c=int(thresholds.get("lambda_c", 8)),
            lambda_t=float(thresholds.get("lambda_t", 60.0)),
            lambda_a=float(thresholds.get("lambda_a", 0.5)),
        ),
        timeout_s=record.get("timeout_s", 60.0),
    )


def _smoke() -> MatrixSpec:
    """The CI mini-matrix: 2 adversarial scenarios × 2 engine variants,
    sized to finish in well under 30 seconds while still exercising the
    sharded executor and the serial↔parallel cross-check."""
    return MatrixSpec(
        name="smoke",
        description="CI smoke: flash_crowd + spam_flood on serial and sharded unibin",
        scenarios=(
            ScenarioSpec("flash_crowd", seed=42, overrides=(("n_posts", 200),)),
            ScenarioSpec("spam_flood", seed=42, overrides=(("n_posts", 200),)),
        ),
        engines=(
            EngineSpec("s_unibin"),
            EngineSpec("p_unibin", workers=2),
        ),
        timeout_s=25.0,
    )


def _adversarial() -> MatrixSpec:
    """Every adversarial scenario × the paper's three algorithms (shared
    serial engines), plus a sharded and a memory-bounded variant of
    unibin — the robustness sweep a perf claim should cite."""
    return MatrixSpec(
        name="adversarial",
        description="all adversarial scenarios x core algorithms + bounded-memory variant",
        scenarios=tuple(
            ScenarioSpec(name, seed=42) for name in SCENARIO_NAMES
        ),
        engines=(
            EngineSpec("m_unibin"),
            EngineSpec("s_unibin"),
            EngineSpec("s_neighborbin"),
            EngineSpec("s_cliquebin"),
            EngineSpec("p_unibin", workers=2),
            EngineSpec("p_unibin", workers=2, supervised=True),
            EngineSpec("s_unibin", memory_budget=8_000, spill=True),
        ),
        timeout_s=120.0,
    )


def _churn() -> MatrixSpec:
    """Dynamic focus: the churn-storm stream across serial and sharded
    dynamic executors (supervised included) — migration exactness under
    coordinated follow/unfollow pressure."""
    return MatrixSpec(
        name="churn",
        description="churn storms on the dynamic engines, serial vs sharded vs supervised",
        scenarios=(
            ScenarioSpec("churn_storm", seed=42),
            ScenarioSpec("churn_storm", seed=1337, overrides=(("storm_rate", 6.0),)),
        ),
        engines=(
            EngineSpec("s_unibin"),
            EngineSpec("p_unibin", workers=2),
            EngineSpec("p_unibin", workers=2, supervised=True),
        ),
        timeout_s=120.0,
    )


MATRICES: dict[str, MatrixSpec] = {}
for _builder in (_smoke, _adversarial, _churn):
    _spec = _builder()
    MATRICES[_spec.name] = _spec


def resolve_matrix(name_or_path: str) -> MatrixSpec:
    """A named registry matrix, or a JSON grid file by path."""
    if name_or_path in MATRICES:
        return MATRICES[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"{path}: invalid JSON grid config: {exc}") from exc
        return matrix_from_dict(record, name=record.get("name", path.stem))
    raise ExperimentError(
        f"unknown matrix {name_or_path!r}: not a registered name "
        f"({tuple(MATRICES)}) and no such grid file"
    )
