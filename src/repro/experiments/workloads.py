"""Scenario registry: seeded, deterministic adversarial workload generators.

Every subsystem benchmark so far replays the same uniform synthetic
stream; diversification earns its keep on the *hostile* shapes — flash
crowds, near-duplicate spam floods, drifting topics, heavy-tail author
skew, and coordinated follow/unfollow storms. Each scenario here is a
pure function of ``(seed, config)`` emitting a reproducible workload:

* a timestamp-ordered mixed event stream (posts, plus follow/unfollow
  churn for the dynamic scenarios) that round-trips through the
  :mod:`repro.dynamic.events` codec;
* the initial followee relation its author universe was cut from; and
* a subscription table, so every M-SPSD engine variant can consume it.

Determinism contract: the same ``(seed, config)`` always produces a
byte-identical trace — :func:`repro.dynamic.events.events_digest` over
two same-seed workloads is equal — which is what lets the trial runner
cross-check receiver sets between engine variants and lets CI rerun a
matrix cell reproducibly.

Registry::

    >>> from repro.experiments import SCENARIO_NAMES, make_workload
    >>> w = make_workload("spam_flood", seed=7)
    >>> w.digest() == make_workload("spam_flood", seed=7).digest()
    True
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import asdict, dataclass, field, replace

from ..authors import AuthorGraph, SimilarityMaintainer
from ..core import Post
from ..dynamic.events import Event, FollowEvent, UnfollowEvent, events_digest
from ..errors import ExperimentError, UnknownScenarioError
from ..multiuser import SubscriptionTable
from ..social import ChurnConfig, interleave_churn

__all__ = [
    "SCENARIO_NAMES",
    "ScenarioConfig",
    "Workload",
    "make_workload",
    "scenario_help",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs shared by every generator plus per-scenario shape controls.

    The common block sizes the world (posts, authors, users) and the
    background traffic (inter-post gap, echo near-duplicate rate); each
    scenario then reads only its own named sub-block. Everything is
    plain data so a grid config can carry overrides as JSON.
    """

    # -- world size ---------------------------------------------------------
    n_posts: int = 300
    n_authors: int = 16
    n_users: int = 6
    subscriptions_per_user: int = 5
    follow_degree: int = 3

    # -- background traffic -------------------------------------------------
    mean_gap: float = 1.0
    echo_prob: float = 0.35
    near_flips: int = 3

    # -- flash_crowd: sudden bursts around one story -----------------------
    burst_count: int = 3
    burst_len: int = 40
    burst_gap_factor: float = 0.02
    burst_story_flips: int = 2
    burst_authors: int = 3

    # -- spam_flood: near-identical floods from a spammer clique -----------
    spam_authors: int = 2
    flood_count: int = 3
    flood_len: int = 30
    spam_flips: int = 1

    # -- topic_drift: the content centroid random-walks --------------------
    drift_every: int = 10
    drift_flips: int = 2
    topic_echo_prob: float = 0.8

    # -- author_skew: Zipf-weighted author activity ------------------------
    zipf_exponent: float = 1.3

    # -- churn_storm: coordinated follow/unfollow windows ------------------
    churn_base_rate: float = 0.02
    storm_count: int = 2
    storm_rate: float = 3.0
    storm_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.n_posts < 1:
            raise ExperimentError(f"n_posts must be >= 1, got {self.n_posts}")
        if self.n_authors < 2:
            raise ExperimentError(f"n_authors must be >= 2, got {self.n_authors}")
        if self.n_users < 1:
            raise ExperimentError(f"n_users must be >= 1, got {self.n_users}")
        if not 1 <= self.subscriptions_per_user <= self.n_authors:
            raise ExperimentError(
                "subscriptions_per_user must be in [1, n_authors], got "
                f"{self.subscriptions_per_user}"
            )
        if self.mean_gap <= 0.0:
            raise ExperimentError(f"mean_gap must be > 0, got {self.mean_gap}")
        if not 0.0 <= self.echo_prob <= 1.0:
            raise ExperimentError(f"echo_prob must be in [0, 1], got {self.echo_prob}")
        if self.storm_count > 0 and not 0.0 < self.storm_fraction * self.storm_count <= 1.0:
            raise ExperimentError(
                "storm windows must fit the stream: need "
                f"0 < storm_fraction*storm_count <= 1, got "
                f"{self.storm_fraction} * {self.storm_count}"
            )

    def to_dict(self) -> dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class Workload:
    """One generated experiment input: the stream plus its world."""

    scenario: str
    seed: int
    config: ScenarioConfig
    events: tuple[Event, ...]
    friends: dict[int, frozenset[int]] = field(repr=False)
    subscriptions: dict[int, tuple[int, ...]] = field(repr=False)

    @property
    def posts(self) -> list[Post]:
        """The post projection of the mixed stream (order preserved)."""
        return [event for event in self.events if isinstance(event, Post)]

    @property
    def churn_events(self) -> int:
        return sum(1 for e in self.events if not isinstance(e, Post))

    @property
    def has_churn(self) -> bool:
        return self.churn_events > 0

    def graph(self, lambda_a: float) -> AuthorGraph:
        """The λa similarity graph of the *initial* followee relation —
        what a static engine sees, and exactly the graph a dynamic engine
        starts from before any churn event lands."""
        maintainer = SimilarityMaintainer(self.friends, threshold=1.0 - lambda_a)
        return AuthorGraph(maintainer.authors, maintainer.edges())

    def subscription_table(self) -> SubscriptionTable:
        return SubscriptionTable(self.subscriptions)

    def digest(self) -> str:
        """SHA-256 of the canonical JSONL encoding of the event stream."""
        return events_digest(self.events)


# -- shared scaffolding -----------------------------------------------------


def _universe(rng: random.Random, config: ScenarioConfig):
    """Authors, a seeded author→author followee relation, subscriptions.

    Followees are drawn from the author universe itself so (a) the λa
    similarity graph has real edges at moderate thresholds (shared
    followees ⇒ cosine overlap) and (b) churn events — which pick both
    endpoints from the universe — flip those same edges.
    """
    authors = list(range(1, config.n_authors + 1))
    friends: dict[int, frozenset[int]] = {}
    for author in authors:
        others = [a for a in authors if a != author]
        degree = min(config.follow_degree, len(others))
        friends[author] = frozenset(rng.sample(others, degree))
    subscriptions: dict[int, tuple[int, ...]] = {}
    for i in range(config.n_users):
        user = 10_000 + i
        subscriptions[user] = tuple(
            sorted(rng.sample(authors, config.subscriptions_per_user))
        )
    return authors, friends, subscriptions


def _flip(fingerprint: int, flips: int, rng: random.Random) -> int:
    for bit in rng.sample(range(64), flips):
        fingerprint ^= 1 << bit
    return fingerprint


class _PostFactory:
    """Sequential post ids, non-decreasing timestamps, echo memory."""

    def __init__(self, rng: random.Random, config: ScenarioConfig, scenario: str):
        self.rng = rng
        self.config = config
        self.scenario = scenario
        self.now = 0.0
        self.next_id = 0
        self.recent: list[int] = []  # fingerprints of prior posts

    def advance(self, mean_gap: float) -> float:
        self.now += self.rng.expovariate(1.0 / mean_gap)
        return self.now

    def background_fingerprint(self) -> int:
        rng, config = self.rng, self.config
        if self.recent and rng.random() < config.echo_prob:
            source = self.recent[-rng.randint(1, min(len(self.recent), 25))]
            return _flip(source, rng.randint(0, config.near_flips), rng)
        return rng.getrandbits(64)

    def emit(self, author: int, fingerprint: int) -> Post:
        post = Post(
            post_id=self.next_id,
            author=author,
            text=f"{self.scenario}-{self.next_id}",
            timestamp=self.now,
            fingerprint=fingerprint,
        )
        self.next_id += 1
        self.recent.append(fingerprint)
        return post


# -- scenario generators ----------------------------------------------------


def _gen_uniform(rng, config, authors, friends):
    """The paper-shaped baseline: Poisson arrivals, uniform authors, a
    steady trickle of near-duplicates. The control cell every adversarial
    scenario is compared against."""
    factory = _PostFactory(rng, config, "uniform")
    events: list[Event] = []
    for _ in range(config.n_posts):
        factory.advance(config.mean_gap)
        events.append(factory.emit(rng.choice(authors), factory.background_fingerprint()))
    return events


def _gen_flash_crowd(rng, config, authors, friends):
    """Quiet baseline punctuated by bursts: arrival gaps collapse by
    ``burst_gap_factor`` while a handful of authors hammer one story
    fingerprint — the regime where the λt window fills with mutual
    near-duplicates and scan width explodes."""
    factory = _PostFactory(rng, config, "flash_crowd")
    events: list[Event] = []
    burst_at = _burst_positions(rng, config)
    emitted = 0
    while emitted < config.n_posts:
        if emitted in burst_at:
            story = rng.getrandbits(64)
            crowd = rng.sample(authors, min(config.burst_authors, len(authors)))
            length = min(config.burst_len, config.n_posts - emitted)
            for _ in range(length):
                factory.advance(config.mean_gap * config.burst_gap_factor)
                fingerprint = _flip(
                    story, rng.randint(0, config.burst_story_flips), rng
                )
                events.append(factory.emit(rng.choice(crowd), fingerprint))
                emitted += 1
        else:
            factory.advance(config.mean_gap)
            events.append(
                factory.emit(rng.choice(authors), factory.background_fingerprint())
            )
            emitted += 1
    return events


def _burst_positions(rng: random.Random, config: ScenarioConfig) -> set[int]:
    """Deterministic burst start offsets, spread over the stream."""
    if config.burst_count < 1:
        return set()
    stride = max(1, config.n_posts // (config.burst_count + 1))
    return {stride * (i + 1) for i in range(config.burst_count)}


def _gen_spam_flood(rng, config, authors, friends):
    """A small spammer set floods runs of near-identical posts (0 to
    ``spam_flips`` bit flips off one template) into normal traffic — the
    shape SimHash coverage exists to shed."""
    factory = _PostFactory(rng, config, "spam_flood")
    events: list[Event] = []
    spammers = rng.sample(authors, min(config.spam_authors, len(authors)))
    flood_at = {
        max(1, (i + 1) * config.n_posts // (config.flood_count + 1))
        for i in range(config.flood_count)
    }
    emitted = 0
    while emitted < config.n_posts:
        if emitted in flood_at:
            template = rng.getrandbits(64)
            length = min(config.flood_len, config.n_posts - emitted)
            for _ in range(length):
                factory.advance(config.mean_gap * 0.1)
                fingerprint = _flip(template, rng.randint(0, config.spam_flips), rng)
                events.append(factory.emit(rng.choice(spammers), fingerprint))
                emitted += 1
        else:
            factory.advance(config.mean_gap)
            events.append(
                factory.emit(rng.choice(authors), factory.background_fingerprint())
            )
            emitted += 1
    return events


def _gen_topic_drift(rng, config, authors, friends):
    """The content centroid random-walks: every ``drift_every`` posts the
    topic fingerprint flips ``drift_flips`` bits, and most posts echo the
    *current* centroid. Near-duplicates cluster in time but the cluster
    itself moves — stale indexes and long windows over-cover, short ones
    under-cover (Zhu et al.'s topic-focused filtering motivation)."""
    factory = _PostFactory(rng, config, "topic_drift")
    events: list[Event] = []
    centroid = rng.getrandbits(64)
    for i in range(config.n_posts):
        if i and i % config.drift_every == 0:
            centroid = _flip(centroid, config.drift_flips, rng)
        factory.advance(config.mean_gap)
        if rng.random() < config.topic_echo_prob:
            fingerprint = _flip(centroid, rng.randint(0, config.near_flips), rng)
        else:
            fingerprint = rng.getrandbits(64)
        events.append(factory.emit(rng.choice(authors), fingerprint))
    return events


def _gen_author_skew(rng, config, authors, friends):
    """Zipf-weighted author activity: a head author dominates the stream
    (heavy-tail skew), concentrating window contents in a few bins — the
    worst case for per-author bin structures and LPT shard balance."""
    factory = _PostFactory(rng, config, "author_skew")
    weights = [1.0 / (rank + 1) ** config.zipf_exponent for rank in range(len(authors))]
    events: list[Event] = []
    for _ in range(config.n_posts):
        factory.advance(config.mean_gap)
        author = rng.choices(authors, weights=weights, k=1)[0]
        events.append(factory.emit(author, factory.background_fingerprint()))
    return events


def _gen_churn_storm(rng, config, authors, friends):
    """Background posts plus coordinated follow/unfollow storms: churn
    idles at ``churn_base_rate`` events/post, then spikes to
    ``storm_rate`` inside ``storm_count`` windows covering
    ``storm_fraction`` of the stream each — the dynamic subsystem's
    migration machinery under maximum pressure."""
    factory = _PostFactory(rng, config, "churn_storm")
    posts: list[Post] = []
    for _ in range(config.n_posts):
        factory.advance(config.mean_gap)
        posts.append(
            factory.emit(rng.choice(authors), factory.background_fingerprint())
        )
    span = posts[-1].timestamp if posts else 0.0
    windows = _storm_windows(span, config)

    def rate_at(t: float) -> float:
        for lo, hi in windows:
            if lo <= t < hi:
                return config.storm_rate
        return config.churn_base_rate

    churn_config = ChurnConfig(rate=config.churn_base_rate, seed=rng.randrange(2**31))
    return list(
        interleave_churn(posts, friends, churn_config, rate_fn=rate_at)
    )


def _storm_windows(span: float, config: ScenarioConfig) -> list[tuple[float, float]]:
    """``storm_count`` equal windows of ``storm_fraction * span`` seconds,
    centered at evenly spaced points of the stream."""
    if config.storm_count < 1 or span <= 0.0:
        return []
    width = config.storm_fraction * span
    windows = []
    for i in range(config.storm_count):
        center = span * (i + 1) / (config.storm_count + 1)
        windows.append((center - width / 2, center + width / 2))
    return windows


#: name → generator(rng, config, authors, friends) -> list[Event]
_GENERATORS: dict[str, Callable] = {
    "uniform": _gen_uniform,
    "flash_crowd": _gen_flash_crowd,
    "spam_flood": _gen_spam_flood,
    "topic_drift": _gen_topic_drift,
    "author_skew": _gen_author_skew,
    "churn_storm": _gen_churn_storm,
}

SCENARIO_NAMES: tuple[str, ...] = tuple(_GENERATORS)


def scenario_help() -> dict[str, str]:
    """name → first docstring line, for ``repro experiments --list``."""
    return {
        name: (gen.__doc__ or "").strip().split("\n")[0]
        for name, gen in _GENERATORS.items()
    }


def make_workload(
    name: str,
    seed: int,
    config: ScenarioConfig | None = None,
    **overrides,
) -> Workload:
    """Build scenario ``name`` deterministically from ``(seed, config)``.

    ``overrides`` are applied on top of ``config`` (or the defaults), so
    grid configs can say ``{"scenario": "spam_flood", "flood_len": 80}``.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}"
        ) from None
    base = config or ScenarioConfig()
    if overrides:
        base = replace(base, **overrides)
    # str seeding hashes all bytes deterministically (unlike tuple
    # seeding, which goes through PYTHONHASHSEED-randomized hash()).
    rng = random.Random(f"{name}:{seed}")
    authors, friends, subscriptions = _universe(rng, base)
    events = generator(rng, base, authors, friends)
    _check_order(events, name)
    return Workload(
        scenario=name,
        seed=seed,
        config=base,
        events=tuple(events),
        friends=friends,
        subscriptions=subscriptions,
    )


def _check_order(events: list[Event], name: str) -> None:
    last = float("-inf")
    for event in events:
        if event.timestamp < last:
            raise ExperimentError(
                f"scenario {name!r} generated out-of-order timestamps "
                f"({event.timestamp} after {last}) — generator bug"
            )
        last = event.timestamp
