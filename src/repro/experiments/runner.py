"""Trial runner: execute a matrix, capture crashes, cross-check variants.

One *trial* is (scenario workload × engine variant × thresholds). The
runner:

* builds the engine named by the :class:`~repro.experiments.grid.
  EngineSpec` — serial, sharded, supervised, dynamic (when the workload
  carries churn), memory-governed, spill-tiered;
* replays the workload in batches with a cooperative per-trial deadline
  (a trial that overruns is recorded as ``timeout``, not killed — the
  deadline is checked between batches so the receiver prefix stays
  meaningful) and full crash capture (``crash`` status + traceback);
* digests the receiver sets (SHA-256 over ``post_id:user,user`` lines) so
  equivalent engine variants can be cross-checked byte-for-byte; and
* records throughput, shed/drop counts, scan-width and memory stats —
  the observability numbers come from a per-trial
  :class:`repro.obs.Registry` snapshot, not hand-rolled counters.

Exactness policy: variants of the same algorithm that differ only in
execution strategy (m_/s_/p_, worker count, batch size, supervision,
spill tier) must produce identical receiver sets; the runner fails the
*matrix* (not just the trial) report when a cross-check group disagrees.
Variants with a memory budget may legitimately diverge (the probe rung
trades duplicate leakage for memory) and are excluded from groups.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field

from ..core import Post
from ..obs import Registry, family_total, snapshot
from .grid import EngineSpec, MatrixSpec
from .workloads import Workload, make_workload

__all__ = ["TrialResult", "MatrixResult", "run_trial", "run_matrix"]

#: Trial statuses the report distinguishes.
STATUSES = ("ok", "timeout", "crash", "skipped")


@dataclass
class TrialResult:
    """Everything one cell of the matrix reports."""

    scenario: str
    engine: str  # EngineSpec.label
    status: str
    duration_s: float = 0.0
    posts: int = 0
    posts_offered: int = 0
    churn_events: int = 0
    posts_per_sec: float = 0.0
    deliveries: int = 0
    shed: int = 0
    dropped: int = 0
    digest: str | None = None
    stats: dict[str, int] = field(default_factory=dict)
    memory: dict[str, object] = field(default_factory=dict)
    obs: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "status": self.status,
            "duration_s": self.duration_s,
            "posts": self.posts,
            "posts_offered": self.posts_offered,
            "churn_events": self.churn_events,
            "posts_per_sec": self.posts_per_sec,
            "deliveries": self.deliveries,
            "shed": self.shed,
            "dropped": self.dropped,
            "digest": self.digest,
            "stats": self.stats,
            "memory": self.memory,
            "obs": self.obs,
            "error": self.error,
        }


@dataclass
class MatrixResult:
    """A completed grid run: per-cell results plus cross-check verdicts."""

    spec: MatrixSpec
    trials: list[TrialResult]
    cross_checks: list[dict[str, object]]
    duration_s: float

    @property
    def ok(self) -> bool:
        """No crashed cells and no cross-check disagreement. (Timeouts
        and skips degrade coverage, not correctness.)"""
        return all(t.status != "crash" for t in self.trials) and all(
            check["ok"] for check in self.cross_checks
        )

    def counts(self) -> dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for trial in self.trials:
            counts[trial.status] = counts.get(trial.status, 0) + 1
        return counts


def _receiver_digest(received: list[tuple[int, frozenset[int]]]) -> str:
    hasher = hashlib.sha256()
    for post_id, receivers in received:
        line = f"{post_id}:{','.join(map(str, sorted(receivers)))}\n"
        hasher.update(line.encode())
    return hasher.hexdigest()


def _build_engine(spec: EngineSpec, workload: Workload, thresholds, spill_dir):
    """Instantiate the engine variant for this workload, or explain why
    it cannot run (returns ``(engine, skip_reason)``)."""
    from ..multiuser import make_multiuser

    subscriptions = workload.subscription_table()
    if workload.has_churn:
        if spec.prefix == "m":
            return None, "per-user m_* engines have no dynamic counterpart"
        if spec.spill or spec.memory_budget is not None:
            return None, "dynamic engines keep windows in memory (no spill/governor)"
        engine = make_multiuser(
            f"{spec.prefix}_{spec.algorithm}",
            thresholds,
            None,
            subscriptions,
            workers=spec.workers if spec.prefix == "p" else 1,
            batch_size=spec.batch_size,
            dynamic=True,
            friends=workload.friends,
            supervised=spec.supervised,
        )
        return engine, None
    storage = None
    if spec.spill:
        from ..storage import SpillConfig

        # Never stringify an unset directory: str(None) == "None" used to
        # leak a literal ``None/`` directory into the caller's cwd.
        # ``run_trial`` substitutes a per-trial temp dir before we get
        # here; a None reaching this point is a programming error that
        # SpillConfig now rejects loudly.
        storage = SpillConfig(
            spill_dir if isinstance(spill_dir, str) else os.fspath(spill_dir)
        )
    engine = make_multiuser(
        spec.name,
        thresholds,
        workload.graph(thresholds.lambda_a),
        subscriptions,
        workers=spec.workers,
        batch_size=spec.batch_size,
        supervised=spec.supervised,
        storage=storage,
    )
    return engine, None


def _attach_governor(spec: EngineSpec, engine):
    """A (governor, overload controller) pair for budgeted variants.

    The controller exists solely as the governor's shed rung — its
    backlog threshold is set unreachably high, so shedding happens iff
    the ladder escalates all the way on accounted bytes. That keeps the
    shed count a pure function of the (deterministic) workload."""
    if spec.memory_budget is None:
        return None, None
    from ..resilience import GovernorConfig, MemoryGovernor, OverloadController

    controller = OverloadController(max_delay=1e12)
    governor = MemoryGovernor(
        engine,
        GovernorConfig(budget_bytes=spec.memory_budget, check_every=32),
        overload=controller,
    )
    return governor, controller


def run_trial(
    workload: Workload,
    spec: EngineSpec,
    thresholds,
    *,
    timeout_s: float | None = None,
    spill_dir=None,
    scenario_label: str | None = None,
) -> TrialResult:
    """Run one cell; never raises — failures land in the result status.

    ``scenario_label`` is the matrix row key (``name#seed[overrides]``) —
    it distinguishes same-name scenario rows so cross-check groups never
    merge trials fed different workloads. A ``spill`` variant run without
    an explicit ``spill_dir`` gets a private temp directory for the
    trial's lifetime (it must never fall back to stringifying ``None``).
    """
    spill_tmp: tempfile.TemporaryDirectory | None = None
    if spec.spill and spill_dir is None:
        spill_tmp = tempfile.TemporaryDirectory(prefix="repro-trial-spill-")
        spill_dir = spill_tmp.name
    result = TrialResult(
        scenario=scenario_label or workload.scenario,
        engine=spec.label,
        status="ok",
        posts=len(workload.posts),
        churn_events=workload.churn_events,
    )
    engine = None
    governor = None
    registry = Registry()
    received: list[tuple[int, frozenset[int]]] = []
    peak_bytes = 0
    start = time.perf_counter()
    deadline = None if timeout_s is None else start + timeout_s
    try:
        engine, skip_reason = _build_engine(spec, workload, thresholds, spill_dir)
        if engine is None:
            result.status = "skipped"
            result.error = skip_reason
            return result
        governor, controller = _attach_governor(spec, engine)
        engine.bind_metrics(registry)

        def flush(batch: list[Post]) -> bool:
            """Offer one batch; returns False when the deadline passed."""
            nonlocal peak_bytes
            if batch:
                if controller is not None:
                    kept = []
                    for post in batch:
                        if controller.should_shed(0.0):
                            controller.record_shed()
                            result.shed += 1
                        else:
                            controller.record_processed()
                            kept.append(post)
                else:
                    kept = list(batch)
                result.posts_offered += len(batch)
                for post, receivers in zip(kept, engine.offer_batch(kept)):
                    received.append((post.post_id, receivers))
                    result.deliveries += len(receivers)
                if governor is not None:
                    governor.observe(len(batch))
                    peak_bytes = max(peak_bytes, governor.total_bytes())
                batch.clear()
            return deadline is None or time.perf_counter() < deadline

        batch: list[Post] = []
        timed_out = False
        for event in workload.events:
            if isinstance(event, Post):
                batch.append(event)
                if len(batch) >= spec.batch_size and not flush(batch):
                    timed_out = True
                    break
            else:
                # Topology events fence the stream: drain, then migrate.
                if not flush(batch):
                    timed_out = True
                    break
                engine.apply(event)
        if not timed_out:
            timed_out = not flush(batch)
        result.duration_s = time.perf_counter() - start
        if timed_out and result.posts_offered < result.posts:
            result.status = "timeout"
            result.dropped = result.posts - result.posts_offered
            result.error = (
                f"deadline {timeout_s}s passed after "
                f"{result.posts_offered}/{result.posts} posts"
            )
        else:
            result.digest = _receiver_digest(received)
        _collect_stats(result, engine, governor, registry, peak_bytes)
    except Exception:
        result.duration_s = time.perf_counter() - start
        result.status = "crash"
        result.error = traceback.format_exc()
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass
        if spill_tmp is not None:
            spill_tmp.cleanup()
    return result


def _collect_stats(result, engine, governor, registry, peak_bytes) -> None:
    stats = engine.aggregate_stats()
    if result.duration_s > 0:
        result.posts_per_sec = result.posts_offered / result.duration_s
    result.stats = {
        "posts_processed": stats.posts_processed,
        "posts_admitted": stats.posts_admitted,
        "instance_offers_rejected": stats.posts_rejected,
        "comparisons": stats.comparisons,
        "insertions": stats.insertions,
        "evictions": stats.evictions,
        "stored_copies": engine.stored_copies(),
    }
    # Scan width: coverage comparisons per offered post — the §4.4 cost
    # the adversarial scenarios are designed to inflate.
    if result.posts_offered:
        result.obs["scan_width_mean"] = stats.comparisons / max(
            1, stats.posts_processed
        )
    snap = snapshot(registry)
    for family, key in (
        ("repro_multiuser_deliveries_total", "deliveries_total"),
        ("repro_multiuser_instance_offers_total", "instance_offers_total"),
        ("repro_multiuser_posts_total", "posts_total"),
        ("repro_multiuser_instances", "instances"),
    ):
        value = family_total(snap, family)
        if value:
            result.obs[key] = value
    result.memory = {
        "accounted_bytes": engine.memory_bytes(),
        "breakdown": engine.memory_breakdown(),
    }
    if governor is not None:
        result.memory["governor"] = governor.status()
        result.memory["peak_accounted_bytes"] = peak_bytes
    if hasattr(engine, "event_counts"):
        result.obs["migrations"] = float(getattr(engine, "migrations", 0))
        result.obs["graph_version"] = float(getattr(engine, "graph_version", 0))
    supervision = getattr(engine, "supervision_status", None)
    status = supervision() if callable(supervision) else None
    if status is not None:
        result.obs["restarts"] = float(status["restarts"])
        result.obs["degraded_shards"] = float(len(status["degraded_shards"]))


def _cross_checks(spec: MatrixSpec, trials: list[TrialResult]) -> list[dict]:
    """Group exact variants per (scenario, algorithm); digests must agree."""
    groups: dict[tuple[str, str], list[TrialResult]] = {}
    by_label = {engine.label: engine for engine in spec.engines}
    for trial in trials:
        engine = by_label[trial.engine]
        if trial.status != "ok" or not engine.exact:
            continue
        groups.setdefault((trial.scenario, engine.algorithm), []).append(trial)
    checks = []
    for (scenario, algorithm), members in sorted(groups.items()):
        digests = {t.digest for t in members}
        checks.append(
            {
                "scenario": scenario,
                "algorithm": algorithm,
                "engines": [t.engine for t in members],
                "digests": sorted(digests),
                "ok": len(digests) == 1,
            }
        )
    return checks


def run_matrix(
    spec: MatrixSpec,
    *,
    spill_dir=None,
    progress=None,
) -> MatrixResult:
    """Execute every cell of the grid; one workload build per scenario.

    ``spill_dir`` hosts tiered-storage segments for ``spill`` engine
    variants (a temp directory is created when omitted); ``progress`` is
    an optional ``callable(str)`` fed one line per completed cell.
    """
    import tempfile

    start = time.perf_counter()
    trials: list[TrialResult] = []
    with tempfile.TemporaryDirectory(prefix="repro-experiments-") as tmp:
        base = spill_dir or tmp
        for scenario_spec in spec.scenarios:
            workload = make_workload(
                scenario_spec.name,
                scenario_spec.seed,
                config=scenario_spec.config(),
            )
            for engine_spec in spec.engines:
                trial = run_trial(
                    workload,
                    engine_spec,
                    spec.thresholds,
                    timeout_s=spec.timeout_s,
                    spill_dir=f"{base}/{len(trials)}",
                    scenario_label=scenario_spec.label,
                )
                trials.append(trial)
                if progress is not None:
                    progress(
                        f"{scenario_spec.label} x {engine_spec.label}: "
                        f"{trial.status} ({trial.posts_offered} posts, "
                        f"{trial.duration_s:.2f}s)"
                    )
    return MatrixResult(
        spec=spec,
        trials=trials,
        cross_checks=_cross_checks(spec, trials),
        duration_s=time.perf_counter() - start,
    )
