"""Comparative reports: a matrix run as JSON (always) or HTML (optional).

The JSON report is the machine artifact — the trajectory store and CI
gates read it — so its shape is versioned (``schema``) and everything in
it comes from :meth:`~repro.experiments.runner.TrialResult.to_dict`. The
HTML report is a single self-contained file (inline CSS, no external
assets) for humans skimming a grid run: one row per cell with status,
throughput, shed/drop counts, scan width and memory, grouped by
scenario, with cross-check verdicts on top.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from .runner import MatrixResult

__all__ = [
    "report_dict",
    "render_html",
    "write_json_report",
    "write_html_report",
]

#: Version of the JSON report shape (bump on breaking changes).
REPORT_SCHEMA = 1


def report_dict(result: MatrixResult) -> dict[str, object]:
    """The canonical JSON-ready report for a completed matrix run."""
    return {
        "schema": REPORT_SCHEMA,
        "matrix": result.spec.to_dict(),
        "ok": result.ok,
        "duration_s": result.duration_s,
        "counts": result.counts(),
        "cross_checks": list(result.cross_checks),
        "trials": [trial.to_dict() for trial in result.trials],
    }


def write_json_report(result: MatrixResult, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(report_dict(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: 0.6rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #c8c8d8; padding: 0.25rem 0.55rem; text-align: right; }
th { background: #eef; } td.name { text-align: left; font-family: monospace; }
.ok { color: #0a7a2f; } .bad { color: #b00020; font-weight: bold; }
.muted { color: #888; }
caption { caption-side: top; text-align: left; font-weight: bold; padding: 0.3rem 0; }
"""


def _fmt(value, digits: int = 1) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return f"{value:,}"


def _status_cell(status: str) -> str:
    css = "ok" if status == "ok" else ("muted" if status == "skipped" else "bad")
    return f'<td class="{css}">{html.escape(status)}</td>'


def render_html(result: MatrixResult) -> str:
    """A single self-contained HTML page for the matrix run."""
    spec = result.spec
    counts = result.counts()
    verdict = (
        '<span class="ok">PASS</span>' if result.ok else '<span class="bad">FAIL</span>'
    )
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>repro experiments: {html.escape(spec.name)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Matrix <code>{html.escape(spec.name)}</code> — {verdict}</h1>",
        "<p>",
        html.escape(spec.description or ""),
        f"<br>{spec.cells} cells ({len(spec.scenarios)} scenarios × "
        f"{len(spec.engines)} engine variants), "
        f"λc={spec.thresholds.lambda_c} λt={spec.thresholds.lambda_t} "
        f"λa={spec.thresholds.lambda_a}, ran in {result.duration_s:.2f}s — "
        + ", ".join(f"{v} {k}" for k, v in counts.items() if v),
        "</p>",
    ]

    parts.append("<h2>Cross-checks (exact variants must agree)</h2>")
    if result.cross_checks:
        parts.append(
            "<table><tr><th>scenario</th><th>algorithm</th>"
            "<th>engines</th><th>digests</th><th>verdict</th></tr>"
        )
        for check in result.cross_checks:
            css = "ok" if check["ok"] else "bad"
            word = "agree" if check["ok"] else "DISAGREE"
            parts.append(
                f'<tr><td class="name">{html.escape(str(check["scenario"]))}</td>'
                f'<td class="name">{html.escape(str(check["algorithm"]))}</td>'
                f'<td class="name">{html.escape(", ".join(check["engines"]))}</td>'
                f"<td>{len(check['digests'])}</td>"
                f'<td class="{css}">{word}</td></tr>'
            )
        parts.append("</table>")
    else:
        parts.append("<p class='muted'>no exact-variant groups in this grid</p>")

    scenarios: dict[str, list] = {}
    for trial in result.trials:
        scenarios.setdefault(trial.scenario, []).append(trial)
    for scenario, trials in scenarios.items():
        parts.append(f"<h2>{html.escape(scenario)}</h2>")
        parts.append(
            "<table><tr><th>engine</th><th>status</th><th>posts</th>"
            "<th>posts/s</th><th>deliveries</th><th>shed</th><th>dropped</th>"
            "<th>scan width</th><th>memory B</th><th>digest</th></tr>"
        )
        for t in trials:
            digest = (t.digest or "")[:12]
            parts.append(
                f'<tr><td class="name">{html.escape(t.engine)}</td>'
                + _status_cell(t.status)
                + f"<td>{_fmt(t.posts_offered)}</td>"
                + f"<td>{_fmt(t.posts_per_sec, 0)}</td>"
                + f"<td>{_fmt(t.deliveries)}</td>"
                + f"<td>{_fmt(t.shed)}</td>"
                + f"<td>{_fmt(t.dropped)}</td>"
                + f"<td>{_fmt(t.obs.get('scan_width_mean'), 2)}</td>"
                + f"<td>{_fmt(t.memory.get('accounted_bytes'))}</td>"
                + f'<td class="name">{html.escape(digest)}</td></tr>'
            )
        parts.append("</table>")
        errors = [t for t in trials if t.error and t.status != "skipped"]
        for t in errors:
            parts.append(
                f"<p class='bad'>{html.escape(t.engine)}: "
                f"<code>{html.escape(t.error.strip().splitlines()[-1])}</code></p>"
            )
    parts.append("</body></html>")
    return "".join(parts)


def write_html_report(result: MatrixResult, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(render_html(result), encoding="utf-8")
    return path
