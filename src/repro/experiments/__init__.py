"""repro.experiments — scenario-matrix harness and perf trajectory store.

Four pieces (fuzzbench-style: declarative grids over a generic runner):

* :mod:`~repro.experiments.workloads` — a registry of seeded adversarial
  scenario generators (flash crowds, spam floods, topic drift, author
  skew, churn storms) emitting byte-reproducible event streams;
* :mod:`~repro.experiments.grid` — declarative scenario × engine × config
  matrices, named (``smoke``/``adversarial``/``churn``) or loaded from a
  JSON grid file;
* :mod:`~repro.experiments.runner` — the trial runner: per-trial
  timeouts, crash capture, receiver-set digests, cross-checks between
  equivalent engine variants, stats via :mod:`repro.obs`;
* :mod:`~repro.experiments.report` / :mod:`~repro.experiments.trajectory`
  — comparative JSON/HTML reports, and the append-only per-PR
  ``BENCH_trajectory.json`` history with tolerance-based regression
  gates.

CLI: ``repro experiments --matrix smoke --out report.json``. See
``EXPERIMENTS.md`` for the operating manual.
"""

from .grid import (
    MATRICES,
    EngineSpec,
    MatrixSpec,
    ScenarioSpec,
    matrix_from_dict,
    resolve_matrix,
)
from .report import render_html, report_dict, write_html_report, write_json_report
from .runner import MatrixResult, TrialResult, run_matrix, run_trial
from .trajectory import (
    METRIC_SPECS,
    append_entry,
    check_regression,
    legacy_metrics,
    load_trajectory,
    make_entry,
    matrix_metrics,
    write_trajectory,
)
from .workloads import (
    SCENARIO_NAMES,
    ScenarioConfig,
    Workload,
    make_workload,
    scenario_help,
)

__all__ = [
    "MATRICES",
    "METRIC_SPECS",
    "SCENARIO_NAMES",
    "EngineSpec",
    "MatrixResult",
    "MatrixSpec",
    "ScenarioConfig",
    "ScenarioSpec",
    "TrialResult",
    "Workload",
    "append_entry",
    "check_regression",
    "legacy_metrics",
    "load_trajectory",
    "make_entry",
    "make_workload",
    "matrix_from_dict",
    "matrix_metrics",
    "render_html",
    "report_dict",
    "resolve_matrix",
    "run_matrix",
    "run_trial",
    "scenario_help",
    "write_html_report",
    "write_json_report",
    "write_trajectory",
]
