"""Friend/followee vectors for author similarity (paper §2).

The paper measures author similarity as the cosine similarity of the two
authors' *friend vectors* — on Twitter, the binary vector over who they
follow (their followees). This module holds that representation: a
:class:`FriendVectors` table mapping each author id to a frozen set of
followee ids, with the norms precomputed.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from ..errors import UnknownAuthorError


class FriendVectors:
    """Binary followee vectors for a universe of authors.

    ``friends[a]`` is the set of accounts author ``a`` follows. Vectors are
    binary, so the L2 norm of author ``a`` is ``sqrt(len(friends[a]))`` and
    the dot product of two authors is the size of their followee
    intersection.
    """

    __slots__ = ("_friends", "_norms")

    def __init__(self, friends: Mapping[int, Iterable[int]]):
        self._friends: dict[int, frozenset[int]] = {
            author: frozenset(f) for author, f in friends.items()
        }
        self._norms: dict[int, float] = {
            author: math.sqrt(len(f)) for author, f in self._friends.items()
        }

    def __len__(self) -> int:
        return len(self._friends)

    def __contains__(self, author: int) -> bool:
        return author in self._friends

    @property
    def authors(self) -> list[int]:
        """All author ids, in insertion order."""
        return list(self._friends)

    def friends_of(self, author: int) -> frozenset[int]:
        """Followee set of ``author``; raises for unknown authors."""
        try:
            return self._friends[author]
        except KeyError:
            raise UnknownAuthorError(f"author {author!r} has no friend vector") from None

    def similarity(self, a: int, b: int) -> float:
        """Cosine similarity of the two authors' followee vectors in [0, 1].

        An author with an empty followee set has similarity 0 with everyone
        (including themselves under this formula, though self-similarity is
        never queried by the diversifiers — same-author posts are always
        author-similar by definition).
        """
        fa, fb = self.friends_of(a), self.friends_of(b)
        if not fa or not fb:
            return 0.0
        if len(fa) > len(fb):
            fa, fb = fb, fa
        shared = sum(1 for f in fa if f in fb)
        if shared == 0:
            return 0.0
        return shared / (self._norms[a] * self._norms[b])

    def distance(self, a: int, b: int) -> float:
        """Author distance = 1 − cosine similarity (paper §2)."""
        return 1.0 - self.similarity(a, b)
