"""Thresholded author similarity graph G (paper §4).

Nodes are author ids; an undirected edge joins two authors whose distance
(1 − followee cosine) is at most λa. The graph is the shared substrate of
all three SPSD algorithms: UniBin and NeighborBin query neighbourhoods,
CliqueBin's edge cover is computed from it, and the M-SPSD sharing
optimisation partitions its per-user subgraphs into connected components.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import GraphError, UnknownAuthorError
from .vectors import FriendVectors

#: Tolerance for the similarity cut: ``1.0 - lambda_a`` is not exactly
#: representable (e.g. 1.0 - 0.7 = 0.30000000000000004), and a pair at
#: exactly the threshold similarity must be an edge.
_SIM_EPSILON = 1e-9


class AuthorGraph:
    """Undirected graph over author ids with O(1) adjacency tests."""

    __slots__ = ("_adjacency",)

    def __init__(self, nodes: Iterable[int], edges: Iterable[tuple[int, int]]):
        self._adjacency: dict[int, set[int]] = {node: set() for node in nodes}
        for a, b in edges:
            self.add_edge(a, b)

    @classmethod
    def from_vectors(cls, vectors: FriendVectors, lambda_a: float) -> "AuthorGraph":
        """Build G for author-distance threshold ``lambda_a``.

        Two authors are adjacent iff ``distance(a, b) <= lambda_a``, i.e.
        ``similarity(a, b) >= 1 - lambda_a``. ``lambda_a >= 1`` would connect
        *every* pair (distance is at most 1); we honour that degenerate case
        literally since the paper sweeps λa only within (0, 1).
        """
        if lambda_a < 0:
            raise GraphError(f"lambda_a must be non-negative, got {lambda_a}")
        min_sim = 1.0 - lambda_a - _SIM_EPSILON
        graph = cls(vectors.authors, ())
        if min_sim <= 0.0:
            authors = vectors.authors
            for i, a in enumerate(authors):
                for b in authors[i + 1 :]:
                    graph.add_edge(a, b)
            return graph
        from .similarity import pairwise_similarities  # local import: avoids cycle

        for a, b in pairwise_similarities(vectors, min_similarity=min_sim):
            graph.add_edge(a, b)
        return graph

    @classmethod
    def from_similarities(
        cls,
        nodes: Iterable[int],
        similarities: Mapping[tuple[int, int], float],
        lambda_a: float,
    ) -> "AuthorGraph":
        """Build G from a precomputed similarity table (reuses one all-pairs
        computation across a λa sweep, as the evaluation harness does)."""
        graph = cls(nodes, ())
        min_sim = 1.0 - lambda_a - _SIM_EPSILON
        for (a, b), sim in similarities.items():
            if sim >= min_sim:
                graph.add_edge(a, b)
        return graph

    # -- mutation ---------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Add an isolated node (no-op if present)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, a: int, b: int) -> None:
        """Add the undirected edge (a, b); both endpoints must be distinct.

        Unknown endpoints are added as nodes first, so edge lists can be
        loaded without a separate node pass.
        """
        if a == b:
            raise GraphError(f"self-loop on author {a} is not allowed")
        self._adjacency.setdefault(a, set()).add(b)
        self._adjacency.setdefault(b, set()).add(a)

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the undirected edge (a, b); the nodes stay.

        Removing an absent edge is a no-op so callers can replay edge
        deltas idempotently, but unknown endpoints are still an error.
        """
        if a not in self._adjacency:
            raise UnknownAuthorError(f"author {a!r} not in graph")
        if b not in self._adjacency:
            raise UnknownAuthorError(f"author {b!r} not in graph")
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)

    # -- queries ----------------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def nodes(self) -> list[int]:
        return list(self._adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(n) for n in self._adjacency.values()) // 2

    def edges(self) -> Iterable[tuple[int, int]]:
        """Yield each undirected edge once, as (small, large)."""
        for a, neighbors in self._adjacency.items():
            for b in neighbors:
                if a < b:
                    yield (a, b)

    def neighbors(self, node: int) -> set[int]:
        """Neighbour set of ``node`` (a live view — do not mutate)."""
        try:
            return self._adjacency[node]
        except KeyError:
            raise UnknownAuthorError(f"author {node!r} not in graph") from None

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    def are_similar(self, a: int, b: int) -> bool:
        """The author-coverage test: same author, or adjacent in G."""
        if a == b:
            return True
        return b in self.neighbors(a)

    def subgraph(self, nodes: Iterable[int]) -> "AuthorGraph":
        """Induced subgraph Gi on a user's subscription set (paper §4).

        Nodes absent from this graph are rejected — a subscription to an
        unknown author indicates upstream data inconsistency.
        """
        node_set = set(nodes)
        missing = node_set - self._adjacency.keys()
        if missing:
            raise UnknownAuthorError(f"authors not in graph: {sorted(missing)[:5]}")
        sub = AuthorGraph(node_set, ())
        for a in node_set:
            for b in self._adjacency[a]:
                if b in node_set and a < b:
                    sub.add_edge(a, b)
        return sub

    # -- statistics (paper §4.4 topology parameters) -----------------------

    def average_degree(self) -> float:
        """Mean neighbours per author — the paper's parameter *d*."""
        if not self._adjacency:
            return 0.0
        return sum(len(n) for n in self._adjacency.values()) / len(self._adjacency)

    def density(self) -> float:
        """Edges over possible edges, in [0, 1]."""
        m = len(self._adjacency)
        if m < 2:
            return 0.0
        return self.edge_count / (m * (m - 1) / 2)
