"""Author-distance substrate: friend vectors, similarity graph, cliques.

Public surface:

* :class:`FriendVectors` — followee sets with cosine similarity/distance.
* :func:`pairwise_similarities` — all-pairs similarity via inverted index.
* :class:`AuthorGraph` — the thresholded similarity graph G.
* :func:`greedy_clique_cover` / :class:`CliqueCover` — §4.3 edge cover.
* :func:`connected_components` / :class:`ComponentCatalog` — §5 sharing.
* :class:`SimilarityMaintainer` — incremental edge maintenance under
  follow/unfollow mutations (production companion to the offline batch).
"""

from .cliques import CliqueCover, greedy_clique_cover, per_edge_cover, verify_cover
from .components import ComponentCatalog, connected_components, user_components
from .graph import AuthorGraph
from .incremental import SimilarityMaintainer
from .similarity import candidate_pairs, pairwise_similarities, similarity_values
from .vectors import FriendVectors

__all__ = [
    "AuthorGraph",
    "CliqueCover",
    "ComponentCatalog",
    "FriendVectors",
    "SimilarityMaintainer",
    "candidate_pairs",
    "connected_components",
    "greedy_clique_cover",
    "pairwise_similarities",
    "per_edge_cover",
    "similarity_values",
    "user_components",
    "verify_cover",
]
