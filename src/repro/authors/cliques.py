"""Greedy clique edge cover (paper §4.3).

CliqueBin needs a collection of cliques of the author graph whose union
contains *every edge* (a clique edge cover), so that whenever two similar
authors exist, some bin holds both their posts. Minimising total clique
membership is NP-hard, so the paper uses a simple greedy heuristic, which we
reproduce exactly:

    pick an uncovered edge → grow a clique around it by repeatedly adding a
    node adjacent to *all* current members → save the clique → repeat until
    no uncovered edge remains.

Isolated authors get singleton cliques: the paper's cover is defined over
edges, but CliqueBin must also detect redundancy among posts *by the same
author*, so every author needs membership in at least one bin.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import GraphError
from .graph import AuthorGraph


class CliqueCover:
    """A clique edge cover plus the Author2Cliques lookup CliqueBin uses."""

    __slots__ = ("cliques", "_author_to_cliques")

    def __init__(self, cliques: Sequence[frozenset[int]]):
        self.cliques: list[frozenset[int]] = list(cliques)
        self._author_to_cliques: dict[int, list[int]] = {}
        for idx, clique in enumerate(self.cliques):
            if not clique:
                raise GraphError("empty clique in cover")
            for author in clique:
                self._author_to_cliques.setdefault(author, []).append(idx)

    def __len__(self) -> int:
        return len(self.cliques)

    def cliques_of(self, author: int) -> list[int]:
        """Indices of the cliques containing ``author`` (paper's
        Author2Cliques map); empty list for unknown authors."""
        return self._author_to_cliques.get(author, [])

    @property
    def total_membership(self) -> int:
        """Sum of clique sizes — the space objective the greedy minimises."""
        return sum(len(c) for c in self.cliques)

    def average_cliques_per_author(self) -> float:
        """The paper's parameter *c*."""
        if not self._author_to_cliques:
            return 0.0
        return self.total_membership / len(self._author_to_cliques)

    def average_clique_size(self) -> float:
        """The paper's parameter *s*."""
        if not self.cliques:
            return 0.0
        return self.total_membership / len(self.cliques)


def greedy_clique_cover(
    graph: AuthorGraph, *, node_order: Iterable[int] | None = None
) -> CliqueCover:
    """The paper's greedy clique-edge-cover heuristic.

    ``node_order`` fixes the iteration order of seed edges and growth
    candidates, making the cover deterministic (default: sorted ids). Every
    edge of ``graph`` is covered; isolated nodes receive singleton cliques.
    """
    order = list(node_order) if node_order is not None else sorted(graph.nodes)
    position = {node: i for i, node in enumerate(order)}

    uncovered: set[tuple[int, int]] = set(graph.edges())
    cliques: list[frozenset[int]] = []

    def edge_key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    # Deterministic seed scan: edges in order of their endpoints' positions.
    seed_edges = sorted(uncovered, key=lambda e: (position[e[0]], position[e[1]]))
    for seed in seed_edges:
        if seed not in uncovered:
            continue
        a, b = seed
        clique = {a, b}
        # Candidates must be adjacent to every clique member.
        candidates = graph.neighbors(a) & graph.neighbors(b)
        while candidates:
            node = min(candidates, key=position.__getitem__)
            clique.add(node)
            candidates = candidates & graph.neighbors(node)
            candidates.discard(node)
        members = sorted(clique, key=position.__getitem__)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                uncovered.discard(edge_key(u, v))
        cliques.append(frozenset(clique))

    covered_nodes = {node for clique in cliques for node in clique}
    for node in order:
        if node not in covered_nodes:
            cliques.append(frozenset((node,)))

    return CliqueCover(cliques)


def per_edge_cover(graph: AuthorGraph) -> CliqueCover:
    """Trivial cover: one 2-clique per edge (ablation baseline).

    Maximises clique count / membership; the ablation benchmark compares its
    ``total_membership`` against the greedy heuristic's.
    """
    cliques = [frozenset(edge) for edge in graph.edges()]
    covered = {node for clique in cliques for node in clique}
    cliques.extend(frozenset((node,)) for node in sorted(graph.nodes) if node not in covered)
    return CliqueCover(cliques)


def verify_cover(graph: AuthorGraph, cover: CliqueCover) -> None:
    """Raise :class:`GraphError` unless ``cover`` is a valid clique edge
    cover of ``graph`` touching every node. Used by tests and the property
    suite; cheap enough to run on evaluation-scale graphs."""
    for clique in cover.cliques:
        members = sorted(clique)
        for i, u in enumerate(members):
            if u not in graph:
                raise GraphError(f"clique member {u} not in graph")
            for v in members[i + 1 :]:
                if not graph.are_similar(u, v):
                    raise GraphError(f"non-edge ({u}, {v}) inside a clique")
    covered_edges = {
        (min(u, v), max(u, v))
        for clique in cover.cliques
        for i, u in enumerate(sorted(clique))
        for v in sorted(clique)[i + 1 :]
    }
    for edge in graph.edges():
        if edge not in covered_edges:
            raise GraphError(f"edge {edge} not covered")
    covered_nodes = {node for clique in cover.cliques for node in clique}
    for node in graph.nodes:
        if node not in covered_nodes:
            raise GraphError(f"node {node} in no clique")
