"""Incremental author-similarity maintenance.

The paper precomputes the author similarity graph offline ("once every
week"), arguing it changes slowly. A deployed service still has to *apply*
those slow changes: when a follow edge (a → f) appears or disappears, only
the similarities between ``a`` and the other followers of the touched
followees can change. :class:`SimilarityMaintainer` tracks followee sets
plus the follower inverted index and recomputes exactly that affected set,
reporting which author-graph edges crossed the λa threshold so bins/covers
can be refreshed selectively.

Cost per update: O(followers(f) + |friends(a)|) similarity evaluations
instead of the O(m²) full recomputation.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from ..errors import GraphError, UnknownAuthorError


class SimilarityMaintainer:
    """Mutable followee sets with incremental pairwise-similarity updates.

    The maintained state mirrors :class:`~repro.authors.FriendVectors`
    (binary followee vectors, cosine similarity) but supports ``follow`` /
    ``unfollow`` mutations. ``threshold`` is the *similarity* cut
    (``1 - lambda_a``); :meth:`edges` is always exactly the λa author-graph
    edge set for the current state, and each mutation returns the edge
    delta it caused.
    """

    def __init__(
        self,
        friends: Mapping[int, Iterable[int]],
        *,
        threshold: float,
    ):
        if not 0.0 < threshold <= 1.0:
            raise GraphError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self._friends: dict[int, set[int]] = {
            author: set(f) for author, f in friends.items()
        }
        # followee -> authors following it (within the maintained universe).
        self._followers: dict[int, set[int]] = {}
        for author, followees in self._friends.items():
            for followee in followees:
                self._followers.setdefault(followee, set()).add(author)
        self._edges: set[tuple[int, int]] = set()
        for author in self._friends:
            self._refresh_author(author)

    # -- similarity ---------------------------------------------------------

    def similarity(self, a: int, b: int) -> float:
        """Current cosine similarity of the two authors' followee sets."""
        fa, fb = self._friends_of(a), self._friends_of(b)
        if not fa or not fb:
            return 0.0
        shared = len(fa & fb)
        if shared == 0:
            return 0.0
        return shared / math.sqrt(len(fa) * len(fb))

    def _friends_of(self, author: int) -> set[int]:
        try:
            return self._friends[author]
        except KeyError:
            raise UnknownAuthorError(f"author {author!r} not maintained") from None

    @property
    def authors(self) -> list[int]:
        return list(self._friends)

    def edges(self) -> set[tuple[int, int]]:
        """The thresholded similarity edges, as (small, large) pairs."""
        return set(self._edges)

    def friends(self) -> dict[int, set[int]]:
        """Deep copy of the current followee sets (checkpoint snapshot)."""
        return {author: set(f) for author, f in self._friends.items()}

    # -- mutation -----------------------------------------------------------

    def follow(self, author: int, followee: int) -> dict[str, set[tuple[int, int]]]:
        """Record ``author`` following ``followee``; return the edge delta
        as ``{"added": {...}, "removed": {...}}``."""
        if author == followee:
            raise GraphError(f"author {author!r} cannot follow themselves")
        friends = self._friends_of(author)
        if followee in friends:
            return {"added": set(), "removed": set()}
        friends.add(followee)
        self._followers.setdefault(followee, set()).add(author)
        return self._recheck_affected(author, followee)

    def unfollow(self, author: int, followee: int) -> dict[str, set[tuple[int, int]]]:
        """Record ``author`` unfollowing ``followee``; return the edge delta."""
        friends = self._friends_of(author)
        if followee not in friends:
            return {"added": set(), "removed": set()}
        friends.discard(followee)
        followers = self._followers.get(followee)
        if followers is not None:
            followers.discard(author)
            if not followers:
                del self._followers[followee]
        return self._recheck_affected(author, followee)

    # -- internals ------------------------------------------------------------

    def _affected_partners(self, author: int, followee: int) -> set[int]:
        """Authors whose similarity to ``author`` may have changed.

        A followee-set change of ``author`` alters its norm, so *every*
        partner with non-zero overlap is affected; that is exactly the
        co-followers of any of ``author``'s followees, plus the followers
        of the touched followee (overlap may have gone to/from zero).
        """
        partners: set[int] = set()
        for f in self._friends_of(author):
            partners |= self._followers.get(f, set())
        partners |= {
            p for p in self._followers.get(followee, set()) if p in self._friends
        }
        partners.discard(author)
        # Edges can also *disappear* for partners that no longer share
        # anything; those still hold an edge entry — recheck them.
        for x, y in self._edges:
            if x == author:
                partners.add(y)
            elif y == author:
                partners.add(x)
        return partners

    def _recheck_pair(self, a: int, b: int, delta_added, delta_removed) -> None:
        key = (a, b) if a < b else (b, a)
        now_edge = self.similarity(a, b) >= self.threshold - 1e-12
        was_edge = key in self._edges
        if now_edge and not was_edge:
            self._edges.add(key)
            delta_added.add(key)
        elif was_edge and not now_edge:
            self._edges.discard(key)
            delta_removed.add(key)

    def _recheck_affected(
        self, author: int, followee: int
    ) -> dict[str, set[tuple[int, int]]]:
        added: set[tuple[int, int]] = set()
        removed: set[tuple[int, int]] = set()
        for partner in self._affected_partners(author, followee):
            self._recheck_pair(author, partner, added, removed)
        return {"added": added, "removed": removed}

    def _refresh_author(self, author: int) -> None:
        """Full recheck of one author's edges (used at construction)."""
        partners: set[int] = set()
        for f in self._friends_of(author):
            partners |= {
                p for p in self._followers.get(f, set()) if p in self._friends
            }
        partners.discard(author)
        added: set[tuple[int, int]] = set()
        removed: set[tuple[int, int]] = set()
        for partner in partners:
            self._recheck_pair(author, partner, added, removed)
