"""Connected components of author graphs (paper §5).

The M-SPSD sharing optimisation rests on one observation: if a set of
authors forms a connected component of a user's subscription subgraph Gi,
then the diversified sub-stream of that component's posts is the same for
*every* user whose Gi contains that exact component — no outside author can
cover (or be covered by) its posts. So components are the sharable unit of
computation, and we canonicalise them as frozensets to deduplicate across
users.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from .graph import AuthorGraph


def connected_components(graph: AuthorGraph) -> list[frozenset[int]]:
    """All connected components, as frozensets, in first-seen order.

    Isolated nodes form singleton components.
    """
    seen: set[int] = set()
    components: list[frozenset[int]] = []
    for start in graph.nodes:
        if start in seen:
            continue
        queue = deque((start,))
        seen.add(start)
        component = {start}
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(frozenset(component))
    return components


def user_components(
    graph: AuthorGraph, subscriptions: Iterable[int]
) -> list[frozenset[int]]:
    """Connected components of the induced subgraph Gi for one user's
    subscription set."""
    return connected_components(graph.subgraph(subscriptions))


class ComponentCatalog:
    """Deduplicated components across many users (the S_* substrate).

    Building the catalog computes each user's components once, keys them by
    node set, and records which users own which distinct component. The
    sharing win of S_UniBin et al. is exactly ``total_user_components -
    distinct_count``: every duplicate component is a diversification run the
    M_* algorithms repeat and the S_* algorithms skip.
    """

    __slots__ = ("components", "users_of", "components_of_user", "_index_of")

    def __init__(self, graph: AuthorGraph, subscriptions: dict[int, Iterable[int]]):
        self.components: list[frozenset[int]] = []
        self._index_of: dict[frozenset[int], int] = {}
        self.users_of: list[list[int]] = []
        self.components_of_user: dict[int, list[int]] = {}
        for user, subs in subscriptions.items():
            indices: list[int] = []
            for component in user_components(graph, subs):
                idx = self._index_of.get(component)
                if idx is None:
                    idx = len(self.components)
                    self._index_of[component] = idx
                    self.components.append(component)
                    self.users_of.append([])
                self.users_of[idx].append(user)
                indices.append(idx)
            self.components_of_user[user] = indices

    @property
    def distinct_count(self) -> int:
        return len(self.components)

    @property
    def total_user_components(self) -> int:
        """Component instances summed over users (what M_* would process)."""
        return sum(len(v) for v in self.components_of_user.values())

    def sharing_ratio(self) -> float:
        """Fraction of per-user component work eliminated by deduplication."""
        total = self.total_user_components
        if total == 0:
            return 0.0
        return 1.0 - self.distinct_count / total
