"""All-pairs author similarity with inverted-index pruning (paper §6.1).

The paper precomputes pairwise similarities for its 20,150-author sample and
notes that doing so for the full 660k graph "would be prohibitive". Binary
cosine over followee sets only produces a non-zero similarity for author
pairs that share at least one followee, so instead of the naive O(m²) loop
we build an inverted index ``followee -> followers-of-that-followee`` and
only score co-occurring pairs. On sparse social graphs this is orders of
magnitude fewer pairs.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

from .vectors import FriendVectors


def candidate_pairs(vectors: FriendVectors) -> Iterator[tuple[int, int]]:
    """Yield each unordered author pair sharing ≥1 followee, exactly once.

    Pairs are yielded with ``a < b``. This is the support of the similarity
    function: every pair not yielded has similarity exactly 0.
    """
    inverted: dict[int, list[int]] = defaultdict(list)
    for author in vectors.authors:
        for followee in vectors.friends_of(author):
            inverted[followee].append(author)
    seen: set[tuple[int, int]] = set()
    for followers in inverted.values():
        if len(followers) < 2:
            continue
        followers.sort()
        for i, a in enumerate(followers):
            for b in followers[i + 1 :]:
                pair = (a, b)
                if pair not in seen:
                    seen.add(pair)
                    yield pair


def pairwise_similarities(
    vectors: FriendVectors, *, min_similarity: float = 0.0
) -> dict[tuple[int, int], float]:
    """Similarities of all non-trivial pairs, optionally filtered.

    Returns ``{(a, b): similarity}`` with ``a < b`` for every pair whose
    similarity is positive and ≥ ``min_similarity``. Use
    ``min_similarity = 1 - lambda_a`` to get exactly the edge set of the
    author similarity graph for threshold ``lambda_a``.
    """
    out: dict[tuple[int, int], float] = {}
    for a, b in candidate_pairs(vectors):
        sim = vectors.similarity(a, b)
        if sim > 0.0 and sim >= min_similarity:
            out[(a, b)] = sim
    return out


def similarity_values(vectors: FriendVectors) -> list[float]:
    """Positive pairwise similarity values (for Figure 9's distribution).

    Pairs with zero similarity are omitted; the CCDF code accounts for the
    total pair count separately so the zero mass is still represented.
    """
    return [vectors.similarity(a, b) for a, b in candidate_pairs(vectors)]
