"""S_UniBin / S_NeighborBin / S_CliqueBin: shared-component runs (§5).

The sharing insight: a connected component of a user's subscription graph
Gi is diversified identically for *every* user whose Gi contains that exact
component — posts outside the component can never cover posts inside it
(they are author-dissimilar by construction). So the engine:

1. computes each user's components, deduplicating identical node sets
   across users (:class:`~repro.authors.ComponentCatalog`);
2. runs one single-user diversifier per *distinct* component, over the
   component's induced subgraph;
3. routes an arriving post to the distinct components containing its
   author; each admitting component delivers the post to all of its users.

A user's resulting timeline equals the union of their components' outputs —
provably identical to the M_* timeline, which the integration tests check.
"""

from __future__ import annotations

from collections import defaultdict

from ..authors import AuthorGraph, ComponentCatalog
from ..core import Post, RunStats, StreamDiversifier, Thresholds, make_diversifier
from .base import MultiUserDiversifier
from .routing import SubscriptionTable


class SharedComponentMultiUser(MultiUserDiversifier):
    """One single-user diversifier per distinct connected component."""

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        graph: AuthorGraph,
        subscriptions: SubscriptionTable,
        *,
        storage=None,
    ):
        self.name = f"s_{algorithm}"
        self.algorithm = algorithm
        self.thresholds = thresholds
        self.subscriptions = subscriptions
        self.catalog = ComponentCatalog(graph, subscriptions.as_dict())
        self._instances: list[StreamDiversifier] = []
        self._users_of: list[frozenset[int]] = []
        # author -> indices of distinct components containing it
        self._components_of_author: dict[int, list[int]] = defaultdict(list)
        for idx, component in enumerate(self.catalog.components):
            sub = graph.subgraph(component)
            self._instances.append(
                make_diversifier(algorithm, thresholds, sub, storage=storage)
            )
            self._users_of.append(frozenset(self.catalog.users_of[idx]))
            for author in component:
                self._components_of_author[author].append(idx)

    def offer(self, post: Post) -> frozenset[int]:
        receivers: set[int] = set()
        components = self._components_of_author.get(post.author, ())
        for idx in components:
            if self._instances[idx].offer(post):
                receivers.update(self._users_of[idx])
        result = frozenset(receivers)
        if self._metrics is not None:
            self._metrics.record(len(components), result)
        return result

    def offer_batch(self, posts) -> list[frozenset[int]]:
        """Chunked offers with the routing lookups hoisted out of the loop."""
        components_of_author = self._components_of_author
        instances = self._instances
        users_of = self._users_of
        metrics = self._metrics
        out: list[frozenset[int]] = []
        for post in posts:
            components = components_of_author.get(post.author, ())
            receivers: set[int] = set()
            for idx in components:
                if instances[idx].offer(post):
                    receivers.update(users_of[idx])
            result = frozenset(receivers)
            if metrics is not None:
                metrics.record(len(components), result)
            out.append(result)
        return out

    def aggregate_stats(self) -> RunStats:
        total = RunStats()
        for instance in self._instances:
            total.merge(instance.stats)
        return total

    def instance_count(self) -> int:
        return len(self._instances)

    def stored_copies(self) -> int:
        return sum(inst.stored_copies() for inst in self._instances)

    def purge(self, now: float) -> None:
        for instance in self._instances:
            instance.purge(now)

    def _each_instance(self):
        return iter(self._instances)

    def sharing_ratio(self) -> float:
        """Fraction of per-user component work removed by deduplication."""
        return self.catalog.sharing_ratio()

    def state_dict(self) -> dict[str, object]:
        # Component order is deterministic for a given graph + subscription
        # table (the catalog enumerates users and components stably), so
        # instances are checkpointed positionally.
        return {
            "engine": self.name,
            "components": [inst.state_dict() for inst in self._instances],
        }

    def load_state(self, state: dict[str, object]) -> None:
        from ..errors import CheckpointError

        components: list[dict[str, object]] = state["components"]  # type: ignore[assignment]
        if len(components) != len(self._instances):
            raise CheckpointError(
                f"checkpoint has {len(components)} components; this engine "
                f"has {len(self._instances)} (graph/subscriptions mismatch)"
            )
        for instance, instance_state in zip(self._instances, components):
            instance.load_state(instance_state)
