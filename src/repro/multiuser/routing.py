"""Subscription routing for M-SPSD (paper §2, Figure 1b).

A central diversification engine serves many users, each subscribed to a
set of authors. The :class:`SubscriptionTable` stores both directions of
that relation: user → subscribed authors (to build per-user graphs Gi) and
author → subscribing users (to route each arriving post to the users whose
timelines it may enter).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import ConfigurationError


class SubscriptionTable:
    """Bidirectional user ⇄ author subscription mapping."""

    __slots__ = ("_subscriptions", "_subscribers")

    def __init__(self, subscriptions: Mapping[int, Iterable[int]]):
        self._subscriptions: dict[int, frozenset[int]] = {}
        self._subscribers: dict[int, set[int]] = {}
        for user, authors in subscriptions.items():
            author_set = frozenset(authors)
            if not author_set:
                raise ConfigurationError(f"user {user} has no subscriptions")
            self._subscriptions[user] = author_set
            for author in author_set:
                self._subscribers.setdefault(author, set()).add(user)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, user: int) -> bool:
        return user in self._subscriptions

    @property
    def users(self) -> list[int]:
        return list(self._subscriptions)

    @property
    def authors(self) -> list[int]:
        """Every author with at least one subscriber."""
        return list(self._subscribers)

    def subscriptions_of(self, user: int) -> frozenset[int]:
        """Authors ``user`` subscribes to; raises for unknown users."""
        try:
            return self._subscriptions[user]
        except KeyError:
            raise ConfigurationError(f"unknown user {user!r}") from None

    def subscribers_of(self, author: int) -> frozenset[int]:
        """Users subscribed to ``author``; empty for unsubscribed authors."""
        return frozenset(self._subscribers.get(author, ()))

    def as_dict(self) -> dict[int, frozenset[int]]:
        """Copy of the user → authors mapping."""
        return dict(self._subscriptions)

    def average_subscriptions(self) -> float:
        """Mean subscriptions per user (the paper reports 130 after
        restricting to crawled authors)."""
        if not self._subscriptions:
            return 0.0
        return sum(len(s) for s in self._subscriptions.values()) / len(self._subscriptions)

    def median_subscriptions(self) -> float:
        """Median subscriptions per user (the paper reports 20)."""
        sizes = sorted(len(s) for s in self._subscriptions.values())
        if not sizes:
            return 0.0
        mid = len(sizes) // 2
        if len(sizes) % 2:
            return float(sizes[mid])
        return (sizes[mid - 1] + sizes[mid]) / 2.0
