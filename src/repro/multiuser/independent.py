"""M_UniBin / M_NeighborBin / M_CliqueBin: per-user independent runs (§5).

The baseline M-SPSD solution simply instantiates the single-user algorithm
once per user, over that user's subscription subgraph Gi, and routes each
arriving post to the instances of every subscribing user. All computation is
repeated for users with overlapping subscriptions — the inefficiency the
S_* algorithms remove.

Because every user runs in isolation, this engine also supports the
*user-customised thresholds* the paper highlights as an SPSD advantage
(§2: "in SPSD we can easily support user customized diversity thresholds"),
e.g. a user raising λt to thin out a very busy timeline. The S_* engines
cannot — identical thresholds are a precondition for sharing a component's
diversification across users.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..authors import AuthorGraph
from ..core import Post, RunStats, StreamDiversifier, Thresholds, make_diversifier
from .base import MultiUserDiversifier
from .routing import SubscriptionTable


class IndependentMultiUser(MultiUserDiversifier):
    """One single-user diversifier per user.

    ``per_user_thresholds`` optionally overrides the default thresholds for
    specific users; everyone else uses ``thresholds``.
    """

    def __init__(
        self,
        algorithm: str,
        thresholds: Thresholds,
        graph: AuthorGraph,
        subscriptions: SubscriptionTable,
        *,
        per_user_thresholds: Mapping[int, Thresholds] | None = None,
        storage=None,
    ):
        self.name = f"m_{algorithm}"
        self.algorithm = algorithm
        self.thresholds = thresholds
        self.subscriptions = subscriptions
        overrides = dict(per_user_thresholds or {})
        self._instances: dict[int, StreamDiversifier] = {}
        for user in subscriptions.users:
            gi = graph.subgraph(subscriptions.subscriptions_of(user))
            self._instances[user] = make_diversifier(
                algorithm, overrides.get(user, thresholds), gi, storage=storage
            )

    def offer(self, post: Post) -> frozenset[int]:
        users = self.subscriptions.subscribers_of(post.author)
        receivers = frozenset(
            user for user in users if self._instances[user].offer(post)
        )
        if self._metrics is not None:
            self._metrics.record(len(users), receivers)
        return receivers

    def aggregate_stats(self) -> RunStats:
        total = RunStats()
        for instance in self._instances.values():
            total.merge(instance.stats)
        return total

    def instance_count(self) -> int:
        return len(self._instances)

    def stored_copies(self) -> int:
        return sum(inst.stored_copies() for inst in self._instances.values())

    def purge(self, now: float) -> None:
        for instance in self._instances.values():
            instance.purge(now)

    def _each_instance(self):
        return iter(self._instances.values())

    def instance_of(self, user: int) -> StreamDiversifier:
        """The per-user instance (exposed for tests and inspection)."""
        return self._instances[user]

    def state_dict(self) -> dict[str, object]:
        return {
            "engine": self.name,
            "users": {
                user: instance.state_dict()
                for user, instance in self._instances.items()
            },
        }

    def load_state(self, state: dict[str, object]) -> None:
        from ..errors import CheckpointError

        users: dict[int, dict[str, object]] = state["users"]  # type: ignore[assignment]
        if set(users) != set(self._instances):
            raise CheckpointError(
                "checkpoint user set does not match this engine's "
                "subscription table"
            )
        for user, instance_state in users.items():
            self._instances[user].load_state(instance_state)
