"""Multi-user SPSD (M-SPSD) engines (paper §5).

Public surface:

* :class:`SubscriptionTable` — user ⇄ author routing.
* :class:`IndependentMultiUser` — the M_* per-user baseline.
* :class:`SharedComponentMultiUser` — the S_* shared-component optimisation.
* :func:`make_multiuser` — construct any engine by name (``"m_unibin"``,
  ``"s_cliquebin"``, ``"p_unibin"`` …).

The ``p_*`` names are the sharded :class:`~repro.parallel.
ParallelSharedMultiUser` engines (S_* semantics spread over worker
processes); they accept every registry algorithm, including
``indexed_unibin``.

With ``dynamic=True`` (and a ``friends`` relation) the ``s_*``/``p_*``
names instead build the churn-capable
:class:`~repro.dynamic.DynamicMultiUser` — same shared-component
semantics, but the author graph is derived from ``friends`` and mutates
with follow/unfollow events; ``p_*`` maps to ``workers`` processes.
"""

from ..authors import AuthorGraph
from ..core import ALGORITHM_NAMES, ALGORITHMS, Thresholds
from ..errors import ConfigurationError, UnknownAlgorithmError
from .base import MultiUserDiversifier
from .independent import IndependentMultiUser
from .routing import SubscriptionTable
from .shared import SharedComponentMultiUser

MULTIUSER_NAMES: tuple[str, ...] = tuple(
    f"{prefix}_{algo}" for prefix in ("m", "s") for algo in ALGORITHM_NAMES
)

#: The parallel sharded engines (one per registry algorithm).
PARALLEL_NAMES: tuple[str, ...] = tuple(f"p_{algo}" for algo in ALGORITHMS)


def make_multiuser(
    name: str,
    thresholds: Thresholds,
    graph: AuthorGraph | None,
    subscriptions: SubscriptionTable,
    *,
    workers: int = 1,
    batch_size: int = 512,
    dynamic: bool = False,
    friends=None,
    supervised: bool = False,
    supervision=None,
    shard_deadline: float | None = 120.0,
    storage=None,
    transport: str = "auto",
) -> MultiUserDiversifier:
    """Instantiate an M-SPSD engine by name, e.g. ``"s_cliquebin"``.

    ``workers``/``batch_size`` configure the ``p_*`` sharded engines and
    are ignored by the serial ``m_*``/``s_*`` ones. ``dynamic=True``
    builds the churn-capable engine for ``s_*``/``p_*`` names from the
    ``friends`` relation (``graph`` is ignored — the dynamic engine owns
    its graph); the per-user ``m_*`` engines have no dynamic counterpart.
    ``supervised=True`` wraps any multi-worker pool in a
    :class:`~repro.supervise.ShardSupervisor` (tuned by ``supervision``, a
    :class:`~repro.supervise.SupervisionConfig`); ``shard_deadline``
    bounds unsupervised worker replies. All three are ignored by serial
    engines. ``storage`` (a :class:`repro.storage.SpillConfig`) makes the
    static engines' window bins tiered — in-memory head + disk spill
    segments — with identical verdicts; the dynamic engines keep their
    windows in memory (migration rewrites bins wholesale). ``transport``
    selects the ``p_*`` engines' shard transport (``"auto"``/``"shm"``/
    ``"pipe"``, see :class:`~repro.parallel.ParallelSharedMultiUser`);
    serial and dynamic engines ignore it.
    """
    prefix, _, algorithm = name.partition("_")
    if dynamic:
        if storage is not None:
            raise ConfigurationError(
                "dynamic engines do not support tiered window storage: "
                "topology churn rewrites bins wholesale, defeating "
                "append-only spill segments; drop storage= or dynamic="
            )
        if friends is None:
            raise ConfigurationError(
                "dynamic engines derive their graph from follow relations; "
                "pass friends= (author -> followee ids)"
            )
        if name in PARALLEL_NAMES or (name in MULTIUSER_NAMES and prefix == "s"):
            from ..dynamic import DynamicMultiUser

            return DynamicMultiUser(
                algorithm,
                thresholds,
                friends,
                subscriptions,
                workers=workers if name in PARALLEL_NAMES else 1,
                batch_size=batch_size,
                supervised=supervised,
                supervision=supervision,
                shard_deadline=shard_deadline,
            )
        raise UnknownAlgorithmError(
            f"no dynamic variant of {name!r}; dynamic mode supports the "
            "shared-component engines "
            f"{tuple(n for n in MULTIUSER_NAMES if n.startswith('s_')) + PARALLEL_NAMES}"
        )
    if name in PARALLEL_NAMES:
        from ..parallel import ParallelSharedMultiUser

        return ParallelSharedMultiUser(
            algorithm,
            thresholds,
            graph,
            subscriptions,
            workers=workers,
            batch_size=batch_size,
            supervised=supervised,
            supervision=supervision,
            shard_deadline=shard_deadline,
            storage=storage,
            transport=transport,
        )
    if name not in MULTIUSER_NAMES:
        raise UnknownAlgorithmError(
            f"unknown multi-user algorithm {name!r}; choose from "
            f"{MULTIUSER_NAMES + PARALLEL_NAMES}"
        )
    if prefix == "m":
        return IndependentMultiUser(
            algorithm, thresholds, graph, subscriptions, storage=storage
        )
    return SharedComponentMultiUser(
        algorithm, thresholds, graph, subscriptions, storage=storage
    )


__all__ = [
    "MULTIUSER_NAMES",
    "PARALLEL_NAMES",
    "IndependentMultiUser",
    "MultiUserDiversifier",
    "SharedComponentMultiUser",
    "SubscriptionTable",
    "make_multiuser",
]
