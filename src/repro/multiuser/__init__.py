"""Multi-user SPSD (M-SPSD) engines (paper §5).

Public surface:

* :class:`SubscriptionTable` — user ⇄ author routing.
* :class:`IndependentMultiUser` — the M_* per-user baseline.
* :class:`SharedComponentMultiUser` — the S_* shared-component optimisation.
* :func:`make_multiuser` — construct either by name (``"m_unibin"`` …).
"""

from ..authors import AuthorGraph
from ..core import ALGORITHM_NAMES, Thresholds
from ..errors import UnknownAlgorithmError
from .base import MultiUserDiversifier
from .independent import IndependentMultiUser
from .routing import SubscriptionTable
from .shared import SharedComponentMultiUser

MULTIUSER_NAMES: tuple[str, ...] = tuple(
    f"{prefix}_{algo}" for prefix in ("m", "s") for algo in ALGORITHM_NAMES
)


def make_multiuser(
    name: str,
    thresholds: Thresholds,
    graph: AuthorGraph,
    subscriptions: SubscriptionTable,
) -> MultiUserDiversifier:
    """Instantiate an M-SPSD engine by name, e.g. ``"s_cliquebin"``."""
    prefix, _, algorithm = name.partition("_")
    if name not in MULTIUSER_NAMES:
        raise UnknownAlgorithmError(
            f"unknown multi-user algorithm {name!r}; choose from {MULTIUSER_NAMES}"
        )
    if prefix == "m":
        return IndependentMultiUser(algorithm, thresholds, graph, subscriptions)
    return SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)


__all__ = [
    "MULTIUSER_NAMES",
    "IndependentMultiUser",
    "MultiUserDiversifier",
    "SharedComponentMultiUser",
    "SubscriptionTable",
    "make_multiuser",
]
