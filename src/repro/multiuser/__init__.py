"""Multi-user SPSD (M-SPSD) engines (paper §5).

Public surface:

* :class:`SubscriptionTable` — user ⇄ author routing.
* :class:`IndependentMultiUser` — the M_* per-user baseline.
* :class:`SharedComponentMultiUser` — the S_* shared-component optimisation.
* :func:`make_multiuser` — construct any engine by name (``"m_unibin"``,
  ``"s_cliquebin"``, ``"p_unibin"`` …).

The ``p_*`` names are the sharded :class:`~repro.parallel.
ParallelSharedMultiUser` engines (S_* semantics spread over worker
processes); they accept every registry algorithm, including
``indexed_unibin``.
"""

from ..authors import AuthorGraph
from ..core import ALGORITHM_NAMES, ALGORITHMS, Thresholds
from ..errors import UnknownAlgorithmError
from .base import MultiUserDiversifier
from .independent import IndependentMultiUser
from .routing import SubscriptionTable
from .shared import SharedComponentMultiUser

MULTIUSER_NAMES: tuple[str, ...] = tuple(
    f"{prefix}_{algo}" for prefix in ("m", "s") for algo in ALGORITHM_NAMES
)

#: The parallel sharded engines (one per registry algorithm).
PARALLEL_NAMES: tuple[str, ...] = tuple(f"p_{algo}" for algo in ALGORITHMS)


def make_multiuser(
    name: str,
    thresholds: Thresholds,
    graph: AuthorGraph,
    subscriptions: SubscriptionTable,
    *,
    workers: int = 1,
    batch_size: int = 512,
) -> MultiUserDiversifier:
    """Instantiate an M-SPSD engine by name, e.g. ``"s_cliquebin"``.

    ``workers``/``batch_size`` configure the ``p_*`` sharded engines and
    are ignored by the serial ``m_*``/``s_*`` ones.
    """
    prefix, _, algorithm = name.partition("_")
    if name in PARALLEL_NAMES:
        from ..parallel import ParallelSharedMultiUser

        return ParallelSharedMultiUser(
            algorithm,
            thresholds,
            graph,
            subscriptions,
            workers=workers,
            batch_size=batch_size,
        )
    if name not in MULTIUSER_NAMES:
        raise UnknownAlgorithmError(
            f"unknown multi-user algorithm {name!r}; choose from "
            f"{MULTIUSER_NAMES + PARALLEL_NAMES}"
        )
    if prefix == "m":
        return IndependentMultiUser(algorithm, thresholds, graph, subscriptions)
    return SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)


__all__ = [
    "MULTIUSER_NAMES",
    "PARALLEL_NAMES",
    "IndependentMultiUser",
    "MultiUserDiversifier",
    "SharedComponentMultiUser",
    "SubscriptionTable",
    "make_multiuser",
]
