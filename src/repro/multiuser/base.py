"""Common interface of the M-SPSD engines (paper §5).

An M-SPSD engine consumes the global post stream once; for each post it
returns the set of users on whose diversified timeline the post appears.
The two implementations — per-user independent runs (M_*) and
shared-connected-component runs (S_*) — expose identical semantics, which
the test suite exploits to check they produce byte-identical timelines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from ..core import Post, RunStats


class MultiUserDiversifier(ABC):
    """Online M-SPSD solver."""

    #: e.g. "m_unibin" / "s_unibin"; subclasses override.
    name = "abstract"

    #: Observability bundle; ``None`` (the class default) keeps the offer
    #: path uninstrumented. Set via :meth:`bind_metrics`.
    _metrics = None

    @abstractmethod
    def offer(self, post: Post) -> frozenset[int]:
        """Process one arriving post; return the users who receive it."""

    def offer_batch(self, posts) -> list[frozenset[int]]:
        """Offer a timestamp-ordered chunk; one receiver set per post.

        Semantically identical to ``[self.offer(p) for p in posts]``.
        Engines with per-chunk economies (the parallel sharded engine ships
        one IPC round-trip per chunk) override this; the default just
        amortizes the method lookup.
        """
        offer = self.offer
        return [offer(post) for post in posts]

    def bind_metrics(self, registry, *, per_user: bool = False) -> None:
        """Attach observability to this engine.

        Aggregate cost counters re-export :meth:`aggregate_stats` under
        this engine's name; live shared-work counters (stream posts,
        instance offers, deliveries) quantify the §5 sharing argument.
        ``per_user=True`` additionally counts deliveries per user id —
        opt-in because its label cardinality is the user base. ``None``
        or a no-op registry unbinds.
        """
        if registry is None or getattr(registry, "is_noop", False):
            self._metrics = None
            return
        from ..obs.instruments import MultiUserInstruments

        self._metrics = MultiUserInstruments(registry, self, per_user=per_user)

    @abstractmethod
    def aggregate_stats(self) -> RunStats:
        """Counters summed across all internal diversifier instances."""

    @abstractmethod
    def instance_count(self) -> int:
        """Number of independent SPSD instances the engine maintains."""

    @abstractmethod
    def stored_copies(self) -> int:
        """Post copies currently resident across all instances."""

    @abstractmethod
    def purge(self, now: float) -> None:
        """Evict expired copies from every instance (periodic GC)."""

    # -- bounded-memory hooks (repro.resilience.governor) ------------------
    #
    # Defaults cover engines whose instances live in this process; the
    # parallel engine overrides them with worker round-trips.

    def _each_instance(self):
        """Iterate the in-process single-user instances (engines holding
        them elsewhere override the hooks below instead)."""
        return iter(())

    def spill(self) -> int:
        """Flush every instance's tiered bins to disk (governor rung 1);
        returns posts moved, 0 without tiered storage."""
        return sum(inst.spill() for inst in self._each_instance())

    def set_probe_limit(self, limit: int | None) -> None:
        """Cap candidates checked per bin scan in every instance (governor
        rung 2); ``None`` restores exact scans."""
        for inst in self._each_instance():
            inst.set_probe_limit(limit)

    def memory_breakdown(self) -> dict[str, int]:
        """Accounted bytes by family summed across instances."""
        totals: dict[str, int] = {}
        for inst in self._each_instance():
            for family, used in inst.memory_breakdown().items():
                totals[family] = totals.get(family, 0) + used
        return totals

    def memory_bytes(self) -> int:
        """Total accounted in-memory bytes across instances."""
        return sum(self.memory_breakdown().values())

    @abstractmethod
    def state_dict(self) -> dict[str, object]:
        """Checkpointable state of every internal diversifier instance."""

    @abstractmethod
    def load_state(self, state: dict[str, object]) -> None:
        """Restore state saved by :meth:`state_dict`; the engine must have
        been constructed from the same graph and subscription table."""

    def run(self, posts: Iterable[Post]) -> dict[int, list[Post]]:
        """Consume a whole stream; return each user's diversified timeline."""
        timelines: dict[int, list[Post]] = {}
        for post in posts:
            for user in self.offer(post):
                timelines.setdefault(user, []).append(post)
        return timelines
