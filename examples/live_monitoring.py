"""Operational monitoring of a diversified stream.

Shows the deployment-facing API: a :class:`DiversifiedStream` iterator in
the consume loop (with a prune hook), and the windowed time-series a
service would export to its metrics system — per-hour arrivals, prune
rate, work done and resident memory.

Run:  python examples/live_monitoring.py
"""

from repro.core import DiversifiedStream, Thresholds, UniBin
from repro.eval import render_table, windowed_timeseries
from repro.social import small_dataset


def main() -> None:
    dataset = small_dataset()
    thresholds = Thresholds()
    graph = dataset.graph(thresholds.lambda_a)

    # --- consume loop, as an app would run it ---------------------------
    pruned_log = []
    stream = DiversifiedStream(
        UniBin(thresholds, graph),
        dataset.posts,
        on_prune=pruned_log.append,
        purge_every=500,
    )
    shown = sum(1 for _ in stream)  # a real app would render each post
    print(
        f"timeline rendered {shown} posts; {stream.pruned} redundant posts "
        f"hidden ({stream.pruned / stream.processed:.1%} of the stream)"
    )
    if pruned_log:
        print(f"  last hidden post: {pruned_log[-1].text[:60]}")
    print()

    # --- metrics export: one row per hour --------------------------------
    rows = [
        row.as_dict()
        for row in windowed_timeseries(
            UniBin(thresholds, graph), dataset.posts, window=3600.0
        )
    ]
    print(render_table(rows, title="Per-hour operational metrics"))
    print()
    busiest = max(rows, key=lambda r: r["arrivals"])
    print(
        f"busiest hour: {busiest['arrivals']} arrivals, "
        f"prune rate {busiest['prune_rate']:.1%}, "
        f"{busiest['stored_copies']} posts resident at hour end"
    )


if __name__ == "__main__":
    main()
