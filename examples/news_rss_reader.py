"""News RSS reader scenario — the paper's Table-4 use case for UniBin.

News agencies cluster by editorial outlook, so the author similarity graph
is *dense* (agencies in a cluster are all similar), and the feed rate is
low compared to a microblog firehose. Table 4 prescribes UniBin here; this
example builds exactly that workload, asks the advisor, and shows the
binned algorithms' replication exploding on the dense graph while UniBin
stays flat.

Run:  python examples/news_rss_reader.py
"""

import random

from repro import Thresholds
from repro.core import WorkloadProfile, recommend
from repro.authors import AuthorGraph
from repro.core import Post
from repro.eval import compare_algorithms, render_table
from repro.social import DuplicateFactory, TextGenerator, Vocabulary


def build_agency_graph(n_clusters: int = 4, agencies_per_cluster: int = 8) -> AuthorGraph:
    """Agencies within a cluster are pairwise similar (dense cliques)."""
    nodes = list(range(n_clusters * agencies_per_cluster))
    edges = []
    for cluster in range(n_clusters):
        members = nodes[
            cluster * agencies_per_cluster : (cluster + 1) * agencies_per_cluster
        ]
        edges.extend(
            (a, b) for i, a in enumerate(members) for b in members[i + 1 :]
        )
    return AuthorGraph(nodes, edges)


def build_feed(graph: AuthorGraph, hours: float = 8.0, seed: int = 5):
    """A slow RSS feed: each cluster breaks a story, members echo it."""
    rng = random.Random(seed)
    vocabulary = Vocabulary(topics=4, seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    factory = DuplicateFactory(generator, seed=seed + 2)
    posts = []
    t = 0.0
    post_id = 0
    while t < hours * 3600.0:
        t += rng.expovariate(1 / 120.0)  # a story every ~2 minutes
        cluster = rng.randrange(4)
        members = [n for n in graph.nodes if n // 8 == cluster]
        story = generator.fresh(cluster, rng=rng)
        posts.append(Post.create(post_id, rng.choice(members), story.text, t))
        post_id += 1
        # Other agencies in the cluster re-publish within minutes.
        echoes = rng.randrange(0, 4)
        for _ in range(echoes):
            t += rng.expovariate(1 / 40.0)
            variant = factory.redundant_variant(story, rng=rng)
            posts.append(
                Post.create(post_id, rng.choice(members), variant.variant, t)
            )
            post_id += 1
    return posts


def main() -> None:
    graph = build_agency_graph()
    posts = build_feed(graph)
    thresholds = Thresholds(lambda_t=1800.0)

    print(
        f"news feed: {len(posts)} items over 8h from {len(graph)} agencies; "
        f"author graph density {graph.density():.2f} (dense: clustered outlets)"
    )

    # Ask the Table-4 advisor.
    profile = WorkloadProfile(
        lambda_t=thresholds.lambda_t,
        lambda_a=thresholds.lambda_a,
        posts_per_window=len(posts) / (8 * 3600.0 / thresholds.lambda_t),
    )
    recommendation = recommend(profile)
    print(f"advisor recommends: {recommendation.algorithm}")
    for reason in recommendation.reasons:
        print(f"  - {reason}")
    print(f"  (paper's example use case: {recommendation.example_use_case})")
    print()

    runs = compare_algorithms(thresholds, graph, posts)
    print(render_table([r.as_row() for r in runs], title="RSS feed diversification"))
    print()
    uni = next(r for r in runs if r.algorithm == "unibin")
    print(
        f"UniBin pruned {uni.posts_rejected} re-published stories "
        f"({100 * (1 - uni.retention_ratio):.0f}% of the feed) with the "
        f"smallest memory footprint — the Table-4 prescription."
    )


if __name__ == "__main__":
    main()
