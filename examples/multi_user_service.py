"""Central diversification service for many users (M-SPSD, paper §5).

Every author in the sampled network is also a user following their
followees. The example runs the per-user baseline (M_UniBin) and the
shared-connected-component engine (S_UniBin) over the same stream, shows
that every user's timeline is identical, and reports the computation the
sharing optimisation saved — the paper's Figure 16 in miniature.

Run:  python examples/multi_user_service.py
"""

from repro import Thresholds, make_multiuser
from repro.eval import render_table, run_multiuser
from repro.social import small_dataset


def main() -> None:
    print("building synthetic network + stream...")
    dataset = small_dataset()
    thresholds = Thresholds()
    graph = dataset.graph(thresholds.lambda_a)
    subscriptions = dataset.subscriptions()
    print(
        f"  {len(subscriptions)} users, average "
        f"{subscriptions.average_subscriptions():.1f} subscriptions "
        f"(median {subscriptions.median_subscriptions():.0f})"
    )

    m_engine = make_multiuser("m_unibin", thresholds, graph, subscriptions)
    s_engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
    print(
        f"  M_UniBin maintains {m_engine.instance_count()} per-user instances; "
        f"S_UniBin {s_engine.instance_count()} distinct components "
        f"(sharing ratio {s_engine.sharing_ratio():.0%})"
    )
    print()

    rows = []
    timelines = {}
    for engine in (m_engine, s_engine):
        run = run_multiuser(engine, dataset.posts)
        rows.append(run.as_row())
        timelines[engine.name] = run

    print(render_table(rows, title="M-SPSD: per-user vs shared-component"))
    print()

    m_run, s_run = timelines["m_unibin"], timelines["s_unibin"]
    assert m_run.posts_admitted == s_run.posts_admitted, "outputs must match"
    time_saved = 1 - s_run.wall_time / m_run.wall_time if m_run.wall_time else 0.0
    cmp_saved = 1 - s_run.comparisons / m_run.comparisons
    print(
        f"S_UniBin produced identical timelines with {time_saved:.0%} less "
        f"running time and {cmp_saved:.0%} fewer post comparisons "
        "(paper: 43% less time, 27% less RAM on its crawl)"
    )

    # Show one user's diversified timeline head.
    fresh_engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
    user_timelines = fresh_engine.run(dataset.posts)
    user, timeline = max(user_timelines.items(), key=lambda kv: len(kv[1]))
    print()
    print(f"sample: user {user} timeline has {len(timeline)} posts; first 3:")
    for post in timeline[:3]:
        print(f"  [{post.timestamp:8.0f}s] @author{post.author}: {post.text[:58]}")


if __name__ == "__main__":
    main()
