"""Algorithm advisor: Table 4 as a decision procedure.

Feeds a range of deployment profiles — from a Google-Scholar-like trickle
to a Twitter-scale firehose — through the Table-4 advisor and prints the
recommendation with its reasons, then empirically validates one regime by
running all three algorithms on a matching synthetic workload.

Run:  python examples/algorithm_advisor.py
"""

from repro import Thresholds
from repro.core import WorkloadProfile, recommend
from repro.eval import compare_algorithms, render_table
from repro.social import small_dataset

PROFILES = [
    (
        "Google Scholar alerts (a few papers per day)",
        WorkloadProfile(lambda_t=7 * 86_400.0, lambda_a=0.6, posts_per_window=40.0),
    ),
    (
        "News RSS reader (dense outlet clusters)",
        WorkloadProfile(lambda_t=1800.0, lambda_a=0.85, posts_per_window=2000.0),
    ),
    (
        "Twitter timeline (moderate lambda_t, sparse graph)",
        WorkloadProfile(lambda_t=600.0, lambda_a=0.7, posts_per_window=4400.0),
    ),
    (
        "Twitch VoD feed (re-posts matter for hours)",
        WorkloadProfile(lambda_t=6 * 3600.0, lambda_a=0.6, posts_per_window=5000.0),
    ),
    (
        "Embedded client with tight memory",
        WorkloadProfile(
            lambda_t=900.0, lambda_a=0.7, posts_per_window=3000.0, ram_constrained=True
        ),
    ),
]


def main() -> None:
    rows = []
    for label, profile in PROFILES:
        recommendation = recommend(profile)
        rows.append(
            {
                "deployment": label,
                "algorithm": recommendation.algorithm,
                "why": "; ".join(recommendation.reasons),
            }
        )
    print(render_table(rows, title="Table-4 advisor over five deployments"))
    print()

    # Validate the low-throughput rule empirically: on a trickle stream,
    # UniBin's total bin work becomes competitive with the binned
    # algorithms (it loses badly at full rate — see bench_fig14).
    print("validating the low-throughput rule on a 5% sample stream...")
    dataset = small_dataset()
    thresholds = Thresholds()
    graph = dataset.graph(thresholds.lambda_a)
    sampled = dataset.stream.subsample_posts(0.05)
    runs = compare_algorithms(thresholds, graph, sampled.posts)
    print(
        render_table(
            [r.as_row() for r in runs],
            title=f"5% sample ({len(sampled.posts)} posts)",
        )
    )
    by_name = {r.algorithm: r for r in runs}
    uni_ops = by_name["unibin"].comparisons + by_name["unibin"].insertions
    print()
    for algo in ("neighborbin", "cliquebin"):
        ops = by_name[algo].comparisons + by_name[algo].insertions
        print(
            f"  total bin operations — unibin {uni_ops:,} vs {algo} {ops:,} "
            f"({'unibin wins' if uni_ops <= ops else algo + ' wins'})"
        )


if __name__ == "__main__":
    main()
