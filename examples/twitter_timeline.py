"""Twitter-timeline scenario: one user following hundreds of accounts.

Reproduces the paper's single-user evaluation setting in miniature: a
synthetic follower network is generated, a day's worth of posts is
streamed, and the three SPSD algorithms diversify it — printing the same
time/RAM/comparisons/insertions series the paper's Figure 11 plots, plus a
sample of pruned posts with the posts that covered them.

Run:  python examples/twitter_timeline.py
"""

from repro.core import CoverageChecker, Thresholds
from repro.eval import compare_algorithms, render_table, verify_coverage
from repro.social import small_dataset


def main() -> None:
    print("building synthetic Twitter dataset (network -> BFS sample -> stream)...")
    dataset = small_dataset()
    thresholds = Thresholds()  # paper defaults: 18 bits / 30 min / 0.7
    graph = dataset.graph(thresholds.lambda_a)

    print(
        f"  {len(dataset.authors)} subscribed authors, "
        f"{len(dataset.posts)} posts, author graph with "
        f"{graph.edge_count} edges (avg degree {graph.average_degree():.1f})"
    )
    print()

    runs = compare_algorithms(thresholds, graph, dataset.posts)
    print(render_table([r.as_row() for r in runs], title="Single-user SPSD run"))
    print()

    # The SPSD guarantee, checked offline: every post is covered.
    checker = CoverageChecker(thresholds, graph)
    for run in runs:
        verify_coverage(dataset.posts, run.admitted_ids, checker)
    print("coverage guarantee verified for all three algorithms")
    assert runs[0].admitted_ids == runs[1].admitted_ids == runs[2].admitted_ids
    print("all three algorithms admitted the identical sub-stream")
    print()

    # Show a few pruned posts next to the ground truth.
    admitted = runs[0].admitted_ids
    posts_by_id = {p.post_id: p for p in dataset.posts}
    shown = 0
    print("sample of pruned posts (with generator provenance):")
    for post in dataset.posts:
        if post.post_id in admitted:
            continue
        provenance = dataset.stream.provenance.get(post.post_id)
        if provenance is None:
            continue
        source = posts_by_id[provenance.source_post_id]
        print(f"  pruned : {post.text[:64]}")
        print(f"  covered by earlier post: {source.text[:64]}")
        print(f"  (operators: {', '.join(provenance.operators)})")
        print()
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
