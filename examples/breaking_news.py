"""Breaking-news flash crowd: the firehose moment the paper motivates.

Generates a day-part stream whose arrival rate jumps 9x for half an hour
(a story breaks; echoes flood in), diversifies it, and shows what the
reader experiences: the timeline barely speeds up while the engine absorbs
the burst — plus the real-time headroom the service layer measures.

Run:  python examples/breaking_news.py
"""

from repro.core import Thresholds, UniBin, make_diversifier
from repro.eval import render_table, windowed_timeseries
from repro.service import DiversificationService
from repro.social import (
    DatasetConfig,
    NetworkConfig,
    StreamConfig,
    build_dataset,
)

BURST = (3 * 3600.0, 1800.0, 8.0)  # center 3h, width 30 min, 9x rate


def main() -> None:
    print("generating a 6-hour stream with a breaking-news burst at t=3h...")
    dataset = build_dataset(
        DatasetConfig(
            network=NetworkConfig(
                n_authors=400, n_communities=20, mean_followees=25, seed=13
            ),
            stream=StreamConfig(
                duration=6 * 3600.0,
                posts_per_author_per_day=40.0,
                bursts=(BURST,),
                seed=14,
            ),
            sample_size=250,
        )
    )
    thresholds = Thresholds(lambda_t=900.0)
    graph = dataset.graph(thresholds.lambda_a)

    rows = [
        row.as_dict()
        for row in windowed_timeseries(
            UniBin(thresholds, graph), dataset.posts, window=1800.0
        )
    ]
    print(render_table(rows, title="Per-half-hour timeline behaviour"))
    print()

    burst_rows = [
        r
        for r in rows
        if r["window_start"] < BURST[0] + BURST[1] / 2
        and r["window_end"] > BURST[0] - BURST[1] / 2
    ]
    calm_rows = [r for r in rows if r not in burst_rows]
    burst_arrivals = sum(r["arrivals"] for r in burst_rows) / len(burst_rows)
    calm_arrivals = sum(r["arrivals"] for r in calm_rows) / len(calm_rows)
    burst_shown = sum(r["admitted"] for r in burst_rows) / len(burst_rows)
    print(
        f"during the burst the firehose runs {burst_arrivals / calm_arrivals:.1f}x "
        f"hotter ({burst_arrivals:.0f} vs {calm_arrivals:.0f} arrivals/window), "
        f"but the reader's timeline shows {burst_shown:.0f}/window — the echo "
        "storm is pruned as redundant"
    )
    print()

    # Can the engine keep up *during* the burst? Measure real headroom.
    service = DiversificationService(
        make_diversifier("unibin", thresholds, graph)
    )
    service.replay(dataset.posts)
    print(
        f"engine decision latency p99 = "
        f"{service.latency.percentile(99) * 1e6:.0f} us; sustainable "
        f"real-time speedup ~ {service.sustainable_speedup():,.0f}x — the "
        "burst never backlogs"
    )


if __name__ == "__main__":
    main()
