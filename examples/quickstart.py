"""Quickstart: diversify a small post stream across all three dimensions.

Builds the paper's running example by hand — four authors whose similarity
graph is a triangle plus a tail (Figure 5a) — and streams five posts
through UniBin, printing each admit/prune decision and why.

Run:  python examples/quickstart.py
"""

from repro import Post, Thresholds, UniBin
from repro.authors import AuthorGraph
from repro.simhash import hamming


def main() -> None:
    # Author similarity graph G (paper Figure 5a): a1–a2, a1–a3, a2–a3, a3–a4.
    graph = AuthorGraph(
        nodes=[1, 2, 3, 4],
        edges=[(1, 2), (1, 3), (2, 3), (3, 4)],
    )

    # Thresholds: content within 18 SimHash bits, time within 10 minutes,
    # author distance within 0.7 (the default).
    thresholds = Thresholds(lambda_c=18, lambda_t=600.0, lambda_a=0.7)
    diversifier = UniBin(thresholds, graph)

    stream = [
        Post.create(1, 1, "Over 300 people missing after ferry sinks (Reuters) "
                          "http://t.co/9w2JrurhKm", timestamp=0.0),
        Post.create(2, 2, "Local team wins the season final in overtime thriller",
                    timestamp=60.0),
        Post.create(3, 3, "over 300 people MISSING after ferry sinks (reuters) "
                          "http://t.co/E1vKp9JJfe", timestamp=120.0),
        Post.create(4, 4, "Quarterly results beat expectations on cloud growth",
                    timestamp=180.0),
        Post.create(5, 3, "Quarterly results beat expectations on cloud growth "
                          "#earnings", timestamp=240.0),
    ]

    print(f"thresholds: lambda_c={thresholds.lambda_c} bits, "
          f"lambda_t={thresholds.lambda_t:.0f}s, lambda_a={thresholds.lambda_a}")
    print()
    for post in stream:
        admitted = diversifier.offer(post)
        verdict = "ADMIT" if admitted else "prune"
        print(f"[{verdict}] P{post.post_id} (author a{post.author}, "
              f"t={post.timestamp:.0f}s): {post.text[:60]}")

    stats = diversifier.stats
    print()
    print(f"admitted {stats.posts_admitted}/{stats.posts_processed} posts "
          f"({stats.comparisons} pairwise comparisons)")

    # Why was P3 pruned? Show the three dimensions against P1.
    p1, p3 = stream[0], stream[2]
    print()
    print("P3 vs P1 across the three dimensions:")
    print(f"  content: Hamming = {hamming(p1.fingerprint, p3.fingerprint)} "
          f"<= {thresholds.lambda_c}  (re-shortened URL + case noise)")
    print(f"  time:    |t3 - t1| = {abs(p3.timestamp - p1.timestamp):.0f}s "
          f"<= {thresholds.lambda_t:.0f}s")
    print(f"  author:  a1 ~ a3 in G = {graph.are_similar(1, 3)}")


if __name__ == "__main__":
    main()
